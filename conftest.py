"""Pytest configuration: make the in-tree package importable without install.

The canonical way to use the repository is ``pip install -e .``; this file
only exists so that ``pytest`` also works from a fresh checkout (or on
machines where editable installs are unavailable, e.g. offline CI).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
