#!/usr/bin/env python3
"""L1-analysis convex solver example (paper Fig. 13c).

The l1a program is one iteration of a first-order solver used e.g. for image
denoising.  This example generates the kernel once and applies it
repeatedly, monitoring the iterates, and compares the modeled performance
against the library-based baselines (Fig. 15d).
"""

import numpy as np

from repro.api import Options, SLinGen
from repro.applications import l1a_case
from repro.baselines import evaluate_baseline
from repro.kernels import l1_analysis_step


def main() -> None:
    n = 24
    case = l1a_case(n)
    generated = SLinGen(Options(vectorize=True, autotune=False)) \
        .generate(case.program, nominal_flops=case.nominal_flops)

    print(f"l1a kernel, n = {n}: {generated.flops_per_cycle:.2f} f/c")
    for baseline in ("mkl", "eigen", "icc"):
        result = evaluate_baseline(baseline, case)
        print(f"  vs {baseline:6s}: {result.flops_per_cycle:.2f} f/c "
              f"({generated.flops_per_cycle / result.flops_per_cycle:.1f}x)")

    inputs = case.make_inputs(seed=1)
    state = {key: inputs[key] for key in ("v1", "z1", "v2", "z2")}
    for iteration in range(4):
        step_inputs = dict(inputs)
        step_inputs.update(state)
        outputs = generated.run(step_inputs)
        expected = l1_analysis_step(step_inputs)
        for key in state:
            assert np.allclose(outputs[key], expected[key], atol=1e-9)
        state = {key: outputs[key] for key in state}
        print(f"  iteration {iteration}: |z1| = "
              f"{np.linalg.norm(state['z1']):.4f}, |z2| = "
              f"{np.linalg.norm(state['z2']):.4f}   (matches numpy)")

    print("Four solver iterations with the generated kernel match numpy.")


if __name__ == "__main__":
    main()
