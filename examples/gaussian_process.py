#!/usr/bin/env python3
"""Gaussian process regression example (paper Fig. 13b).

Generates the GPR predictive-mean/variance kernel for a fixed training-set
size, uses it to predict a simple 1-D function from noisy-free samples, and
prints the comparison against the numpy/scipy reference.
"""

import numpy as np

from repro.api import Options, SLinGen
from repro.applications import gpr_case
from repro.kernels import gaussian_process_regression


def rbf_kernel(a: np.ndarray, b: np.ndarray, lengthscale: float = 0.6) -> np.ndarray:
    d = a.reshape(-1, 1) - b.reshape(1, -1)
    return np.exp(-0.5 * (d / lengthscale) ** 2)


def main() -> None:
    n = 16                                  # training points
    case = gpr_case(n)
    generated = SLinGen(Options(vectorize=True, autotune=False)) \
        .generate(case.program, nominal_flops=case.nominal_flops)
    print(f"GPR kernel generated: {generated.flops_per_cycle:.2f} f/c, "
          f"bottleneck {generated.performance.bottleneck}")

    # A tiny regression problem: learn sin(x) from n samples.
    train_x = np.linspace(0.0, 2.0 * np.pi, n)
    train_y = np.sin(train_x).reshape(n, 1)
    K = rbf_kernel(train_x, train_x) + 1e-6 * np.eye(n)

    for test_point in (1.0, 2.5, 4.0):
        # The LA program computes phi = k*^T K^-1 y via Cholesky; feed it the
        # cross-covariance through the X*x product by encoding k* = X @ x.
        k_star = rbf_kernel(train_x, np.array([test_point])).reshape(n, 1)
        inputs = {"K": K, "X": np.diag(k_star.ravel()),
                  "x": np.ones((n, 1)), "y": train_y}
        outputs = generated.run(inputs)
        expected = gaussian_process_regression(inputs)
        mean = outputs["phi"][0, 0]
        assert abs(mean - expected["phi"]) < 1e-8
        print(f"  f({test_point:.1f}) ~ {mean:+.4f}   "
              f"(true {np.sin(test_point):+.4f})")

    print("Predictions from the generated kernel match the reference.")


if __name__ == "__main__":
    main()
