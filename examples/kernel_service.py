"""Kernel service walkthrough: generate once, serve from the cache forever.

Demonstrates the generation-as-a-service layer on top of SLinGen:

1. a persistent, content-addressed kernel store,
2. cache-first single requests (second call is a hit, no Stage 1-3),
3. parallel batch generation of a whole size sweep,
4. the named-workload registry ("potrf:12", "kf:8x4").

Run with::

    PYTHONPATH=src python examples/kernel_service.py
"""

import tempfile
import time

from repro.api import (DiskKernelStore, GenerationRequest,
                       KernelService, make_request)
from repro.service import sweep_requests


def main() -> None:
    # A throwaway cache root for the demo; by default the service persists
    # under ~/.cache/repro-slingen/kernels (or $REPRO_KERNEL_CACHE).
    root = tempfile.mkdtemp(prefix="repro_kernels_")
    service = KernelService(store=DiskKernelStore(root=root))

    # -- single request: miss, then hit -----------------------------------
    request = make_request("potrf:12")
    t0 = time.perf_counter()
    cold = service.generate(request)
    t_cold = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm = service.generate(request)
    t_warm = time.perf_counter() - t0
    print(f"potrf:12 cold: {t_cold * 1e3:7.1f} ms (hit={cold.cache_hit})  "
          f"variant={cold.result.variant_label}")
    print(f"potrf:12 warm: {t_warm * 1e3:7.1f} ms (hit={warm.cache_hit})  "
          f"speedup={t_cold / max(t_warm, 1e-9):.0f}x")

    # -- batch: a figure's size sweep, misses generated in parallel --------
    requests = sweep_requests(["trtri:4", "trtri:8", "trtri:12", "gpr:8"])
    responses = service.generate_many(requests)
    for response in responses:
        perf = response.result.performance
        print(f"{response.label:10s} hit={str(response.cache_hit):5s} "
              f"{perf.flops_per_cycle:6.3f} f/c  key={response.key[:12]}")

    # -- raw LA source works too ------------------------------------------
    source = """
    Mat A(n, n) <In>;
    Vec x(n) <In>;
    Vec y(n) <Out>;
    y = A * x;
    """
    response = service.generate(GenerationRequest.from_source(
        source, {"n": 8}, name="gemv_8"))
    print(f"gemv_8     hit={str(response.cache_hit):5s} "
          f"{response.result.performance.flops_per_cycle:6.3f} f/c")

    print("\nservice stats:", service.stats.snapshot())
    print("store stats:  ", service.store.stats())


if __name__ == "__main__":
    main()
