#!/usr/bin/env python3
"""HLAC code-generation example: Cholesky factorization (paper Sec. 3.1).

Shows the intermediate artifacts of the pipeline for `U^T U = S`:

* the algorithmic variants Stage 1 can synthesize (Cl1ck-style),
* the basic linear algebra program of the chosen variant,
* the generated C code (and, when a C compiler is available, a run of the
  compiled kernel), and
* the ERM-style bottleneck analysis of Table 4.
"""

import numpy as np

from repro.api import Options, SLinGen
from repro.applications import potrf_case
from repro.backend import compiler_available
from repro.slingen import find_hlac_sites, synthesize_basic_program


def main() -> None:
    n = 16
    case = potrf_case(n)

    sites = find_hlac_sites(case.program, block_size=4)
    print(f"HLACs found: {[site.kind for site in sites]}")
    print(f"variants available: {sites[0].variants}")

    stage1 = synthesize_basic_program(case.program, block_size=4)
    print(f"\nStage 1 produced a basic program with "
          f"{len(stage1.program.statements)} statements; first five:")
    for statement in stage1.program.statements[:5]:
        print(f"  {statement}")

    generated = SLinGen(Options(vectorize=True, autotune=True,
                                max_variants=8)) \
        .generate(case.program, nominal_flops=case.nominal_flops)
    print(f"\nautotuner evaluated {len(generated.candidates)} candidates; "
          f"chose {generated.variant_label}")
    print(f"modeled performance: {generated.flops_per_cycle:.2f} f/c, "
          f"bottleneck: {generated.performance.bottleneck}")
    print(f"shuffle/blend issue rate: "
          f"{generated.performance.shuffle_blend_issue_rate:.2%}")

    inputs = case.make_inputs(seed=0)
    outputs = generated.run(inputs)
    U = np.triu(outputs["U"])
    assert np.allclose(U.T @ U, inputs["S"], atol=1e-8)
    print("\ninterpreted kernel satisfies U^T U = S: OK")

    if compiler_available():
        compiled = generated.compile_and_run(inputs)
        assert np.allclose(np.triu(compiled["U"]), U, atol=1e-10)
        print("compiled C kernel (gcc + AVX intrinsics) agrees: OK")
    else:
        print("no C compiler found; skipped the compile-and-run check")

    print("\n=== generated C (excerpt) ===")
    print("\n".join(generated.c_code.splitlines()[:40]))


if __name__ == "__main__":
    main()
