#!/usr/bin/env python3
"""Kalman filter example (paper Table 1 / Fig. 13a).

Generates a fixed-size Kalman-filter update kernel, runs several filter
iterations by feeding the generated kernel its own outputs, and compares the
trajectory against a straightforward numpy implementation.  Also compares
the machine-model performance against the MKL/Eigen/icc baseline models, as
in Fig. 15a of the paper.
"""

import numpy as np

from repro.api import Options, SLinGen
from repro.applications import kf_case
from repro.baselines import evaluate_baseline
from repro.kernels import kalman_filter_step


def main() -> None:
    n = 12                      # number of states = number of observations
    case = kf_case(n)
    generator = SLinGen(Options(vectorize=True, autotune=True,
                                max_variants=6))
    generated = generator.generate(case.program,
                                   nominal_flops=case.nominal_flops)

    print(f"Kalman filter, n = k = {n}")
    print(f"  modeled performance : {generated.flops_per_cycle:.2f} f/c "
          f"({generated.performance.cycles:.0f} cycles, "
          f"bottleneck: {generated.performance.bottleneck})")
    for baseline in ("mkl", "eigen", "icc"):
        result = evaluate_baseline(baseline, case)
        print(f"  {baseline:18s}: {result.flops_per_cycle:.2f} f/c "
              f"(speedup {generated.flops_per_cycle / result.flops_per_cycle:.1f}x)")

    # Run 5 filter steps with the generated kernel, tracking a noisy constant
    # velocity target, and compare against the numpy reference at every step.
    inputs = case.make_inputs(seed=42)
    state = {"x": inputs["x"], "P": inputs["P"]}
    for step in range(5):
        step_inputs = dict(inputs)
        step_inputs.update(state)
        outputs = generated.run(step_inputs)
        expected = kalman_filter_step(step_inputs)
        assert np.allclose(outputs["x"], expected["x"], atol=1e-8)
        assert np.allclose(outputs["P"], expected["P"], atol=1e-8)
        state = {"x": outputs["x"], "P": outputs["P"]}
        print(f"  step {step}: |x| = {np.linalg.norm(state['x']):.4f}  "
              f"trace(P) = {np.trace(state['P']):.4f}   (matches numpy)")

    print("\nFive filter iterations with the generated kernel match numpy.")


if __name__ == "__main__":
    main()
