#!/usr/bin/env python3
"""Quickstart: compile a small LA program to optimized C with SLinGen.

The program is the Fig. 5 fragment of the paper: a symmetric update followed
by a Cholesky factorization and a triangular solve.  The script prints the
generated single-source C (with AVX intrinsics), executes the generated
kernel on random inputs through the C-IR interpreter and through the
(much faster, equally portable) NumPy execution backend, and checks both
results against numpy.
"""

import numpy as np

from repro.api import Options, SLinGen, parse_program

SOURCE = """
Mat H(k, n) <In>;
Mat R(k, k) <In, UpSym, PD>;
Mat P(k, k) <In, UpSym, PD>;
Mat S(k, k) <Out, UpSym, PD>;
Mat U(k, k) <Out, UpTri, NS, ow(S)>;
Mat B(k, k) <Out>;

S = H * H' + R;
U' * U = S;
U' * B = P;
"""


def main() -> None:
    n, k = 12, 8
    program = parse_program(SOURCE, constants={"n": n, "k": k},
                            name="fig5_fragment")

    generator = SLinGen(Options(vectorize=True, autotune=True))
    generated = generator.generate(program)

    print("=== generated C (first 60 lines) ===")
    print("\n".join(generated.c_code.splitlines()[:60]))
    print("...")
    print("\n=== performance model ===")
    for key, value in generated.performance.summary().items():
        print(f"  {key:28s} {value}")
    print(f"  chosen variant              {generated.variant_label}")

    rng = np.random.default_rng(0)
    H = rng.standard_normal((k, n))
    G = rng.standard_normal((k, k))
    inputs = {"H": H, "R": G @ G.T + k * np.eye(k),
              "P": np.eye(k) + 0.1 * G @ G.T}
    outputs = generated.run(inputs)

    S = H @ H.T + inputs["R"]
    U = np.linalg.cholesky(S).T
    B = np.linalg.solve(U.T, inputs["P"])
    assert np.allclose(np.triu(outputs["S"]), np.triu(U), atol=1e-8)
    assert np.allclose(outputs["B"], B, atol=1e-8)
    print("\ngenerated kernel matches numpy (interpreter): OK")

    # The NumPy execution backend runs the same kernel without a C
    # compiler, orders of magnitude faster than the interpreter.
    fast = generated.run_numpy(inputs)
    assert np.allclose(fast["S"], outputs["S"], atol=1e-12)
    assert np.allclose(fast["B"], outputs["B"], atol=1e-12)
    print("generated kernel matches numpy (NumPy backend): OK")


if __name__ == "__main__":
    main()
