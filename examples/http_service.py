"""Kernel serving over HTTP: daemon, client, and coalesced load.

Spins up the stdlib HTTP daemon in-process on an ephemeral port, then
exercises the JSON API exactly as a remote client would:

1. health check and cold/warm ``POST /generate``,
2. ``POST /run`` -- real execution on the NumPy backend, no compiler,
3. a 12-client duplicate-request stampede showing single-flight
   coalescing (one generation, eleven coalesced followers),
4. ``GET /stats`` -- service, store, and per-shard counters.

Run with::

    PYTHONPATH=src python examples/http_service.py

The same daemon runs standalone via ``python -m repro.service serve``;
see docs/serving.md for the full API and curl examples.
"""

import tempfile
from concurrent import futures

from repro.api import DiskKernelStore, KernelService
from repro.service import KernelServer, ServiceClient


def main() -> None:
    # A throwaway cache root for the demo; a real daemon persists under
    # ~/.cache/repro-slingen/kernels (or $REPRO_KERNEL_CACHE).
    store = DiskKernelStore(root=tempfile.mkdtemp(prefix="repro_http_"))
    service = KernelService(store=store)

    # max_inflight must cover the 12-client stampede below: coalesced
    # followers are cheap (they just wait on the leader's future) but
    # still occupy admission slots while they do.
    with KernelServer(service, port=0, max_inflight=16,
                      quiet=True) as server:
        client = ServiceClient(server.url)
        print(f"daemon listening on {server.url}")
        client.wait_healthy()

        # -- generate: miss, then hit ---------------------------------
        cold = client.generate(spec="potrf:8")
        warm = client.generate(spec="potrf:8")
        print(f"potrf:8 cold hit={cold['cache_hit']} "
              f"{cold['latency_s'] * 1e3:6.1f} ms  "
              f"variant={cold['variant']}")
        print(f"potrf:8 warm hit={warm['cache_hit']} "
              f"{warm['latency_s'] * 1e3:6.1f} ms  "
              f"key={warm['key'][:12]}")

        # -- run: execute on the NumPy backend over HTTP --------------
        out = client.run(spec="potrf:4", backend="numpy")
        row = out["outputs"]["U"][0]
        print(f"potrf:4 run on {out['backend']}: U[0] = "
              f"{[round(v, 4) for v in row]}")

        # -- stampede: 12 concurrent identical misses, 1 generation ---
        with futures.ThreadPoolExecutor(max_workers=12) as pool:
            answers = list(pool.map(
                lambda _: client.generate(spec="trtri:8",
                                          include_code=False),
                range(12)))
        coalesced = sum(1 for doc in answers if doc["coalesced"])
        print(f"stampede: 12 clients, "
              f"{sum(1 for d in answers if not d['cache_hit'])} misses, "
              f"{coalesced} coalesced")

        stats = client.stats()
        svc = stats["service"]
        print(f"stats: {svc['requests']} requests, {svc['hits']} hits, "
              f"{svc['generations']} generations, "
              f"{svc['coalesced']} coalesced, "
              f"{stats['store']['entries']} entries in "
              f"{stats['store']['shards']} shards")
    print("daemon shut down")


if __name__ == "__main__":
    main()
