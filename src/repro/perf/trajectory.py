"""The append-only performance trajectory (``BENCH_trajectory.jsonl``).

One JSON record per line, one line per *(run, manifest entry)*; a run is
the set of lines sharing a ``run_id``, and a record is keyed by
``(commit, entry)`` -- the trajectory is the repository's complete
timing history, committed alongside the code it measures.

Append-only discipline is what makes the history trustworthy: appends go
through a single ``O_APPEND`` file descriptor with exactly one
``os.write`` per line (concurrent writers interleave whole lines, never
bytes -- the same guarantee the fix bank gets from ``os.replace``), and
nothing in this module ever rewrites or truncates the file.  Reads are
corruption-tolerant in the TuningDB style: an undecodable line (torn
final append after a crash, merge-conflict garbage, hand-edited bytes)
is counted and skipped, never raised through -- the trajectory degrades
to the decodable subset instead of taking the gate down with it.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import PerfError
from .environment import unknown_environment

#: Bump on any incompatible record-shape change; the loader keeps
#: unversioned/foreign lines out of analysis but reports them.
TRAJECTORY_SCHEMA_VERSION = 1

#: The committed trajectory's canonical location (repo root).
DEFAULT_TRAJECTORY = "BENCH_trajectory.jsonl"

#: Keys every trajectory record carries (see ``runner.py`` for their
#: production and ``docs/benchmarks.md`` for the full schema).
REQUIRED_KEYS = ("schema", "run_id", "commit", "ts", "suite", "entry",
                 "kernel", "backend", "mode", "repeats", "median_seconds",
                 "env")


def default_trajectory_path() -> str:
    """``$REPRO_TRAJECTORY`` when set, else ``BENCH_trajectory.jsonl`` in
    the current directory (the repository root in normal use)."""
    env = os.environ.get("REPRO_TRAJECTORY", "").strip()
    return env or DEFAULT_TRAJECTORY


def record_is_valid(record: object) -> bool:
    """Structural validity of one decoded line: a dict of the current
    schema with every required key present and a numeric median."""
    if not isinstance(record, dict):
        return False
    if record.get("schema") != TRAJECTORY_SCHEMA_VERSION:
        return False
    for key in REQUIRED_KEYS:
        if key not in record:
            return False
    return isinstance(record["median_seconds"], (int, float))


class TrajectoryStore:
    """Append-only JSONL record store (see module docs)."""

    def __init__(self, path: Optional[str] = None):
        self.path = path or default_trajectory_path()
        self.dropped = 0        # undecodable or invalid lines, last load()

    # -- writes --------------------------------------------------------------

    def append(self, records: Iterable[Dict[str, object]]) -> int:
        """Append records, one line each, each line one atomic write.

        Returns the number of lines written.  Records are validated
        before anything is written -- a malformed record must not poison
        the committed history."""
        lines: List[bytes] = []
        for record in records:
            if not record_is_valid(record):
                raise PerfError(
                    f"refusing to append structurally invalid record: "
                    f"{json.dumps(record, default=str)[:120]}")
            blob = json.dumps(record, sort_keys=True,
                              separators=(",", ":"))
            if "\n" in blob:    # pragma: no cover - json never emits one
                raise PerfError("record serialized with an embedded newline")
            lines.append(blob.encode("utf-8") + b"\n")
        if not lines:
            return 0
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                     0o644)
        try:
            for line in lines:
                os.write(fd, line)
        finally:
            os.close(fd)
        return len(lines)

    # -- reads ---------------------------------------------------------------

    def load(self) -> List[Dict[str, object]]:
        """Every decodable, valid record in file order.

        Missing file = empty history.  Undecodable or invalid lines are
        skipped and counted in :attr:`dropped`."""
        self.dropped = 0
        records: List[Dict[str, object]] = []
        try:
            with open(self.path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return records
        except OSError as exc:
            raise PerfError(f"cannot read trajectory {self.path!r}: {exc}")
        for line in raw.split(b"\n"):
            if not line.strip():
                continue
            try:
                record = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                self.dropped += 1
                continue
            if not record_is_valid(record):
                self.dropped += 1
                continue
            records.append(record)
        return records

    def runs(self) -> List[Tuple[str, List[Dict[str, object]]]]:
        """Records grouped into runs, ordered by first appearance in the
        file (append order *is* chronological order)."""
        grouped: Dict[str, List[Dict[str, object]]] = {}
        order: List[str] = []
        for record in self.load():
            run_id = str(record["run_id"])
            if run_id not in grouped:
                grouped[run_id] = []
                order.append(run_id)
            grouped[run_id].append(record)
        return [(run_id, grouped[run_id]) for run_id in order]

    def latest_run(self) -> Optional[Tuple[str, List[Dict[str, object]]]]:
        runs = self.runs()
        return runs[-1] if runs else None

    def entry_history(self, entry_id: str) -> List[Dict[str, object]]:
        """Every record of one manifest entry, in append order."""
        return [r for r in self.load() if r.get("entry") == entry_id]

    def stats(self) -> Dict[str, object]:
        records = self.load()
        return {
            "path": self.path,
            "records": len(records),
            "runs": len({r["run_id"] for r in records}),
            "entries": len({r["entry"] for r in records}),
            "dropped": self.dropped,
        }


# ---------------------------------------------------------------------------
# Seed migration
# ---------------------------------------------------------------------------


def migrate_seed_records(path: str, commit: str = "seed",
                         suite: str = "smoke",
                         timestamp: float = 0.0) -> List[Dict[str, object]]:
    """``BENCH_seed.json`` records in trajectory form.

    The seed file (the pre-trajectory perf-smoke artifact) is a flat list
    of ``{kernel, size, backend, median_seconds}``; each becomes one
    untuned trajectory record under run id ``"seed"`` with an *unknown*
    environment -- kept as history, never compared against (see
    :mod:`.environment`).
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as exc:
        raise PerfError(f"cannot read seed records {path!r}: {exc}")
    if not isinstance(doc, list):
        raise PerfError(f"seed file {path!r} is not a record list")
    env = unknown_environment(source=os.path.basename(path))
    records: List[Dict[str, object]] = []
    for row in doc:
        if not isinstance(row, dict) or "kernel" not in row \
                or "backend" not in row or "median_seconds" not in row:
            raise PerfError(f"bad seed record: {row!r:.120}")
        kernel = f"{row['kernel']}:{row['size']}"
        records.append({
            "schema": TRAJECTORY_SCHEMA_VERSION,
            "run_id": "seed",
            "commit": commit,
            "ts": float(timestamp),
            "suite": suite,
            "entry": f"{kernel}/{row['backend']}/untuned",
            "kernel": kernel,
            "size": int(row["size"]),
            "backend": str(row["backend"]),
            "mode": "untuned",
            "applied": True,
            "repeats": int(row.get("repeats", 0)),
            "median_seconds": float(row["median_seconds"]),
            "mad_seconds": None,
            "flops": None,
            "correct": None,
            "env": env,
        })
    return records
