"""Execute a benchmark manifest and emit trajectory records.

The runner owns no timing or generation machinery of its own: every
entry resolves through the existing stack -- the workload registry names
the case, a :class:`~repro.service.service.KernelService` generates (or
cache-hits) the kernel with the entry's mode applied (``tuned`` routes
through the TuningDB, ``verified`` through the CEGIS fix bank, exactly
like ``--tuned``/``--verified`` service requests), the executor comes
from :meth:`ServiceResponse.kernel`, and the samples from the shared
:func:`~repro.timing.batched_time` protocol.  What the runner adds is
the *record*: a schema-versioned, environment-fingerprinted summary
(robust median + MAD seconds per call) keyed by commit + manifest entry,
ready for the append-only trajectory.

Entries whose backend cannot run here (``compiled`` with no C compiler)
are *skipped with a reason*, not failed and not silently omitted: a
partial run states exactly which cells of the matrix it covered.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import PerfError, ReproError
from ..timing import median_and_mad
from .environment import environment_fingerprint
from .manifest import Manifest, ManifestEntry, PIPELINE_BACKEND
from .trajectory import TRAJECTORY_SCHEMA_VERSION

#: Alias: records are stamped with the trajectory schema (one schema for
#: producer and store -- bump in ``trajectory.py``).
RECORD_SCHEMA_VERSION = TRAJECTORY_SCHEMA_VERSION

#: Seed of the timing inputs: the same one the bench harness and figure
#: scripts use, so timings here and there measure identical operand data.
INPUT_SEED = 17


def current_commit(cwd: Optional[str] = None) -> str:
    """The working tree's commit (short hash, ``-dirty`` suffixed), or
    ``"unknown"`` outside a git checkout."""
    try:
        head = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"], cwd=cwd,
            capture_output=True, text=True, timeout=10)
        if head.returncode != 0:
            return "unknown"
        commit = head.stdout.strip()
        dirty = subprocess.run(
            ["git", "status", "--porcelain", "--untracked-files=no"],
            cwd=cwd, capture_output=True, text=True, timeout=10)
        if dirty.returncode == 0 and dirty.stdout.strip():
            commit += "-dirty"
        return commit
    except (OSError, subprocess.SubprocessError):
        return "unknown"


@dataclass
class SkippedEntry:
    """One manifest cell this host could not measure, and why."""

    entry: str
    reason: str


@dataclass
class BenchRun:
    """The outcome of one manifest execution."""

    run_id: str
    suite: str
    commit: str
    started_at: float
    env: Dict[str, object]
    records: List[Dict[str, object]] = field(default_factory=list)
    skipped: List[SkippedEntry] = field(default_factory=list)

    def to_json(self) -> Dict[str, object]:
        """The stable ``run --json`` document (see docs/benchmarks.md)."""
        return {
            "schema": RECORD_SCHEMA_VERSION,
            "run_id": self.run_id,
            "suite": self.suite,
            "commit": self.commit,
            "started_at": self.started_at,
            "env": self.env,
            "records": self.records,
            "skipped": [{"entry": s.entry, "reason": s.reason}
                        for s in self.skipped],
        }

    def format_table(self) -> str:
        """Aligned text summary of the run (for humans; records are the
        machine surface)."""
        lines = [f"[perf:{self.suite}]  run {self.run_id} "
                 f"@ {self.commit}",
                 f"{'entry':34s} {'median us/call':>15s} "
                 f"{'mad us':>9s} {'ok':>3s}"]
        for record in self.records:
            mad = record.get("mad_seconds")
            correct = record.get("correct")
            lines.append(
                f"{record['entry']:34s} "
                f"{record['median_seconds'] * 1e6:15.2f} "
                f"{(mad or 0.0) * 1e6:9.2f} "
                f"{'-' if correct is None else ('y' if correct else 'N'):>3s}")
        for skip in self.skipped:
            lines.append(f"{skip.entry:34s} {'skipped':>15s}   "
                         f"({skip.reason})")
        return "\n".join(lines)


def _make_run_id(commit: str, suite: str, started_at: float,
                 env: Dict[str, object]) -> str:
    blob = json.dumps({"commit": commit, "suite": suite,
                       "started_at": started_at, "env": env},
                      sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12]


class _ModeServices:
    """One :class:`KernelService` per generation mode, sharing a store.

    A service with a TuningDB attached applies tuned options to *every*
    request, so the untuned axis needs its own service instance; the
    tuned/verified databases are only opened when an entry asks for them.
    """

    def __init__(self, store=None, machine=None):
        from ..service.service import KernelService
        from ..service.store import MemoryKernelStore
        self._store = store if store is not None else MemoryKernelStore()
        self._machine = machine
        self._kernel_service = KernelService
        self._services: Dict[str, object] = {}

    def for_mode(self, mode: str):
        service = self._services.get(mode)
        if service is not None:
            return service
        kwargs: Dict[str, object] = {}
        if mode == "tuned":
            from ..tuning.db import TuningDB
            kwargs["tuning_db"] = TuningDB()
        elif mode == "verified":
            from ..cegis.fixbank import FixBank
            kwargs["fix_bank"] = FixBank()
        elif mode != "untuned":
            raise PerfError(f"unknown generation mode {mode!r}")
        service = self._kernel_service(store=self._store,
                                       machine=self._machine, **kwargs)
        self._services[mode] = service
        return service


def _measure_entry(entry: ManifestEntry, services: _ModeServices,
                   repeats: Optional[int], validate: bool
                   ) -> Dict[str, object]:
    """Time one manifest cell; returns the record *body* (run identity
    fields are stamped by :func:`run_manifest`)."""
    from ..bench.harness import check_case
    from ..service.registry import build_case, make_request, parse_spec

    spec = parse_spec(entry.kernel)
    case = build_case(spec)
    service = services.for_mode(entry.mode)
    response = service.generate(make_request(spec))
    kernel = response.kernel(entry.backend)
    n_repeats = repeats if repeats is not None else entry.repeats
    samples = kernel.time(case.make_inputs(seed=INPUT_SEED),
                          repeats=n_repeats)
    median, mad = median_and_mad(samples)
    correct = check_case(case, response.result, kernel=kernel) \
        if validate else None
    applied = {"untuned": True, "tuned": response.tuned,
               "verified": response.verified}[entry.mode]
    return {
        "entry": entry.entry_id,
        "kernel": entry.kernel,
        "size": spec.size,
        "backend": entry.backend,
        "mode": entry.mode,
        "applied": applied,
        "repeats": n_repeats,
        "median_seconds": median,
        "mad_seconds": mad,
        "flops": case.nominal_flops,
        "correct": correct,
    }


def _measure_pipeline_entry(entry: ManifestEntry, repeats: Optional[int],
                            validate: bool) -> Dict[str, object]:
    """Time one warm-phase-cache generation (the ``pipeline``/``warm``
    pseudo-cell): a fresh :class:`PhaseCache` is warmed by one cold
    build, then every sample is a full ``generate_result`` served
    entirely from the cache -- the latency tuning/fuzz/CEGIS iteration
    pays per candidate.  ``flops`` stays the kernel's nominal count so
    the record shape matches execution entries, but the timing is
    generation, not execution."""
    from ..pipeline.cache import PhaseCache
    from ..service.registry import build_case, parse_spec
    from ..slingen.generator import SLinGen
    from ..slingen.options import Options

    spec = parse_spec(entry.kernel)
    case = build_case(spec)
    generator = SLinGen(Options(vectorize=True, annotate_code=False),
                        phase_cache=PhaseCache())
    cold = generator.generate_result(case.program,
                                     nominal_flops=case.nominal_flops)
    n_repeats = repeats if repeats is not None else entry.repeats
    samples: List[float] = []
    warm = cold
    for _ in range(n_repeats):
        started = time.perf_counter()
        warm = generator.generate_result(case.program,
                                         nominal_flops=case.nominal_flops)
        samples.append(time.perf_counter() - started)
    median, mad = median_and_mad(samples)
    stats = warm.phase_stats or {}
    # "applied" reports what the mode asked for, like tuned/verified do:
    # here, that the warm passes really were served from the cache.
    fully_warm = all(entry_stats["hits"] == entry_stats["calls"]
                     for entry_stats in stats.values())
    correct = (warm.c_code == cold.c_code) if validate else None
    return {
        "entry": entry.entry_id,
        "kernel": entry.kernel,
        "size": spec.size,
        "backend": entry.backend,
        "mode": entry.mode,
        "applied": fully_warm,
        "repeats": n_repeats,
        "median_seconds": median,
        "mad_seconds": mad,
        "flops": case.nominal_flops,
        "correct": correct,
    }


def run_manifest(manifest: Manifest, *, repeats: Optional[int] = None,
                 validate: bool = False, store=None, machine=None,
                 commit: Optional[str] = None,
                 env: Optional[Dict[str, object]] = None,
                 timestamp: Optional[float] = None) -> BenchRun:
    """Execute every runnable entry of ``manifest`` and collect records.

    ``repeats`` overrides every entry's repeat policy (CI uses a lower
    one).  ``validate`` additionally runs each kernel against its case
    oracle and stamps ``correct`` into the record.  ``store`` /
    ``machine`` / ``commit`` / ``env`` / ``timestamp`` exist for tests
    and for callers that already know their identity; they default to a
    private in-memory store, the default machine model, the git working
    tree, the live host fingerprint, and now.

    A backend that cannot run on this host skips its entries with a
    reason; any *measurement* failure on a runnable backend is a real
    error and propagates.
    """
    from ..backend import compiler_available

    env = env if env is not None else environment_fingerprint()
    commit = commit if commit is not None else current_commit()
    started_at = timestamp if timestamp is not None else time.time()
    run = BenchRun(
        run_id=_make_run_id(commit, manifest.name, started_at, env),
        suite=manifest.name, commit=commit, started_at=started_at, env=env)
    services = _ModeServices(store=store, machine=machine)
    has_compiler = compiler_available()
    for entry in manifest.entries:
        if entry.backend == "compiled" and not has_compiler:
            run.skipped.append(SkippedEntry(
                entry=entry.entry_id, reason="no C compiler available"))
            continue
        try:
            if entry.backend == PIPELINE_BACKEND:
                body = _measure_pipeline_entry(entry, repeats, validate)
            else:
                body = _measure_entry(entry, services, repeats, validate)
        except ReproError as exc:
            raise PerfError(
                f"entry {entry.entry_id!r} failed to measure: {exc}")
        record: Dict[str, object] = {
            "schema": RECORD_SCHEMA_VERSION,
            "run_id": run.run_id,
            "commit": commit,
            "ts": started_at,
            "suite": manifest.name,
            "env": env,
        }
        record.update(body)
        run.records.append(record)
    return run
