"""Continuous performance tracking: manifests, a trajectory, and gates.

The paper's entire evaluation is measured performance, and every tier of
this repository (backends, autotuner, CEGIS rewrites) exists to move it
-- so performance is tracked like correctness, with a declarative spec of
*what* to measure, an append-only history of *every* measurement, and a
gate that turns "slower than last time" into a red build.

Four layers, one per module:

* :mod:`.manifest` -- the declarative benchmark **matrix**: entries over
  kernels x sizes x backends x {untuned, tuned, verified}, grouped into
  named suites (``smoke``, ``figures``, ``full``), loadable from JSON.
* :mod:`.environment` -- the host **fingerprint** stamped into every
  record (python/numpy versions, CPU count, ``$CC``, vectorization
  flags) and the compatibility rules that decide which historical
  records a new measurement may be compared against.
* :mod:`.runner` -- executes a manifest through the existing
  :class:`~repro.service.service.KernelService` /
  :func:`~repro.backend.make_executor` machinery and emits
  schema-versioned records (robust median + MAD seconds per call).
* :mod:`.trajectory` -- the **append-only** history
  (``BENCH_trajectory.jsonl``): one JSON record per line, atomic
  appends, corruption-tolerant reads in the TuningDB/fix-bank style,
  keyed by commit + manifest entry.
* :mod:`.analyze` -- per-entry baseline statistics over the trajectory
  and the noise-aware regression **gate** / trend report.

``python -m repro.perf run / report / gate / baseline / migrate-seed``
(:mod:`.__main__`) is the operational surface; CI runs the ``smoke``
suite and gates every push on it.
"""

from .analyze import (GateDecision, GateReport, gate_records, render_report,
                      trend_report)
from .environment import (compatibility_issues, environment_fingerprint,
                          unknown_environment)
from .manifest import (Manifest, ManifestEntry, load_manifest, suite,
                       suite_names)
from .runner import RECORD_SCHEMA_VERSION, BenchRun, run_manifest
from .trajectory import (TrajectoryStore, default_trajectory_path,
                         migrate_seed_records)

__all__ = [
    "Manifest", "ManifestEntry", "load_manifest", "suite", "suite_names",
    "environment_fingerprint", "compatibility_issues", "unknown_environment",
    "RECORD_SCHEMA_VERSION", "BenchRun", "run_manifest",
    "TrajectoryStore", "default_trajectory_path", "migrate_seed_records",
    "GateDecision", "GateReport", "gate_records", "trend_report",
    "render_report",
]
