"""Trajectory analysis: per-entry baselines, the regression gate, trends.

The gate answers one question per manifest entry: *is the candidate run
slower than the trajectory says this entry runs on comparable hosts?*
Three design rules keep the answer honest:

1. **Baselines are per-entry and environment-filtered.**  A candidate
   record is only compared against prior records of the *same entry id*
   whose environment fingerprint is compatible
   (:func:`~repro.perf.environment.compatibility_issues`); incomparable
   history (other machines, migrated seed records) is surfaced as
   ``no-baseline``, never scored.
2. **Thresholds are noise-aware.**  The slowdown that trips the gate is
   ``1 + max(min_rel, noise_mult * rel_spread)`` where ``rel_spread`` is
   the larger of the baseline's run-to-run MAD and the candidate's own
   within-run MAD, relative to the baseline median: an entry that
   historically wobbles 10% needs proportionally more slowdown to fail
   than one that repeats to 1%.
3. **Structural failures are never warnings.**  An empty candidate,
   schema drift, or mixed-run input fails the gate regardless of
   ``--warn-timing`` -- that flag only downgrades *timing* regressions
   (shared CI runners lie about speed, not about shape).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import PerfError
from .environment import compatibility_issues
from .trajectory import TRAJECTORY_SCHEMA_VERSION, record_is_valid

#: Version of the ``gate --json`` / ``report --json`` documents; bump on
#: any incompatible shape change.
REPORT_SCHEMA_VERSION = 1

#: Minimum relative slowdown that can ever trip the gate (25%: wall-clock
#: medians on busy machines routinely wobble by double digits).
DEFAULT_MIN_REL = 0.25

#: How many spreads of noise the threshold widens by.
DEFAULT_NOISE_MULT = 6.0

#: Decision statuses, in severity order.
STATUSES = ("regression", "ok", "improvement", "no-baseline", "not-run")


@dataclass
class GateDecision:
    """The gate's verdict on one manifest entry."""

    entry: str
    status: str                         # one of STATUSES
    candidate_median: Optional[float] = None
    baseline_median: Optional[float] = None
    ratio: Optional[float] = None       # candidate / baseline
    threshold: Optional[float] = None   # ratio that would trip the gate
    baseline_runs: int = 0
    notes: List[str] = field(default_factory=list)

    def to_json(self) -> Dict[str, object]:
        return {
            "entry": self.entry,
            "status": self.status,
            "candidate_median": self.candidate_median,
            "baseline_median": self.baseline_median,
            "ratio": self.ratio,
            "threshold": self.threshold,
            "baseline_runs": self.baseline_runs,
            "notes": list(self.notes),
        }


@dataclass
class GateReport:
    """Every decision of one gate evaluation, plus run identity."""

    suite: str
    candidate_run: str
    candidate_commit: str
    decisions: List[GateDecision] = field(default_factory=list)
    structural_errors: List[str] = field(default_factory=list)

    @property
    def counts(self) -> Dict[str, int]:
        tally = {status: 0 for status in STATUSES}
        for decision in self.decisions:
            tally[decision.status] += 1
        return tally

    def regressions(self) -> List[GateDecision]:
        return [d for d in self.decisions if d.status == "regression"]

    def exit_code(self, warn_timing: bool = False) -> int:
        """0 = pass.  Structural errors always fail; timing regressions
        fail unless downgraded to warnings."""
        if self.structural_errors:
            return 1
        if self.regressions() and not warn_timing:
            return 1
        return 0

    def to_json(self, warn_timing: bool = False) -> Dict[str, object]:
        return {
            "schema": REPORT_SCHEMA_VERSION,
            "suite": self.suite,
            "candidate_run": self.candidate_run,
            "candidate_commit": self.candidate_commit,
            "counts": self.counts,
            "structural_errors": list(self.structural_errors),
            "decisions": [d.to_json() for d in self.decisions],
            "warn_timing": bool(warn_timing),
            "exit_code": self.exit_code(warn_timing),
        }

    def format_table(self) -> str:
        lines = [f"[perf gate:{self.suite}]  candidate "
                 f"{self.candidate_run} @ {self.candidate_commit}"]
        for error in self.structural_errors:
            lines.append(f"  STRUCTURAL: {error}")
        width = max([len(d.entry) for d in self.decisions] + [5])
        for decision in self.decisions:
            if decision.ratio is not None:
                detail = (f"x{decision.ratio:.3f} vs baseline of "
                          f"{decision.baseline_runs} run(s), trips at "
                          f"x{decision.threshold:.3f}")
            else:
                detail = "; ".join(decision.notes) or "-"
            lines.append(f"  {decision.entry:{width}s}  "
                         f"{decision.status:12s} {detail}")
        tally = self.counts
        lines.append("  " + ", ".join(f"{tally[s]} {s}" for s in STATUSES
                                      if tally[s]))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Baseline statistics
# ---------------------------------------------------------------------------


@dataclass
class BaselineStats:
    """The trajectory's view of one entry on hosts compatible with ``env``."""

    entry: str
    runs: int                           # compatible prior records
    incompatible: int                   # records refused on environment
    median: Optional[float] = None      # median of the run medians
    spread: Optional[float] = None      # MAD of the run medians

    def to_json(self) -> Dict[str, object]:
        return {"entry": self.entry, "runs": self.runs,
                "incompatible": self.incompatible,
                "median": self.median, "spread": self.spread}


def baseline_for(entry_id: str, history: Sequence[Dict[str, object]],
                 env: Dict[str, object],
                 exclude_run: Optional[str] = None) -> BaselineStats:
    """Baseline statistics for one entry: valid records of the same entry
    id, environment-compatible with ``env``, not from ``exclude_run``."""
    compatible: List[float] = []
    incompatible = 0
    for record in history:
        if record.get("entry") != entry_id or not record_is_valid(record):
            continue
        if exclude_run is not None and record.get("run_id") == exclude_run:
            continue
        if compatibility_issues(env, record.get("env") or {}):
            incompatible += 1
            continue
        compatible.append(float(record["median_seconds"]))
    stats = BaselineStats(entry=entry_id, runs=len(compatible),
                          incompatible=incompatible)
    if compatible:
        stats.median = statistics.median(compatible)
        stats.spread = statistics.median(
            abs(m - stats.median) for m in compatible)
    return stats


# ---------------------------------------------------------------------------
# The gate
# ---------------------------------------------------------------------------


def _structural_check(candidate: Sequence[Dict[str, object]]) -> List[str]:
    """Schema assertions on the candidate run (hard failures)."""
    errors: List[str] = []
    if not candidate:
        return ["candidate run has no records"]
    run_ids = set()
    for idx, record in enumerate(candidate):
        if not record_is_valid(record):
            errors.append(f"record {idx} is structurally invalid "
                          f"(schema {TRAJECTORY_SCHEMA_VERSION} required)")
            continue
        run_ids.add(record["run_id"])
    if len(run_ids) > 1:
        errors.append(f"candidate mixes records of {len(run_ids)} runs: "
                      f"{', '.join(sorted(str(r) for r in run_ids))}")
    return errors


def gate_records(candidate: Sequence[Dict[str, object]],
                 history: Sequence[Dict[str, object]],
                 suite_entries: Optional[Sequence[str]] = None,
                 min_rel: float = DEFAULT_MIN_REL,
                 noise_mult: float = DEFAULT_NOISE_MULT) -> GateReport:
    """Judge one candidate run against the trajectory.

    ``candidate`` is the record list of exactly one run; ``history`` is
    the full trajectory (the candidate's own records are excluded from
    baselines by run id, so passing a trajectory that already contains
    the candidate is fine).  ``suite_entries`` (a manifest's entry ids)
    additionally reports entries the candidate did not cover as
    ``not-run`` -- informational, since a host may legitimately lack a
    backend.
    """
    if min_rel < 0 or noise_mult < 0:
        raise PerfError("gate thresholds must be non-negative")
    errors = _structural_check(candidate)
    valid = [r for r in candidate if record_is_valid(r)]
    if valid:
        run_id = str(valid[0]["run_id"])
        commit = str(valid[0]["commit"])
        env = valid[0].get("env") or {}
    else:
        run_id, commit, env = "?", "?", {}
    report = GateReport(suite=str(valid[0]["suite"]) if valid else "?",
                        candidate_run=run_id, candidate_commit=commit,
                        structural_errors=errors)
    covered = set()
    for record in valid:
        entry_id = str(record["entry"])
        covered.add(entry_id)
        baseline = baseline_for(entry_id, history, env, exclude_run=run_id)
        decision = GateDecision(
            entry=entry_id, status="no-baseline",
            candidate_median=float(record["median_seconds"]),
            baseline_runs=baseline.runs)
        if baseline.median is None or baseline.median <= 0.0:
            if baseline.incompatible:
                decision.notes.append(
                    f"{baseline.incompatible} prior record(s) refused: "
                    f"incompatible environment")
            else:
                decision.notes.append("no prior records for this entry")
            report.decisions.append(decision)
            continue
        candidate_mad = record.get("mad_seconds") or 0.0
        rel_spread = max(baseline.spread or 0.0,
                         float(candidate_mad)) / baseline.median
        threshold = 1.0 + max(min_rel, noise_mult * rel_spread)
        ratio = decision.candidate_median / baseline.median
        decision.baseline_median = baseline.median
        decision.ratio = ratio
        decision.threshold = threshold
        if ratio > threshold:
            decision.status = "regression"
            decision.notes.append(
                f"median {decision.candidate_median * 1e6:.2f}us vs "
                f"baseline {baseline.median * 1e6:.2f}us")
        elif ratio < 1.0 / threshold:
            decision.status = "improvement"
        else:
            decision.status = "ok"
        report.decisions.append(decision)
    for entry_id in suite_entries or ():
        if entry_id not in covered:
            report.decisions.append(GateDecision(
                entry=entry_id, status="not-run",
                notes=["entry not covered by the candidate run"]))
    return report


# ---------------------------------------------------------------------------
# Trend report
# ---------------------------------------------------------------------------


def trend_report(history: Sequence[Dict[str, object]],
                 entries: Optional[Sequence[str]] = None
                 ) -> Dict[str, object]:
    """Per-entry trajectory trends, deterministic for a fixed history.

    For every entry (or the requested subset): the chronological series
    of ``(run_id, commit, median_seconds)``, the first/latest/best
    medians, and the latest-vs-first ratio.  Record order in the
    trajectory file is append order, which is chronological by
    construction.
    """
    series: Dict[str, List[Dict[str, object]]] = {}
    for record in history:
        if not record_is_valid(record):
            continue
        entry_id = str(record["entry"])
        if entries is not None and entry_id not in entries:
            continue
        series.setdefault(entry_id, []).append({
            "run_id": record["run_id"],
            "commit": record["commit"],
            "median_seconds": float(record["median_seconds"]),
            "env_known": not compatibility_issues(
                record.get("env") or {}, record.get("env") or {}),
        })
    report_entries = []
    for entry_id in sorted(series):
        points = series[entry_id]
        medians = [p["median_seconds"] for p in points]
        report_entries.append({
            "entry": entry_id,
            "runs": len(points),
            "first_median": medians[0],
            "latest_median": medians[-1],
            "best_median": min(medians),
            "latest_vs_first": (medians[-1] / medians[0]
                                if medians[0] > 0 else None),
            "points": points,
        })
    return {
        "schema": REPORT_SCHEMA_VERSION,
        "entries": report_entries,
    }


def render_report(doc: Dict[str, object]) -> str:
    """The human-readable table of a :func:`trend_report` document."""
    lines = [f"{'entry':34s} {'runs':>4s} {'first us':>10s} "
             f"{'latest us':>10s} {'best us':>10s} {'trend':>8s}"]
    for entry in doc["entries"]:
        trend = entry["latest_vs_first"]
        lines.append(
            f"{entry['entry']:34s} {entry['runs']:4d} "
            f"{entry['first_median'] * 1e6:10.2f} "
            f"{entry['latest_median'] * 1e6:10.2f} "
            f"{entry['best_median'] * 1e6:10.2f} "
            f"{('x%.3f' % trend) if trend is not None else '-':>8s}")
    return "\n".join(lines)
