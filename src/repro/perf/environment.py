"""The host fingerprint stamped into every trajectory record.

Wall-clock medians are only comparable between *comparable hosts*: a
2-core CI runner, a 16-core workstation, a numpy major release, and a
different C compiler all shift absolute timings by far more than any
regression threshold.  Every record therefore carries
:func:`environment_fingerprint`, and the gate consults
:func:`compatibility_issues` before comparing two records -- an
incompatible pair is *refused* (reported as non-comparable), never
scored, so a laptop run can never "regress" against a CI baseline.

Records migrated from pre-trajectory artifacts (``BENCH_seed.json``
carried no environment at all) get :func:`unknown_environment`, which is
incompatible with everything by construction: the history is kept, but
nothing is ever judged against it.
"""

from __future__ import annotations

import os
import platform
import sys
from typing import Dict, List, Optional

#: Marker value of :func:`unknown_environment`'s ``source`` field.
UNKNOWN_SOURCE = "unknown"


def _compiler_label() -> Optional[str]:
    """The resolved C compiler's basename (``$CC`` wins), or None."""
    from ..backend import find_c_compiler
    try:
        compiler = find_c_compiler()
    except Exception:       # resolution must never fail a benchmark run
        return None
    if not compiler:
        return None
    return os.path.basename(compiler)


def environment_fingerprint() -> Dict[str, object]:
    """The JSON-able identity of the measuring host.

    Fields (all always present):

    ``python``      -- full CPython version string (``"3.11.7"``).
    ``numpy``       -- numpy version string.
    ``platform``    -- ``sys.platform`` (``"linux"``, ``"darwin"``, ...).
    ``machine``     -- CPU architecture (``platform.machine()``).
    ``cpu_count``   -- ``os.cpu_count()``.
    ``cc``          -- basename of the resolved C compiler, or null.
    ``vectorize`` / ``vector_width`` -- default codegen vectorization
    flags (the generated kernels being timed depend on them).
    """
    import numpy as np

    from ..slingen.options import Options
    defaults = Options()
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "cc": _compiler_label(),
        "vectorize": bool(defaults.vectorize),
        "vector_width": int(defaults.vector_width),
    }


def unknown_environment(source: str = UNKNOWN_SOURCE) -> Dict[str, object]:
    """The fingerprint of a record whose measuring host is unknown
    (e.g. migrated from ``BENCH_seed.json``).  Never comparable."""
    return {
        "python": None,
        "numpy": None,
        "platform": None,
        "machine": None,
        "cpu_count": None,
        "cc": None,
        "vectorize": None,
        "vector_width": None,
        "source": source,
    }


def _numpy_major(version: object) -> Optional[str]:
    if not isinstance(version, str) or not version:
        return None
    return version.split(".", 1)[0]


def compatibility_issues(a: Dict[str, object],
                         b: Dict[str, object]) -> List[str]:
    """Why two fingerprints must not be timing-compared (empty = fine).

    The checks are deliberately coarse: same CPU count, same
    architecture and OS, same numpy *major*, same C compiler, and same
    vectorization flags.  Anything unknown on either side (a migrated
    record) is an issue by itself.
    """
    issues: List[str] = []
    if not isinstance(a, dict) or not isinstance(b, dict):
        return ["environment fingerprint missing"]
    for env in (a, b):
        if env.get("source") or env.get("cpu_count") is None:
            return ["environment unknown (migrated or pre-trajectory "
                    "record)"]
    for field, label in (("cpu_count", "CPU count"),
                         ("machine", "CPU architecture"),
                         ("platform", "OS"),
                         ("cc", "C compiler"),
                         ("vectorize", "vectorization"),
                         ("vector_width", "vector width")):
        if a.get(field) != b.get(field):
            issues.append(f"{label} differs "
                          f"({a.get(field)!r} vs {b.get(field)!r})")
    if _numpy_major(a.get("numpy")) != _numpy_major(b.get("numpy")):
        issues.append(f"numpy major differs "
                      f"({a.get('numpy')!r} vs {b.get('numpy')!r})")
    return issues
