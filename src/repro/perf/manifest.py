"""The declarative benchmark manifest: one matrix, named suites.

A :class:`ManifestEntry` names one measurement -- a workload spec from
the service registry (``"potrf:4"``), an execution backend, and a
generation *mode* (``untuned`` = default options, ``tuned`` = TuningDB
winners applied, ``verified`` = banked CEGIS rewrites applied) -- plus
its repeat policy.  A :class:`Manifest` is an ordered list of entries
under a name; :func:`suite` builds the three built-in ones:

``smoke``
    The CI matrix (and exactly the historical ``BENCH_seed.json`` /
    ``bench_numpy_backend`` grid): potrf and gemm at n = 4, 8 on every
    execution tier, untuned.  Seconds, not minutes.
``figures``
    The paper's Fig. 14/15 kernels at the reduced size grid on the
    portable NumPy backend -- the series every perf PR is judged with.
``full``
    ``figures`` crossed with every backend and all three modes.

Entries identify trajectory records: :attr:`ManifestEntry.entry_id`
(``"potrf:4/numpy/untuned"``) is the join key between a manifest, the
runner's records, and the baseline statistics of the gate.  Custom
matrices load from JSON (:func:`load_manifest`), so a one-off experiment
gets trajectory + gate treatment without touching this module.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..backend import EXECUTORS
from ..errors import PerfError

#: Generation modes an entry may request (the tuned/verified axes resolve
#: through the TuningDB / FixBank exactly like ``--tuned``/``--verified``
#: service requests do).
MODES = ("untuned", "tuned", "verified")

#: Default repeat policy: samples per entry (the runner's robust median
#: rejects outliers, so a moderate count is enough on quiet machines).
DEFAULT_REPEATS = 7

#: The pseudo-backend measuring warm-phase-cache *generation* (not
#: kernel execution): the entry times a full candidate build served
#: entirely from a pre-warmed :class:`~repro.pipeline.cache.PhaseCache`.
#: It pairs only with the ``warm`` pseudo-mode.
PIPELINE_BACKEND = "pipeline"
PIPELINE_MODE = "warm"


@dataclass(frozen=True)
class ManifestEntry:
    """One cell of the benchmark matrix."""

    kernel: str                 # registry workload spec, e.g. "potrf:4"
    backend: str                # execution backend (repro.backend.EXECUTORS)
    mode: str = "untuned"       # untuned | tuned | verified
    repeats: int = DEFAULT_REPEATS

    def __post_init__(self) -> None:
        if self.backend == PIPELINE_BACKEND or self.mode == PIPELINE_MODE:
            # The generation-speed pseudo-entry: backend and mode only
            # pair with each other (there is no "tuned pipeline" or
            # "warm numpy" cell in the matrix).
            if (self.backend, self.mode) != (PIPELINE_BACKEND,
                                             PIPELINE_MODE):
                raise PerfError(
                    f"manifest entry {self.kernel!r}: backend "
                    f"{PIPELINE_BACKEND!r} and mode {PIPELINE_MODE!r} "
                    f"only combine with each other, got "
                    f"{self.backend!r}/{self.mode!r}")
        elif self.backend not in EXECUTORS:
            raise PerfError(
                f"manifest entry {self.kernel!r}: unknown backend "
                f"{self.backend!r}; known: {', '.join(EXECUTORS)}")
        elif self.mode not in MODES:
            raise PerfError(
                f"manifest entry {self.kernel!r}: unknown mode "
                f"{self.mode!r}; known: {', '.join(MODES)}")
        if self.repeats < 1:
            raise PerfError(
                f"manifest entry {self.kernel!r}: repeats must be >= 1")

    @property
    def entry_id(self) -> str:
        """The stable join key between manifests, records, and baselines."""
        return f"{self.kernel}/{self.backend}/{self.mode}"

    def to_json(self) -> Dict[str, object]:
        return {"kernel": self.kernel, "backend": self.backend,
                "mode": self.mode, "repeats": self.repeats}

    @classmethod
    def from_json(cls, doc: Dict[str, object]) -> "ManifestEntry":
        if not isinstance(doc, dict) or "kernel" not in doc \
                or "backend" not in doc:
            raise PerfError(f"bad manifest entry: {doc!r:.120}")
        return cls(kernel=str(doc["kernel"]), backend=str(doc["backend"]),
                   mode=str(doc.get("mode", "untuned")),
                   repeats=int(doc.get("repeats", DEFAULT_REPEATS)))


@dataclass
class Manifest:
    """An ordered, duplicate-free list of entries under a name."""

    name: str
    entries: List[ManifestEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        seen: Dict[str, bool] = {}
        for entry in self.entries:
            if entry.entry_id in seen:
                raise PerfError(
                    f"manifest {self.name!r}: duplicate entry "
                    f"{entry.entry_id!r}")
            seen[entry.entry_id] = True

    def entry_ids(self) -> List[str]:
        return [entry.entry_id for entry in self.entries]

    def subset(self, entry_ids: Sequence[str]) -> "Manifest":
        """The manifest restricted to the given entry ids (order kept)."""
        wanted = set(entry_ids)
        unknown = wanted - set(self.entry_ids())
        if unknown:
            raise PerfError(
                f"manifest {self.name!r} has no entries "
                f"{', '.join(sorted(unknown))}")
        return Manifest(name=self.name,
                        entries=[e for e in self.entries
                                 if e.entry_id in wanted])

    def to_json(self) -> Dict[str, object]:
        return {"name": self.name,
                "entries": [entry.to_json() for entry in self.entries]}


# ---------------------------------------------------------------------------
# Built-in suites
# ---------------------------------------------------------------------------

#: The smoke grid is deliberately the historical ``bench_numpy_backend``
#: matrix, so migrated ``BENCH_seed.json`` records land on these entry ids.
SMOKE_KERNELS = ("potrf", "gemm")
SMOKE_SIZES = (4, 8)
SMOKE_BACKENDS = ("interpreter", "numpy", "compiled")

#: Fig. 14 HLACs + Fig. 15 applications at the reduced benchmark grid.
FIGURE_HLACS = ("potrf", "gemm", "trsm", "trsyl", "trlya", "trtri")
FIGURE_HLAC_SIZES = (4, 12)
FIGURE_APPS = ("kf:4x4", "gpr:4", "l1a:4")


def _smoke_entries() -> List[ManifestEntry]:
    entries = [ManifestEntry(kernel=f"{kernel}:{size}", backend=backend)
               for kernel in SMOKE_KERNELS for size in SMOKE_SIZES
               for backend in SMOKE_BACKENDS]
    # Generation speed is tracked alongside execution speed: the warm
    # phase-cache candidate build must stay fast, or tuning/fuzz/CEGIS
    # iteration all quietly regress.
    entries.append(ManifestEntry(kernel="potrf:8",
                                 backend=PIPELINE_BACKEND,
                                 mode=PIPELINE_MODE))
    return entries


def _figure_specs() -> List[str]:
    specs = [f"{kernel}:{size}" for kernel in FIGURE_HLACS
             for size in FIGURE_HLAC_SIZES]
    specs.extend(FIGURE_APPS)
    return specs


def _figures_entries() -> List[ManifestEntry]:
    return [ManifestEntry(kernel=spec, backend="numpy")
            for spec in _figure_specs()]


def _full_entries() -> List[ManifestEntry]:
    return [ManifestEntry(kernel=spec, backend=backend, mode=mode)
            for spec in _figure_specs()
            for backend in ("interpreter", "numpy", "compiled")
            for mode in MODES]


_SUITES = {
    "smoke": _smoke_entries,
    "figures": _figures_entries,
    "full": _full_entries,
}


def suite_names() -> List[str]:
    return sorted(_SUITES)


def suite(name: str) -> Manifest:
    """The named built-in suite as a manifest."""
    try:
        builder = _SUITES[name]
    except KeyError:
        raise PerfError(f"unknown suite {name!r}; "
                        f"known: {', '.join(suite_names())}")
    return Manifest(name=name, entries=builder())


def load_manifest(path: str) -> Manifest:
    """A manifest from a JSON file: ``{"name": ..., "entries": [...]}``
    (or a bare entry list, named after the file)."""
    import os
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as exc:
        raise PerfError(f"cannot load manifest {path!r}: {exc}")
    if isinstance(doc, list):
        doc = {"name": os.path.splitext(os.path.basename(path))[0],
               "entries": doc}
    if not isinstance(doc, dict) or not isinstance(doc.get("entries"), list):
        raise PerfError(f"manifest {path!r} must be an object with an "
                        f"'entries' list (or a bare entry list)")
    entries = [ManifestEntry.from_json(entry) for entry in doc["entries"]]
    return Manifest(name=str(doc.get("name") or "manifest"), entries=entries)


def resolve(name_or_path: Optional[str], manifest_path: Optional[str] = None
            ) -> Manifest:
    """The manifest a CLI invocation names: an explicit ``--manifest`` file
    wins, then a suite name, then the ``smoke`` default."""
    if manifest_path:
        return load_manifest(manifest_path)
    return suite(name_or_path or "smoke")
