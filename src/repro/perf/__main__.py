"""Command-line front-end of the continuous-performance subsystem.

Usage (``PYTHONPATH=src python -m repro.perf <command>``)::

    run     [--suite S | --manifest FILE] [--repeats N] [--validate]
            [--json FILE] [--no-append] [--commit LABEL]
        Execute the benchmark matrix, append the records to the
        trajectory (unless --no-append), and optionally write the run
        document as JSON (the CI artifact).

    gate    [--suite S | --manifest FILE] [--candidate FILE] [--json]
            [--warn-timing] [--min-rel X] [--noise-mult K]
        Judge a candidate run (default: the trajectory's latest) against
        the per-entry, environment-compatible baseline statistics of the
        trajectory.  Exit 1 on a timing regression (downgraded to a
        warning by --warn-timing) or on any structural error (never
        downgraded).

    report  [--suite S | --manifest FILE] [--entry ID ...] [--json]
        Per-entry trends over the whole trajectory.

    baseline [--suite S | --manifest FILE] [--json]
        The baseline statistics the gate would compare a run from *this*
        host against (per entry: compatible runs, median, spread).

    migrate-seed [FILE] [--commit LABEL] [--no-append]
        One-time shim: append the pre-trajectory ``BENCH_seed.json``
        records (unknown environment, never compared against) to the
        trajectory.

The trajectory file defaults to ``BENCH_trajectory.jsonl`` in the
current directory and can be moved with ``--trajectory`` or the
``REPRO_TRAJECTORY`` environment variable.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..cli import (EXIT_FAILURE, EXIT_OK, add_json_flag, fail,
                   print_json)
from ..errors import ReproError
from .analyze import (DEFAULT_MIN_REL, DEFAULT_NOISE_MULT, gate_records,
                      render_report, trend_report)
from .environment import environment_fingerprint
from .manifest import resolve, suite_names
from .runner import run_manifest
from .trajectory import (TrajectoryStore, default_trajectory_path,
                         migrate_seed_records, record_is_valid)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Run benchmark manifests, maintain the append-only "
                    "performance trajectory, and gate on regressions.")
    parser.add_argument("--trajectory", default=None, metavar="FILE",
                        help=f"trajectory file (default: "
                             f"{default_trajectory_path()})")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_matrix_args(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--suite", default="smoke", choices=suite_names(),
                         help="built-in suite to use (default: smoke)")
        cmd.add_argument("--manifest", default=None, metavar="FILE",
                         help="explicit JSON manifest (overrides --suite)")

    run = sub.add_parser("run", help="execute the benchmark matrix and "
                                     "append a trajectory run")
    add_matrix_args(run)
    run.add_argument("--repeats", type=int, default=None, metavar="N",
                     help="override every entry's repeat policy")
    run.add_argument("--validate", action="store_true",
                     help="also check each kernel against its case oracle")
    run.add_argument("--json", default=None, metavar="FILE", dest="json_out",
                     help="write the run document as JSON ('-' = stdout)")
    run.add_argument("--no-append", action="store_true",
                     help="do not append the records to the trajectory")
    run.add_argument("--commit", default=None, metavar="LABEL",
                     help="commit label for the records (default: git HEAD)")

    gate = sub.add_parser("gate", help="judge a run against the "
                                       "trajectory's baselines")
    add_matrix_args(gate)
    gate.add_argument("--candidate", default=None, metavar="FILE",
                      help="run document / record list to judge (default: "
                           "the trajectory's latest run)")
    add_json_flag(gate, help="emit the machine-readable gate report "
                             "(stable schema) instead of the table")
    gate.add_argument("--warn-timing", action="store_true",
                      help="downgrade timing regressions to warnings "
                           "(structural errors still fail)")
    gate.add_argument("--min-rel", type=float, default=DEFAULT_MIN_REL,
                      metavar="X",
                      help="minimum relative slowdown that can fail "
                           "(default: %(default)s)")
    gate.add_argument("--noise-mult", type=float,
                      default=DEFAULT_NOISE_MULT, metavar="K",
                      help="threshold widening in units of measured "
                           "spread (default: %(default)s)")

    report = sub.add_parser("report", help="per-entry trends over the "
                                           "trajectory")
    add_matrix_args(report)
    report.add_argument("--entry", action="append", default=None,
                        metavar="ID",
                        help="restrict to an entry id (repeatable); "
                             "default: every entry in the trajectory")
    add_json_flag(report, help="emit the machine-readable report "
                               "(stable schema) instead of the table")

    baseline = sub.add_parser("baseline",
                              help="the gate's baseline statistics for "
                                   "this host")
    add_matrix_args(baseline)
    add_json_flag(baseline, help="emit machine-readable statistics")

    migrate = sub.add_parser("migrate-seed",
                             help="append pre-trajectory BENCH_seed.json "
                                  "records to the trajectory")
    migrate.add_argument("seed", nargs="?", default="BENCH_seed.json",
                         metavar="FILE",
                         help="seed record file (default: %(default)s)")
    migrate.add_argument("--commit", default="seed", metavar="LABEL",
                         help="commit label for the migrated records "
                              "(default: %(default)s)")
    migrate.add_argument("--no-append", action="store_true",
                         help="print the migrated records instead of "
                              "appending them")
    add_json_flag(migrate)
    return parser


def _cmd_run(store: TrajectoryStore, args: argparse.Namespace) -> int:
    manifest = resolve(args.suite, args.manifest)
    run = run_manifest(manifest, repeats=args.repeats,
                       validate=args.validate, commit=args.commit)
    print(run.format_table())
    if not args.no_append:
        appended = store.append(run.records)
        print(f"appended {appended} record(s) to {store.path}")
    if args.json_out:
        doc = json.dumps(run.to_json(), indent=2, sort_keys=True)
        if args.json_out == "-":
            print(doc)
        else:
            with open(args.json_out, "w", encoding="utf-8") as handle:
                handle.write(doc + "\n")
            print(f"wrote {args.json_out} ({len(run.records)} records, "
                  f"{len(run.skipped)} skipped)")
    if args.validate:
        wrong = [r["entry"] for r in run.records if r["correct"] is False]
        if wrong:
            print(f"FAIL: incorrect outputs from {', '.join(wrong)}")
            return EXIT_FAILURE
    return EXIT_OK


def _load_candidate(path: str) -> List[dict]:
    """Candidate records from a ``run --json`` document or a bare list."""
    from ..errors import PerfError
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as exc:
        raise PerfError(f"cannot read candidate {path!r}: {exc}")
    if isinstance(doc, dict) and isinstance(doc.get("records"), list):
        return doc["records"]
    if isinstance(doc, list):
        return doc
    raise PerfError(f"candidate {path!r} is neither a run document nor "
                    f"a record list")


def _cmd_gate(store: TrajectoryStore, args: argparse.Namespace) -> int:
    manifest = resolve(args.suite, args.manifest)
    history = store.load()
    if args.candidate:
        candidate = _load_candidate(args.candidate)
    else:
        latest = store.latest_run()
        if latest is None:
            print(f"error: trajectory {store.path!r} has no runs and no "
                  f"--candidate was given", file=sys.stderr)
            return 1
        candidate = latest[1]
    report = gate_records(candidate, history,
                          suite_entries=manifest.entry_ids(),
                          min_rel=args.min_rel,
                          noise_mult=args.noise_mult)
    if args.as_json:
        print(json.dumps(report.to_json(warn_timing=args.warn_timing),
                         indent=2, sort_keys=True))
    else:
        print(report.format_table())
        if args.warn_timing and report.regressions():
            print("warning: timing regressions downgraded by --warn-timing")
    return report.exit_code(warn_timing=args.warn_timing)


def _cmd_report(store: TrajectoryStore, args: argparse.Namespace) -> int:
    entries = args.entry
    if entries is None and (args.manifest or args.suite != "smoke"):
        entries = resolve(args.suite, args.manifest).entry_ids()
    doc = trend_report(store.load(), entries=entries)
    if args.as_json:
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    if not doc["entries"]:
        print(f"trajectory {store.path} has no matching records")
        return 0
    print(render_report(doc))
    if store.dropped:
        print(f"({store.dropped} undecodable line(s) skipped)")
    return 0


def _cmd_baseline(store: TrajectoryStore, args: argparse.Namespace) -> int:
    from .analyze import baseline_for
    manifest = resolve(args.suite, args.manifest)
    env = environment_fingerprint()
    history = store.load()
    stats = [baseline_for(entry_id, history, env)
             for entry_id in manifest.entry_ids()]
    if args.as_json:
        print(json.dumps({
            "schema": 1,
            "suite": manifest.name,
            "env": env,
            "baselines": [s.to_json() for s in stats],
        }, indent=2, sort_keys=True))
        return 0
    print(f"[perf baseline:{manifest.name}]  trajectory {store.path}")
    for s in stats:
        if s.median is not None:
            print(f"  {s.entry:34s} {s.runs:3d} run(s)  "
                  f"median {s.median * 1e6:10.2f}us  "
                  f"spread {(s.spread or 0.0) * 1e6:8.2f}us")
        else:
            print(f"  {s.entry:34s} no compatible baseline "
                  f"({s.incompatible} incompatible record(s))")
    return 0


def _cmd_migrate_seed(store: TrajectoryStore,
                      args: argparse.Namespace) -> int:
    records = migrate_seed_records(args.seed, commit=args.commit)
    assert all(record_is_valid(r) for r in records)
    if args.no_append:
        print_json(records)
        return EXIT_OK
    appended = store.append(records)
    if args.as_json:
        print_json({"migrated": appended, "seed": args.seed,
                    "trajectory": store.path})
    else:
        print(f"migrated {appended} seed record(s) from {args.seed} "
              f"into {store.path}")
    return EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    store = TrajectoryStore(path=args.trajectory)
    try:
        if args.command == "run":
            return _cmd_run(store, args)
        if args.command == "gate":
            return _cmd_gate(store, args)
        if args.command == "report":
            return _cmd_report(store, args)
        if args.command == "baseline":
            return _cmd_baseline(store, args)
        if args.command == "migrate-seed":
            return _cmd_migrate_seed(store, args)
    except ReproError as exc:
        return fail(exc)
    return EXIT_OK  # pragma: no cover - argparse enforces a command


if __name__ == "__main__":
    sys.exit(main())
