"""Execution backend that compiles C-IR to portable Python/NumPy kernels.

The repository has two ways to *run* a generated kernel: compile the
emitted C with a host compiler (:mod:`repro.backend.compile`, the
strongest check, but needs ``$CC`` and AVX) or walk the C-IR tree one
statement at a time (:mod:`repro.cir.interpreter`, always available, but
orders of magnitude too slow to benchmark with).  This module adds the
third tier: a translator that walks a C-IR :class:`~repro.cir.nodes.Function`
once and emits a self-contained Python source module whose single function
executes the kernel on flat ``float64`` arrays, compiled once with
:func:`compile`/``exec`` and wrapped in :class:`NumPyKernel` -- a drop-in
sibling of :class:`~repro.backend.compile.CompiledKernel` (same
``run``/``time`` contract), no C compiler required.

The C-IR is already nu-vector-shaped, so vector nodes map 1:1; the
translator supports two emission modes:

* ``"unrolled"`` (default): every width-``nu`` vector value is
  lane-decomposed into ``nu`` scalar expressions at *translation* time --
  loads become per-lane indexing, lane-wise arithmetic becomes scalar
  arithmetic, and the data-reorganization ops (blend/shuffle/permute/
  unpack) and mask constants resolve into pure lane selection, i.e. they
  cost nothing at run time.  Buffers live as Python lists inside the
  kernel (converted from/to the caller's ndarrays at entry/exit).  For
  the paper's kernel sizes (nu = 4) this is by far the fastest portable
  execution: one NumPy micro-op costs ~0.5-1 us of dispatch overhead,
  more than the *whole* 4-lane computation it performs.
* ``"vectorized"``: the direct ndarray mapping -- contiguous
  ``VLoad``/``VStore`` become slices, masked variants use precomputed
  lane-index gathers (AVX ``maskload``/``maskstore`` semantics, including
  partial vectors at buffer edges), lane-wise arithmetic becomes ndarray
  arithmetic, ``VReduceAdd`` becomes ``.sum()``, and blends become
  ``np.where``.  Slower at nu = 4 (see above), but the emitted code reads
  exactly like the AVX intrinsics it mirrors and scales to wide vectors.

Both modes implement the exact semantics of the AVX instructions the C
unparser emits, so interpreter, NumPy, and compiled-C runs of the same
kernel agree to rounding error (the cross-backend differential CI job
asserts 1e-12).  Like the compiled ``.so`` cache, generated sources are
cached content-addressed on disk (``REPRO_NUMPY_CACHE``, next to the
object cache) and compiled code objects are memoized in-process.
"""

from __future__ import annotations

import hashlib
import os
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..cir.nodes import (Affine, Assign, BinOp, CExpr, Comment, CStmt,
                         FloatConst, For, Function, If, Load, ScalarVar,
                         Store, UnOp, VBinOp, VBlend, VBroadcast, VecVar,
                         VExtract, VFma, VLoad, VPermute2f128, VReduceAdd,
                         VSet, VShufflePd, VStore, VUnpack, VZero)
from ..errors import BackendError

#: Bump whenever the emitted Python changes incompatibly; stale cached
#: sources are then simply regenerated (the digest covers this value).
#: v2: C semantics for sqrt(negative) -> NaN and division by zero ->
#: inf/NaN (fuzzer-found divergences from the compiled backend).
NUMPY_BACKEND_VERSION = 2

#: Supported emission modes (see module docstring).
MODES = ("unrolled", "vectorized")

_PRELUDE_UNROLLED = """\
from math import copysign as _copysign, isnan as _isnan
from math import sqrt as _math_sqrt


def sqrt(x):
    # C sqrt() semantics: negative arguments give NaN, not an exception.
    x = float(x)
    return _math_sqrt(x) if x >= 0.0 else float("nan")


def _div(a, b):
    # C division semantics: x/0 is a signed infinity, 0/0 is NaN
    # (buffers are Python floats here, whose / would raise instead).
    if b == 0.0:
        if a == 0.0 or _isnan(a):
            return float("nan")
        return _copysign(float("inf"), a) * _copysign(1.0, b)
    return a / b
"""

_PRELUDE_VECTORIZED = '''\
import numpy as np
from math import sqrt as _math_sqrt


def sqrt(x):
    # C sqrt() semantics: negative arguments give NaN, not an exception.
    x = float(x)
    return _math_sqrt(x) if x >= 0.0 else float("nan")


def _div(a, b):
    # C division semantics: x/0 is a signed infinity, 0/0 is NaN.
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.divide(a, b)


def _maskload(buf, base, lanes, width):
    """AVX maskload: active lanes read, inactive lanes are 0.0."""
    out = np.zeros(width, dtype=np.float64)
    out[lanes] = buf[base + lanes]
    return out


def _maskstore(buf, base, lanes, value):
    """AVX maskstore: only active lanes are written."""
    value = np.asarray(value, dtype=np.float64)
    buf[base + lanes] = value[lanes] if value.ndim else value


def _shuffle(a, b, ai, bi):
    """AVX shuffle_pd: even result lanes gather from a, odd from b."""
    out = np.empty(4, dtype=np.float64)
    out[0::2] = a[ai]
    out[1::2] = b[bi]
    return out


def _perm2f128(a, b, imm):
    """AVX permute2f128_pd: select/zero 128-bit halves of two sources."""
    out = np.zeros(4, dtype=np.float64)
    for half in range(2):
        control = (imm >> (4 * half)) & 0xF
        if not control & 0x8:
            source = a if (control & 2) == 0 else b
            offset = 2 if (control & 1) else 0
            out[2 * half:2 * half + 2] = source[offset:offset + 2]
    return out


def _unpack(a, b, off):
    """AVX unpacklo_pd (off=0) / unpackhi_pd (off=1)."""
    out = np.empty(4, dtype=np.float64)
    out[0::2] = a[off::2]
    out[1::2] = b[off::2]
    return out
'''


def _mangle(name: str) -> str:
    """A collision-free Python identifier for a C-IR name.

    Buffer/register/index names come from the LA frontend and the
    lowering; they may shadow the prelude helpers, numpy, or be Python
    keywords outright (the GPR application declares ``Sca lambda``), so
    every C-IR identifier gets a reserved prefix (injective: distinct
    C-IR names never collide after mangling).
    """
    if not name.isidentifier():
        raise BackendError(f"cannot translate C-IR identifier {name!r}")
    return f"v_{name}"


#: Scalar-valued expression nodes cheap and pure enough to duplicate
#: per lane instead of binding to a temporary first.
_ATOMIC_SCALARS = (FloatConst, ScalarVar, Load)


class NumPyTranslator:
    """Emits the Python source module for one C-IR function."""

    def __init__(self, function: Function, mode: str = "unrolled",
                 indent: str = "    "):
        if mode not in MODES:
            raise BackendError(
                f"unknown NumPy backend mode {mode!r}; known: "
                f"{', '.join(MODES)}")
        self.function = function
        self.mode = mode
        self.indent = indent
        #: (constant-name, python-literal) pairs discovered while emitting
        #: (vectorized mode: mask lane gathers, blend selectors, ...).
        self._constants: Dict[str, str] = {}
        self._const_keys: Dict[Tuple[str, object], str] = {}
        #: auxiliary assignments to flush before the current statement
        #: (unrolled mode: temporaries for broadcast of a compound scalar).
        self._pending: List[str] = []
        self._temp_count = 0

    # -- public API ----------------------------------------------------------

    def translate(self) -> str:
        """Return the complete, self-contained Python translation unit."""
        body = self._stmts(self.function.body, 1)
        pad = self.indent
        lines: List[str] = []
        lines.append(f'"""{self.mode.capitalize()} NumPy-backend execution '
                     f'of C-IR kernel {self.function.name!r} '
                     f'(generated; do not edit)."""')
        lines.append(_PRELUDE_UNROLLED if self.mode == "unrolled"
                     else _PRELUDE_VECTORIZED)
        for name, literal in self._constants.items():
            lines.append(f"{name} = {literal}")
        if self._constants:
            lines.append("")
        lines.append("")
        params = ", ".join(f"_p_{buf.name}" for buf in self.function.params)
        lines.append(f"def {self.function.name}({params}):")
        for buf in self.function.params:
            if self.mode == "unrolled":
                lines.append(f"{pad}{_mangle(buf.name)} = "
                             f"_p_{buf.name}.tolist()")
            else:
                lines.append(f"{pad}{_mangle(buf.name)} = _p_{buf.name}")
        for buf in self.function.temps:
            if self.mode == "unrolled":
                lines.append(f"{pad}{_mangle(buf.name)} = "
                             f"[0.0] * {buf.size}")
            else:
                lines.append(f"{pad}{_mangle(buf.name)} = "
                             f"np.zeros({buf.size}, dtype=np.float64)")
        lines.extend(body)
        if self.mode == "unrolled":
            # Publish list contents back into the caller's flat arrays.
            for buf in self.function.params:
                if buf.writable:
                    lines.append(f"{pad}_p_{buf.name}[:] = "
                                 f"{_mangle(buf.name)}")
        if len(lines) == lines.index(f"def {self.function.name}({params}):") \
                + 1:  # pragma: no cover - a Function always has params/body
            lines.append(f"{pad}pass")
        return "\n".join(lines) + "\n"

    # -- precomputed constants (vectorized mode) -----------------------------

    def _constant(self, kind: str, key: object, literal: str) -> str:
        dedupe = (kind, key)
        found = self._const_keys.get(dedupe)
        if found is not None:
            return found
        name = f"_{kind}{len(self._constants)}"
        self._constants[name] = literal
        self._const_keys[dedupe] = name
        return name

    def _lanes_constant(self, mask: Tuple[bool, ...]) -> str:
        lanes = [lane for lane, keep in enumerate(mask) if keep]
        return self._constant(
            "LANES", mask, f"np.array({lanes!r}, dtype=np.intp)")

    def _blend_constant(self, imm: int, width: int) -> str:
        sel = [bool(imm >> lane & 1) for lane in range(width)]
        return self._constant(
            "BLEND", (imm, width), f"np.array({sel!r}, dtype=bool)")

    def _shuffle_constants(self, imm: int) -> Tuple[str, str]:
        a_idx = [imm & 1, 2 + ((imm >> 2) & 1)]
        b_idx = [(imm >> 1) & 1, 2 + ((imm >> 3) & 1)]
        return (self._constant("GA", ("a", imm),
                               f"np.array({a_idx!r}, dtype=np.intp)"),
                self._constant("GB", ("b", imm),
                               f"np.array({b_idx!r}, dtype=np.intp)"))

    # -- affine index expressions --------------------------------------------

    def _affine(self, affine: Affine) -> str:
        parts: List[str] = []
        for name, coef in affine.terms:
            if coef == 1:
                parts.append(_mangle(name))
            else:
                parts.append(f"{coef} * {_mangle(name)}")
        if affine.const or not parts:
            parts.append(str(affine.const))
        return " + ".join(parts).replace("+ -", "- ")

    # -- statements ----------------------------------------------------------

    def _stmts(self, stmts: List[CStmt], depth: int) -> List[str]:
        pad = self.indent * depth
        lines: List[str] = []
        for stmt in stmts:
            lines.extend(self._stmt(stmt, pad))
        return lines

    def _flush(self, pad: str, lines: List[str]) -> None:
        lines.extend(pad + pending for pending in self._pending)
        self._pending.clear()

    def _stmt(self, stmt: CStmt, pad: str) -> List[str]:
        lines: List[str] = []
        if isinstance(stmt, Comment):
            lines.append(f"{pad}# {stmt.text}")
        elif isinstance(stmt, Assign):
            if self.mode == "unrolled" and isinstance(stmt.dest, VecVar):
                width = stmt.dest.width
                dests = ", ".join(f"{_mangle(stmt.dest.name)}_{lane}"
                                  for lane in range(width))
                values = ", ".join(self._lanes(stmt.value, width))
                self._flush(pad, lines)
                lines.append(f"{pad}{dests} = {values}")
            else:
                value = self._scalar(stmt.value) \
                    if self.mode == "unrolled" else self._expr(stmt.value)
                self._flush(pad, lines)
                lines.append(f"{pad}{_mangle(stmt.dest.name)} = {value}")
        elif isinstance(stmt, Store):
            value = self._scalar(stmt.value) if self.mode == "unrolled" \
                else self._expr(stmt.value)
            self._flush(pad, lines)
            lines.append(f"{pad}{_mangle(stmt.buffer.name)}"
                         f"[{self._affine(stmt.index)}] = {value}")
        elif isinstance(stmt, VStore):
            lines.extend(self._vstore(stmt, pad))
        elif isinstance(stmt, For):
            lines.append(f"{pad}for {_mangle(stmt.var)} in "
                         f"range({stmt.start}, {stmt.stop}, {stmt.step}):")
            lines.extend(self._block(stmt.body, pad + self.indent))
        elif isinstance(stmt, If):
            lines.append(f"{pad}if {self._affine(stmt.lhs)} {stmt.op} "
                         f"{self._affine(stmt.rhs)}:")
            lines.extend(self._block(stmt.then_body, pad + self.indent))
            if stmt.else_body:
                lines.append(f"{pad}else:")
                lines.extend(self._block(stmt.else_body, pad + self.indent))
        else:
            raise BackendError(f"cannot translate statement {stmt!r}")
        return lines

    def _block(self, stmts: List[CStmt], pad: str) -> List[str]:
        lines: List[str] = []
        for stmt in stmts:
            lines.extend(self._stmt(stmt, pad))
        # Comment-only (or empty) bodies still need a statement.
        if not any(not line.lstrip().startswith("#") for line in lines):
            lines.append(f"{pad}pass")
        return lines

    def _vstore(self, stmt: VStore, pad: str) -> List[str]:
        buffer = _mangle(stmt.buffer.name)
        base = self._affine(stmt.index)
        lines: List[str] = []
        if self.mode == "unrolled":
            lanes = self._lanes(stmt.value, stmt.width)
            if stmt.mask is None:
                self._flush(pad, lines)
                values = ", ".join(lanes)
                lines.append(f"{pad}{buffer}[({base}):({base}) + "
                             f"{stmt.width}] = ({values})")
                return lines
            active = [lane for lane, keep in enumerate(stmt.mask) if keep]
            if len(active) > 1:
                # AVX maskstore evaluates the whole source vector before
                # writing any lane; bind the active lanes first so an
                # aliasing value expression (a masked load from the same
                # buffer) cannot observe this store's earlier lanes.
                names = [self._fresh_temp() for _ in active]
                self._pending.append(
                    ", ".join(names) + " = "
                    + ", ".join(lanes[lane] for lane in active))
                stores = dict(zip(active, names))
            else:
                stores = {lane: lanes[lane] for lane in active}
            self._flush(pad, lines)
            for lane in active:
                index = self._affine(stmt.index + lane)
                lines.append(f"{pad}{buffer}[{index}] = {stores[lane]}")
            return lines
        value = self._expr(stmt.value)
        if stmt.mask is None:
            lines.append(f"{pad}{buffer}[({base}):({base}) + "
                         f"{stmt.width}] = {value}")
        else:
            gather = self._lanes_constant(stmt.mask)
            lines.append(f"{pad}_maskstore({buffer}, {base}, {gather}, "
                         f"{value})")
        return lines

    # -- unrolled mode: lane decomposition -----------------------------------

    def _fresh_temp(self) -> str:
        self._temp_count += 1
        return f"_t{self._temp_count}"

    def _temp(self, value: str) -> str:
        """Bind a compound scalar expression to a pre-statement temporary
        so lane decomposition never duplicates its evaluation."""
        name = self._fresh_temp()
        self._pending.append(f"{name} = {value}")
        return name

    def _scalar(self, expr: CExpr) -> str:
        """Emit a scalar-valued expression (unrolled mode)."""
        if isinstance(expr, FloatConst):
            return repr(float(expr.value))
        if isinstance(expr, (ScalarVar, VecVar)):
            if isinstance(expr, VecVar):
                raise BackendError(
                    f"vector register {expr.name!r} used as a scalar")
            return _mangle(expr.name)
        if isinstance(expr, Load):
            return (f"{_mangle(expr.buffer.name)}"
                    f"[{self._affine(expr.index)}]")
        if isinstance(expr, BinOp):
            left, right = self._scalar(expr.left), self._scalar(expr.right)
            if expr.op == "div":
                return f"_div({left}, {right})"
            symbol = {"add": "+", "sub": "-", "mul": "*"}
            if expr.op in symbol:
                return f"({left} {symbol[expr.op]} {right})"
            return f"{expr.op}({left}, {right})"
        if isinstance(expr, UnOp):
            if expr.op == "neg":
                return f"(-{self._scalar(expr.operand)})"
            return f"sqrt({self._scalar(expr.operand)})"
        if isinstance(expr, VReduceAdd):
            lanes = self._lanes(expr.vec, getattr(expr.vec, "width", 4))
            if len(lanes) == 4:
                # Pairwise, matching the C helper repro_reduce_add_pd.
                return (f"(({lanes[0]} + {lanes[2]}) + "
                        f"({lanes[1]} + {lanes[3]}))")
            return "(" + " + ".join(lanes) + ")"
        if isinstance(expr, VExtract):
            return self._lanes(expr.vec, None)[expr.lane]
        raise BackendError(f"cannot translate scalar expression {expr!r}")

    def _lanes(self, expr: CExpr, width: Optional[int]) -> Tuple[str, ...]:
        """Emit a vector-valued expression as one string per lane
        (unrolled mode).  Scalar-valued expressions broadcast, matching
        the interpreter's promotion rules."""
        if isinstance(expr, VecVar):
            name = _mangle(expr.name)
            return tuple(f"{name}_{lane}" for lane in range(expr.width))
        if isinstance(expr, VLoad):
            buffer = _mangle(expr.buffer.name)
            mask = expr.mask if expr.mask is not None \
                else (True,) * expr.width
            return tuple(
                f"{buffer}[{self._affine(expr.index + lane)}]"
                if keep else "0.0"
                for lane, keep in enumerate(mask))
        if isinstance(expr, VBroadcast):
            value = self._scalar(expr.value)
            if not isinstance(expr.value, _ATOMIC_SCALARS):
                value = self._temp(value)
            return (value,) * expr.width
        if isinstance(expr, VSet):
            return tuple(self._scalar(e) for e in expr.elements)
        if isinstance(expr, VZero):
            return ("0.0",) * expr.width
        if isinstance(expr, VBinOp):
            left = self._lanes(expr.left, expr.width)
            right = self._lanes(expr.right, expr.width)
            symbol = {"add": "+", "sub": "-", "mul": "*", "div": "/"}
            if expr.op in symbol:
                return tuple(f"({l} {symbol[expr.op]} {r})"
                             for l, r in zip(left, right))
            return tuple(f"{expr.op}({l}, {r})"
                         for l, r in zip(left, right))
        if isinstance(expr, VFma):
            a = self._lanes(expr.a, expr.width)
            b = self._lanes(expr.b, expr.width)
            c = self._lanes(expr.c, expr.width)
            return tuple(f"({x} * {y} + {z})"
                         for x, y, z in zip(a, b, c))
        if isinstance(expr, VBlend):
            a = self._lanes(expr.a, expr.width)
            b = self._lanes(expr.b, expr.width)
            return tuple(b[lane] if expr.imm >> lane & 1 else a[lane]
                         for lane in range(expr.width))
        if isinstance(expr, VShufflePd):
            a = self._lanes(expr.a, 4)
            b = self._lanes(expr.b, 4)
            imm = expr.imm
            return (a[imm & 1], b[(imm >> 1) & 1],
                    a[2 + ((imm >> 2) & 1)], b[2 + ((imm >> 3) & 1)])
        if isinstance(expr, VPermute2f128):
            a = self._lanes(expr.a, 4)
            b = self._lanes(expr.b, 4)
            out: List[str] = []
            for half in range(2):
                control = (expr.imm >> (4 * half)) & 0xF
                if control & 0x8:
                    out.extend(("0.0", "0.0"))
                else:
                    source = a if (control & 2) == 0 else b
                    offset = 2 if (control & 1) else 0
                    out.extend(source[offset:offset + 2])
            return tuple(out)
        if isinstance(expr, VUnpack):
            a = self._lanes(expr.a, 4)
            b = self._lanes(expr.b, 4)
            off = 1 if expr.high else 0
            return (a[off], b[off], a[2 + off], b[2 + off])
        # Scalar-valued expression in a vector position: broadcast.
        value = self._scalar(expr)
        if not isinstance(expr, _ATOMIC_SCALARS):
            value = self._temp(value)
        return (value,) * (width if width is not None else 1)

    # -- vectorized mode: ndarray expressions --------------------------------

    def _expr(self, expr: CExpr) -> str:
        if isinstance(expr, FloatConst):
            return repr(float(expr.value))
        if isinstance(expr, (ScalarVar, VecVar)):
            return _mangle(expr.name)
        if isinstance(expr, Load):
            return (f"{_mangle(expr.buffer.name)}"
                    f"[{self._affine(expr.index)}]")
        if isinstance(expr, VLoad):
            buffer = _mangle(expr.buffer.name)
            base = self._affine(expr.index)
            if expr.mask is None:
                # .copy() so a later store through the same buffer cannot
                # alias a register still holding this load.
                return (f"{buffer}[({base}):({base}) + {expr.width}]"
                        f".copy()")
            lanes = self._lanes_constant(expr.mask)
            return f"_maskload({buffer}, {base}, {lanes}, {expr.width})"
        if isinstance(expr, VBroadcast):
            return (f"np.full({expr.width}, {self._expr(expr.value)}, "
                    f"dtype=np.float64)")
        if isinstance(expr, VSet):
            elements = ", ".join(self._expr(e) for e in expr.elements)
            return f"np.array([{elements}], dtype=np.float64)"
        if isinstance(expr, VZero):
            return f"np.zeros({expr.width}, dtype=np.float64)"
        if isinstance(expr, (BinOp, VBinOp)):
            left, right = self._expr(expr.left), self._expr(expr.right)
            if expr.op == "div":
                return f"_div({left}, {right})"
            symbol = {"add": "+", "sub": "-", "mul": "*"}
            if expr.op in symbol:
                return f"({left} {symbol[expr.op]} {right})"
            if isinstance(expr, VBinOp):
                func = {"max": "np.maximum", "min": "np.minimum"}[expr.op]
            else:
                func = expr.op          # max/min builtins
            return f"{func}({left}, {right})"
        if isinstance(expr, UnOp):
            if expr.op == "neg":
                return f"(-{self._expr(expr.operand)})"
            return f"sqrt({self._expr(expr.operand)})"
        if isinstance(expr, VFma):
            return (f"({self._expr(expr.a)} * {self._expr(expr.b)} + "
                    f"{self._expr(expr.c)})")
        if isinstance(expr, VReduceAdd):
            return f"({self._expr(expr.vec)}).sum()"
        if isinstance(expr, VExtract):
            return f"({self._expr(expr.vec)})[{expr.lane}]"
        if isinstance(expr, VBlend):
            selector = self._blend_constant(expr.imm, expr.width)
            return (f"np.where({selector}, {self._expr(expr.b)}, "
                    f"{self._expr(expr.a)})")
        if isinstance(expr, VShufflePd):
            a_idx, b_idx = self._shuffle_constants(expr.imm)
            return (f"_shuffle({self._expr(expr.a)}, {self._expr(expr.b)}, "
                    f"{a_idx}, {b_idx})")
        if isinstance(expr, VPermute2f128):
            return (f"_perm2f128({self._expr(expr.a)}, "
                    f"{self._expr(expr.b)}, {expr.imm})")
        if isinstance(expr, VUnpack):
            off = 1 if expr.high else 0
            return (f"_unpack({self._expr(expr.a)}, {self._expr(expr.b)}, "
                    f"{off})")
        raise BackendError(f"cannot translate expression {expr!r}")


def translate_function(function: Function, mode: str = "unrolled") -> str:
    """Translate a C-IR function to a self-contained Python/NumPy module."""
    return NumPyTranslator(function, mode=mode).translate()


# ---------------------------------------------------------------------------
# The runnable kernel
# ---------------------------------------------------------------------------


@dataclass
class NumPyKernel:
    """A compiled NumPy translation of one generated kernel.

    Drop-in sibling of :class:`~repro.backend.compile.CompiledKernel`:
    same ``run(inputs) -> outputs`` and ``time(inputs, ...)`` contract, no
    C compiler required.  Instances are also callable (``kernel(inputs)``).
    """

    function: Function
    source: str
    mode: str = "unrolled"
    source_path: Optional[str] = None
    _callable: Callable[..., None] = field(default=None, repr=False)

    def _prepare_buffers(self, inputs: Dict[str, np.ndarray]
                         ) -> List[np.ndarray]:
        """Flat float64 working arrays, one per parameter, in order
        (input values copied in, outputs zero-initialized); the shape
        coercion rules are the C-IR interpreter's, shared via
        :func:`repro.cir.interpreter.coerce_input`."""
        from ..cir.interpreter import coerce_input

        arrays: List[np.ndarray] = []
        for buf in self.function.params:
            if buf.name in inputs:
                arrays.append(coerce_input(buf, inputs[buf.name],
                                           error=BackendError))
            elif buf.kind in ("in", "inout"):
                raise BackendError(f"missing input buffer {buf.name!r}")
            else:
                arrays.append(np.zeros(buf.size, dtype=np.float64))
        return arrays

    def run(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Execute the kernel on numpy inputs (copies, like the
        interpreter and the compiled backend)."""
        arrays = self._prepare_buffers(inputs)
        # C arithmetic never warns: suppress numpy's divide/overflow
        # chatter so non-finite values just propagate IEEE-style.
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            self._callable(*arrays)
        return {buf.name: array.reshape(buf.rows, buf.cols)
                for buf, array in zip(self.function.params, arrays)
                if buf.writable}

    __call__ = run

    def time(self, inputs: Dict[str, np.ndarray], repeats: int = 9,
             warmup: int = 2, inner: int = 8) -> List[float]:
        """Time the kernel: ``repeats`` samples of seconds-per-call.

        Same contract as :meth:`CompiledKernel.time`: buffers are prepared
        once, then the shared batched protocol of
        :func:`repro.timing.batched_time` runs -- writable buffers
        restored from pristine copies before every call.
        """
        from ..timing import batched_time

        run = self._callable
        work = self._prepare_buffers(inputs)
        pristine: List[Optional[np.ndarray]] = [
            array.copy() if buf.writable else None
            for buf, array in zip(self.function.params, work)]

        def restore() -> None:
            for array, original in zip(work, pristine):
                if original is not None:
                    array[...] = original

        return batched_time(lambda: run(*work), restore,
                            repeats, warmup, inner)


# ---------------------------------------------------------------------------
# Compilation + content-addressed caching
# ---------------------------------------------------------------------------


def default_numpy_cache_dir() -> str:
    """Directory holding cached generated Python sources.

    Overridable via ``REPRO_NUMPY_CACHE``; shares a parent with the
    object cache of :mod:`repro.backend.compile`.
    """
    from ..ioutil import cache_root
    return cache_root("REPRO_NUMPY_CACHE", "numpy")


#: source-digest -> compiled namespace; one exec per distinct source per
#: process, however many NumPyKernel instances are built from it.
_COMPILED_MEMO: Dict[str, Dict[str, object]] = {}
_MEMO_LOCK = threading.Lock()


def _instantiate(source: str, function_name: str,
                 origin: str) -> Callable[..., None]:
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    with _MEMO_LOCK:
        namespace = _COMPILED_MEMO.get(digest)
    if namespace is None:
        namespace = {}
        try:
            exec(compile(source, origin, "exec"), namespace)
        except Exception as exc:
            raise BackendError(
                f"generated NumPy source for {function_name!r} does not "
                f"compile: {exc}")
        with _MEMO_LOCK:
            _COMPILED_MEMO[digest] = namespace
    fn = namespace.get(function_name)
    if not callable(fn):
        raise BackendError(
            f"generated NumPy source defines no function "
            f"{function_name!r}")
    return fn


def compile_numpy_kernel(function: Function,
                         cache_key: Optional[str] = None,
                         cache_dir: Optional[str] = None,
                         mode: str = "unrolled") -> NumPyKernel:
    """Translate a C-IR function and compile it to a :class:`NumPyKernel`.

    When ``cache_key`` is given (the kernel service's content hash), the
    generated source is kept under ``cache_dir`` as a readable ``.py``
    file and reused by later calls with the same key -- the exact protocol
    of :func:`repro.backend.compile.compile_kernel` for shared objects.
    Unlike the ``.so`` path there is no compiler to skip, so the cache's
    value is debuggability (the source a kernel ran with is on disk) and
    cross-process reuse of the translation.  Like the ``.so`` cache, a
    corrupt cached artifact (torn write, hand-edited garbage) is dropped
    and regenerated rather than raised.
    """
    if mode not in MODES:
        raise BackendError(
            f"unknown NumPy backend mode {mode!r}; known: "
            f"{', '.join(MODES)}")
    source: Optional[str] = None
    source_path: Optional[str] = None
    if cache_key is not None:
        digest = hashlib.sha256(
            "\x00".join([cache_key, function.name, mode,
                         str(NUMPY_BACKEND_VERSION)]).encode()
        ).hexdigest()[:32]
        root = cache_dir or default_numpy_cache_dir()
        source_path = os.path.join(root, f"{digest}.py")
        if os.path.exists(source_path):
            try:
                with open(source_path, "r", encoding="utf-8") as handle:
                    source = handle.read()
            except OSError:
                source = None
        if source is None:
            source = translate_function(function, mode=mode)
            try:
                from ..ioutil import atomic_write_bytes
                os.makedirs(root, exist_ok=True)
                atomic_write_bytes(source_path, source.encode("utf-8"))
            except OSError:
                source_path = None  # cache dir unwritable: run uncached
    else:
        source = translate_function(function, mode=mode)

    origin = source_path or f"<numpy-kernel {function.name}>"
    try:
        fn = _instantiate(source, function.name, origin)
    except BackendError:
        fresh = translate_function(function, mode=mode)
        if source_path is None or fresh == source:
            raise              # the translator itself produced bad source
        # Corrupt cached source: drop it, regenerate, re-publish.
        try:
            os.unlink(source_path)
        except OSError:
            pass
        source = fresh
        fn = _instantiate(source, function.name, origin)
        try:
            from ..ioutil import atomic_write_bytes
            atomic_write_bytes(source_path, source.encode("utf-8"))
        except OSError:
            source_path = None
    return NumPyKernel(function=function, source=source, mode=mode,
                       source_path=source_path, _callable=fn)
