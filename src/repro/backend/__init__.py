"""C backends: unparsing to C (scalar / AVX intrinsics) and gcc compile-run."""

from .c_unparser import CUnparser, unparse_function
from .compile import (CompiledKernel, compile_kernel, compiler_available,
                      find_c_compiler)

__all__ = [
    "CUnparser", "unparse_function",
    "CompiledKernel", "compile_kernel", "compiler_available",
    "find_c_compiler",
]
