"""Execution backends for generated kernels.

Three tiers run a C-IR function, strongest-signal first:

* ``compiled`` -- unparse to C (:mod:`.c_unparser`), compile with the host
  compiler, call through ctypes (:mod:`.compile`).  Needs ``$CC``.
* ``numpy`` -- translate to a Python/NumPy callable (:mod:`.numpy_backend`).
  Portable, fast enough to benchmark, no compiler.
* ``interpreter`` -- statement-at-a-time C-IR interpretation
  (:mod:`repro.cir.interpreter`).  Slow; the reference semantics.

:func:`make_executor` resolves a backend name (or ``"auto"``) to a kernel
object with the shared ``run(inputs)``/``time(inputs, ...)`` contract.
"""

from typing import Optional

from ..cir.interpreter import InterpreterKernel
from ..cir.nodes import Function
from ..errors import BackendError
from .c_unparser import CUnparser, unparse_function
from .compile import (CompiledKernel, compile_kernel, compiler_available,
                      find_c_compiler)
from .numpy_backend import (NumPyKernel, NumPyTranslator, compile_numpy_kernel,
                            default_numpy_cache_dir, translate_function)

#: Executable-backend names accepted by :func:`make_executor`.
#: ``numpy`` is the (fast) unrolled emission mode; ``numpy-vectorized``
#: is the ndarray-slice emission mode -- a distinct execution tier the
#: differential fuzzer and crosscheck exercise separately.
EXECUTORS = ("compiled", "numpy", "numpy-vectorized", "interpreter")


def resolve_backends(spec: str = "auto"):
    """Backend-name list for a differential run.

    ``"auto"`` means every portable tier (interpreter first -- it is the
    reference semantics) plus ``compiled`` when a C compiler resolves; a
    comma-separated list passes through verbatim.  The single definition
    both ``python -m repro.backend crosscheck`` and the fuzz oracle use,
    so a new tier joins every differential surface at once.
    """
    if spec == "auto":
        backends = ["interpreter", "numpy", "numpy-vectorized"]
        if compiler_available():
            backends.append("compiled")
        return backends
    return [name.strip() for name in spec.split(",") if name.strip()]


def make_executor(function: Function, backend: str = "auto",
                  c_code: Optional[str] = None,
                  cache_key: Optional[str] = None):
    """An executable kernel for ``function`` on the chosen backend.

    ``backend`` is one of :data:`EXECUTORS` or ``"auto"`` (compiled when a
    C compiler is available, NumPy otherwise).  ``c_code`` (the already
    emitted C) is optional and only saves the compiled backend from
    re-unparsing the function.  ``cache_key`` enables content-addressed
    reuse of compiled artifacts (shared objects / generated Python
    sources).
    """
    if backend == "auto":
        backend = "compiled" if compiler_available() else "numpy"
    if backend == "compiled":
        return compile_kernel(c_code if c_code is not None
                              else unparse_function(function),
                              function, cache_key=cache_key)
    if backend == "numpy":
        return compile_numpy_kernel(function, cache_key=cache_key)
    if backend == "numpy-vectorized":
        return compile_numpy_kernel(function, cache_key=cache_key,
                                    mode="vectorized")
    if backend == "interpreter":
        return InterpreterKernel(function)
    raise BackendError(
        f"unknown execution backend {backend!r}; known: "
        f"{', '.join(EXECUTORS)} (or 'auto')")


__all__ = [
    "CUnparser", "unparse_function",
    "CompiledKernel", "compile_kernel", "compiler_available",
    "find_c_compiler",
    "NumPyKernel", "NumPyTranslator", "compile_numpy_kernel",
    "default_numpy_cache_dir", "translate_function",
    "InterpreterKernel", "EXECUTORS", "make_executor", "resolve_backends",
]
