"""Command-line front-end of the execution backends.

Usage (``PYTHONPATH=src python -m repro.backend <command>``)::

    crosscheck SPEC ... [--backends B[,B...]] [--tol T] [--scalar]
        [--seed S] [--seeds N]
        Generate each workload and execute it on every requested backend
        (interpreter / numpy / numpy-vectorized / compiled), asserting
        that all backends agree element-wise within the tolerance, for
        ``N`` input draws starting at seed ``S`` (so agreement claims do
        not hinge on one lucky input).  Exits non-zero on any
        disagreement -- this is the cross-backend differential job CI
        runs on every push.

    emit SPEC [--format c|numpy|numpy-vectorized] [--scalar]
        Print the generated artifact for one workload: the emitted C or
        the NumPy-backend Python translation.

A SPEC is ``name:size`` (``potrf:4``) or ``name:sizexk`` (``kf:4x4``) --
the same workload addresses the kernel service and the tuner use.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

import numpy as np

from ..cli import EXIT_FAILURE, EXIT_OK, add_json_flag, fail, print_json
from ..errors import ReproError
from ..slingen.generator import SLinGen
from ..slingen.options import Options
from . import EXECUTORS, make_executor, resolve_backends
from .numpy_backend import translate_function

#: Tolerance of the differential check.  All three backends implement the
#: same double-precision operation sequence, so they agree to rounding
#: error; 1e-12 absolute leaves ~3 decimal digits of headroom over pure
#: accumulation noise without masking real divergence.
DEFAULT_TOLERANCE = 1e-12


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.backend",
        description="Differentially test and inspect kernel execution "
                    "backends.")
    sub = parser.add_subparsers(dest="command", required=True)

    cross = sub.add_parser(
        "crosscheck",
        help="run workloads on every backend and assert agreement")
    cross.add_argument("specs", nargs="+", metavar="SPEC",
                       help="workloads to check, e.g. potrf:4 gemm:8 kf:4x4")
    cross.add_argument("--backends", default="auto",
                       help="comma-separated backend list, or 'auto' "
                            "(interpreter,numpy,numpy-vectorized + "
                            "compiled when $CC resolves)")
    cross.add_argument("--tol", type=float, default=DEFAULT_TOLERANCE,
                       help=f"max |a - b| between any two backends "
                            f"(default {DEFAULT_TOLERANCE:g})")
    cross.add_argument("--scalar", action="store_true",
                       help="check scalar (non-vectorized) kernels")
    cross.add_argument("--seed", type=int, default=17,
                       help="first input-generation seed")
    cross.add_argument("--seeds", type=int, default=1, metavar="N",
                       help="number of input draws per workload, seeds "
                            "seed..seed+N-1 (default 1)")
    add_json_flag(cross)

    emit = sub.add_parser("emit", help="print a generated artifact")
    emit.add_argument("spec", metavar="SPEC")
    emit.add_argument("--format", default="numpy",
                      choices=("c", "numpy", "numpy-vectorized"))
    emit.add_argument("--scalar", action="store_true")
    add_json_flag(emit, help="wrap the artifact in a JSON document "
                             "instead of printing it raw")
    return parser


def _resolve_backends(text: str) -> List[str]:
    backends = resolve_backends(text)
    for name in backends:
        if name not in EXECUTORS:
            raise ReproError(
                f"unknown backend {name!r}; known: {', '.join(EXECUTORS)}")
    if len(backends) < 2:
        raise ReproError("crosscheck needs at least two backends")
    return backends


def _generate(spec_text: str, scalar: bool):
    from ..service.registry import build_case, parse_spec
    case = build_case(parse_spec(spec_text))
    options = Options(vectorize=not scalar, annotate_code=False)
    result = SLinGen(options).generate_result(
        case.program, nominal_flops=case.nominal_flops)
    return case, result


def _max_deviation(a: Dict[str, np.ndarray],
                   b: Dict[str, np.ndarray]) -> float:
    worst = 0.0
    for name in a:
        worst = max(worst, float(np.max(np.abs(a[name] - b[name]))))
    return worst


def _cmd_crosscheck(args: argparse.Namespace) -> int:
    if args.seeds < 1:
        raise ReproError(f"--seeds must be >= 1, got {args.seeds}")
    backends = _resolve_backends(args.backends)
    seeds = range(args.seed, args.seed + args.seeds)
    failures = 0
    docs = []
    for text in args.specs:
        case, result = _generate(text, args.scalar)
        kernels = {
            backend: make_executor(result.function, backend=backend,
                                   c_code=result.c_code)
            for backend in backends}
        worst = 0.0
        worst_pair = ""
        worst_seed = args.seed
        for seed in seeds:
            inputs = case.make_inputs(seed=seed)
            outputs = {backend: kernels[backend].run(inputs)
                       for backend in backends}
            for i, first in enumerate(backends):
                for second in backends[i + 1:]:
                    deviation = _max_deviation(outputs[first],
                                               outputs[second])
                    if deviation > worst:
                        worst = deviation
                        worst_pair = f"{first} vs {second}"
                        worst_seed = seed
        agreed = worst <= args.tol
        if not agreed:
            failures += 1
        if args.as_json:
            docs.append({"spec": text, "backends": backends,
                         "max_deviation": worst,
                         "worst_pair": worst_pair or None,
                         "worst_seed": worst_seed, "ok": agreed})
            continue
        seed_note = f" seed {worst_seed}" if args.seeds > 1 else ""
        print(f"{text:12s} {'/'.join(backends):32s} "
              f"max |delta| {worst:.3e}"
              f"{'  (' + worst_pair + seed_note + ')' if worst_pair else '':28s} "
              f"{'ok' if agreed else 'DISAGREE'}")
    if args.as_json:
        print_json({"workloads": docs, "tol": args.tol,
                    "seeds": args.seeds, "failures": failures})
        return EXIT_FAILURE if failures else EXIT_OK
    if failures:
        print(f"{failures} of {len(args.specs)} workloads disagree beyond "
              f"{args.tol:g}", file=sys.stderr)
        return EXIT_FAILURE
    print(f"all {len(args.specs)} workloads agree across "
          f"{len(backends)} backends and {args.seeds} input seed(s) "
          f"within {args.tol:g}")
    return EXIT_OK


def _cmd_emit(args: argparse.Namespace) -> int:
    _, result = _generate(args.spec, args.scalar)
    if args.format == "c":
        artifact = result.c_code
    else:
        mode = "vectorized" if args.format == "numpy-vectorized" \
            else "unrolled"
        artifact = translate_function(result.function, mode=mode)
    if args.as_json:
        print_json({"spec": args.spec, "format": args.format,
                    "code": artifact})
    else:
        print(artifact, end="")
    return EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "crosscheck":
            return _cmd_crosscheck(args)
        if args.command == "emit":
            return _cmd_emit(args)
    except ReproError as exc:
        return fail(exc)
    return EXIT_OK  # pragma: no cover - argparse enforces a command


if __name__ == "__main__":
    sys.exit(main())
