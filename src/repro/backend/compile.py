"""Compile-and-run support for the emitted C code (via gcc + ctypes).

The reproduction validates generated kernels primarily through the C-IR
interpreter; when a C compiler is available, this module additionally
compiles the emitted single-source C and executes it on numpy arrays, which
is the strongest end-to-end check that the generated code is real, valid C.
"""

from __future__ import annotations

import ctypes
import os
import shutil
import subprocess
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..cir.nodes import Buffer, Function
from ..errors import BackendError


def find_c_compiler() -> Optional[str]:
    """Return the path of a usable C compiler, or None.

    The ``CC`` environment variable takes precedence (the conventional way
    to select a compiler); when it is unset or does not resolve to an
    executable, the usual suspects are probed in order.
    """
    cc = os.environ.get("CC", "").strip()
    if cc:
        path = shutil.which(cc)
        if path:
            return path
    for candidate in ("cc", "gcc", "clang"):
        path = shutil.which(candidate)
        if path:
            return path
    return None


def compiler_available() -> bool:
    return find_c_compiler() is not None


@dataclass
class CompiledKernel:
    """A compiled shared object wrapping one generated kernel."""

    function: Function
    library_path: str
    _library: ctypes.CDLL

    def _symbol(self):
        symbol = getattr(self._library, self.function.name)
        symbol.restype = None
        return symbol

    def _prepare_buffers(self, inputs: Dict[str, np.ndarray]
                         ) -> "tuple[List[np.ndarray], List[object]]":
        """Working arrays (one per parameter, input values copied in) and
        the matching ctypes argument pointers."""
        buffers: List[np.ndarray] = []
        arguments: List[object] = []
        for buf in self.function.params:
            if buf.name in inputs:
                array = np.ascontiguousarray(
                    np.asarray(inputs[buf.name], dtype=np.float64).reshape(
                        buf.rows, buf.cols)).copy()
            elif buf.kind == "out":
                array = np.zeros((buf.rows, buf.cols), dtype=np.float64)
            else:
                raise BackendError(f"missing input buffer {buf.name!r}")
            buffers.append(array)
            arguments.append(array.ctypes.data_as(
                ctypes.POINTER(ctypes.c_double)))
        return buffers, arguments

    def run(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Execute the compiled kernel on numpy inputs (copies, like the
        interpreter)."""
        buffers, arguments = self._prepare_buffers(inputs)
        self._symbol()(*arguments)
        return {buf.name: array
                for buf, array in zip(self.function.params, buffers)
                if buf.writable}

    def time(self, inputs: Dict[str, np.ndarray], repeats: int = 9,
             warmup: int = 2, inner: int = 32) -> List[float]:
        """Time the kernel: ``repeats`` samples of seconds-per-call.

        Buffers and argument pointers are prepared once, then the shared
        batched protocol of :func:`repro.timing.batched_time` runs --
        writable buffers restored from pristine copies before every call.
        """
        from ..timing import batched_time

        symbol = self._symbol()
        work, arguments = self._prepare_buffers(inputs)
        pristine: List[Optional[np.ndarray]] = [
            array.copy() if buf.writable else None
            for buf, array in zip(self.function.params, work)]

        def restore() -> None:
            for array, original in zip(work, pristine):
                if original is not None:
                    array[...] = original

        return batched_time(lambda: symbol(*arguments), restore,
                            repeats, warmup, inner)


def default_object_cache_dir() -> str:
    """Directory holding cached compiled shared objects.

    Overridable via ``REPRO_OBJECT_CACHE``; shares a parent with the kernel
    cache of :mod:`repro.service.store` so one directory holds all caches.
    """
    from ..ioutil import cache_root
    return cache_root("REPRO_OBJECT_CACHE", "objects")


def compile_kernel(c_code: str, function: Function,
                   extra_flags: Optional[List[str]] = None,
                   keep_dir: Optional[str] = None,
                   cache_key: Optional[str] = None,
                   cache_dir: Optional[str] = None) -> CompiledKernel:
    """Compile emitted C code into a shared library and wrap it.

    When ``cache_key`` is given (the kernel service's content hash), the
    shared object is kept under ``cache_dir`` and reused by later calls with
    the same key and flags, skipping the compiler entirely.

    Raises :class:`~repro.errors.BackendError` when no compiler is available
    or compilation fails (the compiler diagnostics are included).
    """
    flags = ["-O2", "-std=c99", "-shared", "-fPIC", "-lm"]
    if function.vector_width > 1:
        flags.append("-mavx")
    if extra_flags:
        flags.extend(extra_flags)

    cached_path: Optional[str] = None
    if cache_key is not None:
        import hashlib
        digest = hashlib.sha256(
            "\x00".join([cache_key, function.name] + flags).encode()
        ).hexdigest()[:32]
        cache_root = cache_dir or default_object_cache_dir()
        cached_path = os.path.join(cache_root, f"{digest}.so")
        if os.path.exists(cached_path):
            try:
                library = ctypes.CDLL(cached_path)
                return CompiledKernel(function=function,
                                      library_path=cached_path,
                                      _library=library)
            except OSError:
                # Corrupt/incompatible cached object: drop it and recompile.
                try:
                    os.unlink(cached_path)
                except OSError:
                    pass

    compiler = find_c_compiler()
    if compiler is None:
        raise BackendError("no C compiler available on this system")

    workdir = keep_dir or tempfile.mkdtemp(prefix="repro_cc_")
    source_path = os.path.join(workdir, f"{function.name}.c")
    library_path = os.path.join(workdir, f"{function.name}.so")
    with open(source_path, "w", encoding="utf-8") as handle:
        handle.write(c_code)

    command = [compiler, source_path, "-o", library_path] + flags
    result = subprocess.run(command, capture_output=True, text=True)
    if result.returncode != 0:
        raise BackendError(
            f"compilation of generated code failed:\n{result.stderr}")

    if cached_path is not None:
        from ..ioutil import atomic_publish
        os.makedirs(os.path.dirname(cached_path), exist_ok=True)
        atomic_publish(library_path, cached_path)
        library_path = cached_path
        if keep_dir is None:
            # The shared object now lives in the cache; the scratch dir
            # would otherwise accumulate one orphan per compilation.
            shutil.rmtree(workdir, ignore_errors=True)

    library = ctypes.CDLL(library_path)
    return CompiledKernel(function=function, library_path=library_path,
                          _library=library)
