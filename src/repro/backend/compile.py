"""Compile-and-run support for the emitted C code (via gcc + ctypes).

The reproduction validates generated kernels primarily through the C-IR
interpreter; when a C compiler is available, this module additionally
compiles the emitted single-source C and executes it on numpy arrays, which
is the strongest end-to-end check that the generated code is real, valid C.
"""

from __future__ import annotations

import ctypes
import os
import shutil
import subprocess
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..cir.nodes import Buffer, Function
from ..errors import BackendError


def find_c_compiler() -> Optional[str]:
    """Return the path of a usable C compiler, or None.

    The ``CC`` environment variable takes precedence (the conventional way
    to select a compiler); when it is unset or does not resolve to an
    executable, the usual suspects are probed in order.
    """
    cc = os.environ.get("CC", "").strip()
    if cc:
        path = shutil.which(cc)
        if path:
            return path
    for candidate in ("cc", "gcc", "clang"):
        path = shutil.which(candidate)
        if path:
            return path
    return None


def compiler_available() -> bool:
    return find_c_compiler() is not None


@dataclass
class CompiledKernel:
    """A compiled shared object wrapping one generated kernel."""

    function: Function
    library_path: str
    _library: ctypes.CDLL

    def run(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Execute the compiled kernel on numpy inputs (copies, like the
        interpreter)."""
        symbol = getattr(self._library, self.function.name)
        symbol.restype = None
        buffers: Dict[str, np.ndarray] = {}
        arguments: List[ctypes.c_void_p] = []
        for buf in self.function.params:
            if buf.name in inputs:
                array = np.ascontiguousarray(
                    np.asarray(inputs[buf.name], dtype=np.float64).reshape(
                        buf.rows, buf.cols))
                array = array.copy()
            elif buf.kind == "out":
                array = np.zeros((buf.rows, buf.cols), dtype=np.float64)
            else:
                raise BackendError(f"missing input buffer {buf.name!r}")
            buffers[buf.name] = array
            arguments.append(array.ctypes.data_as(
                ctypes.POINTER(ctypes.c_double)))
        symbol(*arguments)
        return {buf.name: buffers[buf.name]
                for buf in self.function.params if buf.writable}


def default_object_cache_dir() -> str:
    """Directory holding cached compiled shared objects.

    Overridable via ``REPRO_OBJECT_CACHE``; shares a parent with the kernel
    cache of :mod:`repro.service.store` so one directory holds all caches.
    """
    from ..ioutil import cache_root
    return cache_root("REPRO_OBJECT_CACHE", "objects")


def compile_kernel(c_code: str, function: Function,
                   extra_flags: Optional[List[str]] = None,
                   keep_dir: Optional[str] = None,
                   cache_key: Optional[str] = None,
                   cache_dir: Optional[str] = None) -> CompiledKernel:
    """Compile emitted C code into a shared library and wrap it.

    When ``cache_key`` is given (the kernel service's content hash), the
    shared object is kept under ``cache_dir`` and reused by later calls with
    the same key and flags, skipping the compiler entirely.

    Raises :class:`~repro.errors.BackendError` when no compiler is available
    or compilation fails (the compiler diagnostics are included).
    """
    flags = ["-O2", "-std=c99", "-shared", "-fPIC", "-lm"]
    if function.vector_width > 1:
        flags.append("-mavx")
    if extra_flags:
        flags.extend(extra_flags)

    cached_path: Optional[str] = None
    if cache_key is not None:
        import hashlib
        digest = hashlib.sha256(
            "\x00".join([cache_key, function.name] + flags).encode()
        ).hexdigest()[:32]
        cache_root = cache_dir or default_object_cache_dir()
        cached_path = os.path.join(cache_root, f"{digest}.so")
        if os.path.exists(cached_path):
            try:
                library = ctypes.CDLL(cached_path)
                return CompiledKernel(function=function,
                                      library_path=cached_path,
                                      _library=library)
            except OSError:
                # Corrupt/incompatible cached object: drop it and recompile.
                try:
                    os.unlink(cached_path)
                except OSError:
                    pass

    compiler = find_c_compiler()
    if compiler is None:
        raise BackendError("no C compiler available on this system")

    workdir = keep_dir or tempfile.mkdtemp(prefix="repro_cc_")
    source_path = os.path.join(workdir, f"{function.name}.c")
    library_path = os.path.join(workdir, f"{function.name}.so")
    with open(source_path, "w", encoding="utf-8") as handle:
        handle.write(c_code)

    command = [compiler, source_path, "-o", library_path] + flags
    result = subprocess.run(command, capture_output=True, text=True)
    if result.returncode != 0:
        raise BackendError(
            f"compilation of generated code failed:\n{result.stderr}")

    if cached_path is not None:
        from ..ioutil import atomic_publish
        os.makedirs(os.path.dirname(cached_path), exist_ok=True)
        atomic_publish(library_path, cached_path)
        library_path = cached_path

    library = ctypes.CDLL(library_path)
    return CompiledKernel(function=function, library_path=library_path,
                          _library=library)
