"""Compile-and-run support for the emitted C code (via gcc + ctypes).

The reproduction validates generated kernels primarily through the C-IR
interpreter; when a C compiler is available, this module additionally
compiles the emitted single-source C and executes it on numpy arrays, which
is the strongest end-to-end check that the generated code is real, valid C.
"""

from __future__ import annotations

import ctypes
import os
import shutil
import subprocess
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..cir.nodes import Buffer, Function
from ..errors import BackendError


def find_c_compiler() -> Optional[str]:
    """Return the path of a usable C compiler, or None."""
    for candidate in ("cc", "gcc", "clang"):
        path = shutil.which(candidate)
        if path:
            return path
    return None


def compiler_available() -> bool:
    return find_c_compiler() is not None


@dataclass
class CompiledKernel:
    """A compiled shared object wrapping one generated kernel."""

    function: Function
    library_path: str
    _library: ctypes.CDLL

    def run(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Execute the compiled kernel on numpy inputs (copies, like the
        interpreter)."""
        symbol = getattr(self._library, self.function.name)
        symbol.restype = None
        buffers: Dict[str, np.ndarray] = {}
        arguments: List[ctypes.c_void_p] = []
        for buf in self.function.params:
            if buf.name in inputs:
                array = np.ascontiguousarray(
                    np.asarray(inputs[buf.name], dtype=np.float64).reshape(
                        buf.rows, buf.cols))
                array = array.copy()
            elif buf.kind == "out":
                array = np.zeros((buf.rows, buf.cols), dtype=np.float64)
            else:
                raise BackendError(f"missing input buffer {buf.name!r}")
            buffers[buf.name] = array
            arguments.append(array.ctypes.data_as(
                ctypes.POINTER(ctypes.c_double)))
        symbol(*arguments)
        return {buf.name: buffers[buf.name]
                for buf in self.function.params if buf.writable}


def compile_kernel(c_code: str, function: Function,
                   extra_flags: Optional[List[str]] = None,
                   keep_dir: Optional[str] = None) -> CompiledKernel:
    """Compile emitted C code into a shared library and wrap it.

    Raises :class:`~repro.errors.BackendError` when no compiler is available
    or compilation fails (the compiler diagnostics are included).
    """
    compiler = find_c_compiler()
    if compiler is None:
        raise BackendError("no C compiler available on this system")

    workdir = keep_dir or tempfile.mkdtemp(prefix="repro_cc_")
    source_path = os.path.join(workdir, f"{function.name}.c")
    library_path = os.path.join(workdir, f"{function.name}.so")
    with open(source_path, "w", encoding="utf-8") as handle:
        handle.write(c_code)

    flags = ["-O2", "-std=c99", "-shared", "-fPIC", "-lm"]
    if function.vector_width > 1:
        flags.append("-mavx")
    if extra_flags:
        flags.extend(extra_flags)

    command = [compiler, source_path, "-o", library_path] + flags
    result = subprocess.run(command, capture_output=True, text=True)
    if result.returncode != 0:
        raise BackendError(
            f"compilation of generated code failed:\n{result.stderr}")

    library = ctypes.CDLL(library_path)
    return CompiledKernel(function=function, library_path=library_path,
                          _library=library)
