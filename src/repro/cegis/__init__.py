"""Verified aggressive optimization (CEGIS tier).

The paper's generator is deliberately conservative: the Stage-2 rules
R0/R1 (:mod:`repro.slingen.rewrite`) are restricted to transformations
that are provably safe for *every* program.  This package recovers the
performance that conservatism leaves on the table with a
counterexample-guided inductive synthesis (CEGIS) loop:

1. :mod:`repro.cegis.rewrites` -- a catalog of candidate **unsound**
   transformations over basic (sBLAC-level) programs, each a pure
   ``Program -> Program | None`` transform with a stable id.
2. :mod:`repro.cegis.verifier` -- a reusable counterexample search (the
   differential oracle of :mod:`repro.fuzz.oracle` turned into a
   judge): run two pipelines on every resolvable backend plus the
   LA-level NumPy/SciPy reference and hunt for an input that splits
   them.
3. :mod:`repro.cegis.loop` -- the driver: propose each rewrite, verify
   the composition, accumulate refuting input draws (replayed first
   against every later candidate), accept or reject.
4. :mod:`repro.cegis.fixbank` -- a persistent, corruption-tolerant bank
   of accepted rewrite ids per *(program, machine)*, keyed exactly like
   the tuning database, honoring ``REPRO_FIXBANK``.

Acceptance is **instance-specific**: a banked rewrite was only ever
validated for one concrete (program, sizes, options, machine) tuple
within a finite input budget -- see ``docs/verified.md`` for the
soundness caveats.
"""

from .fixbank import FixBank, FixRecord, default_fixbank_dir, fixbank_key
from .loop import CegisOutcome, optimize_program
from .rewrites import apply_sequence, catalog, get_rewrite, known_ids
from .verifier import Counterexample, find_counterexample

__all__ = [
    "FixBank", "FixRecord", "default_fixbank_dir", "fixbank_key",
    "CegisOutcome", "optimize_program",
    "apply_sequence", "catalog", "get_rewrite", "known_ids",
    "Counterexample", "find_counterexample",
]
