"""The fix bank: which unsound rewrites survived verification, where.

A :class:`FixRecord` captures the outcome of one CEGIS run -- the
accepted rewrite ids (in catalog order, which is application order), the
refuted candidates with the input seed that split them from the
baseline, and the verification budget that acceptance is conditional on.
Records are keyed by :func:`fixbank_key`, the exact *(program, machine,
vectorize)* content hash of :func:`repro.tuning.db.tuning_key`: a
verified rewrite set is a property of what is computed and on which
machine model, independent of the remaining generation knobs, which the
caller supplies at apply time.

**Acceptance is instance-specific.**  ``accepted`` means "a budgeted
counterexample search over this concrete (program, sizes, options,
machine) tuple found no divergence", not "equivalent for all programs"
-- that is the whole point of keeping the rewrites out of the sound
Stage-2 tier.  :meth:`FixRecord.apply` therefore only ever sets
``Options.verified_rewrites``; it never touches searched or identity
fields, so a fix record composes cleanly before or after a tuning
record.

The on-disk layout mirrors the tuning database: one JSON document per
record under ``<root>/<key[:2]>/<key>.json``, written atomically, read
corruption-tolerantly (an undecodable record is quarantined and reported
as a miss, so verification degrades to re-verifying, never to an
exception).  The root honours ``REPRO_FIXBANK``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Union

from ..errors import CegisError
from ..ioutil import LruMap, atomic_write_bytes, cache_root
from ..ir.program import Program
from ..machine.microarch import MicroArchitecture
from ..slingen.options import Options
from ..tuning.db import tuning_key

#: Bump whenever record contents change incompatibly; old records are
#: then quarantined on read and the programs simply re-verify.
FIXBANK_SCHEMA_VERSION = 1


def default_fixbank_dir() -> str:
    """Root of the persistent fix bank.

    Overridable via ``REPRO_FIXBANK``; defaults to
    ``~/.cache/repro-slingen/fixbank`` (next to the kernel, object and
    tuning caches).
    """
    return cache_root("REPRO_FIXBANK", "fixbank")


def fixbank_key(program: Union[Program, str],
                machine: Optional[MicroArchitecture] = None,
                constants: Optional[Dict[str, int]] = None,
                vectorize: bool = True) -> str:
    """SHA-256 content key of one verification target.

    Deliberately *identical* to :func:`repro.tuning.db.tuning_key`: both
    databases answer "what did a prior search conclude about this
    (program, machine, vectorize) tuple", and sharing the hash lets
    operators correlate tuning and fix records for the same kernel by
    key.  The two stores live under different roots, so the shared key
    space cannot collide on disk.
    """
    return tuning_key(program, machine=machine, constants=constants,
                      vectorize=vectorize)


@dataclass
class FixRecord:
    """The persisted outcome of one CEGIS verification run."""

    key: str
    program_name: str
    label: str                      # registry-style label, e.g. "potrf:8"
    seed: int                       # base input-seed of the search
    budget: int                     # input draws per candidate
    backends: List[str]             # backends the verifier resolved
    tol: float                      # cross-backend tolerance
    ref_tol: float                  # LA-reference tolerance
    accepted: List[str]             # rewrite ids, in application order
    refuted: List[Dict[str, object]] = field(default_factory=list)
    inapplicable: List[str] = field(default_factory=list)
    created_at: float = 0.0
    schema: int = FIXBANK_SCHEMA_VERSION

    def apply(self, base: Options) -> Options:
        """``base`` with the banked rewrites enabled.

        Ids that are no longer in the catalog (a removed or renamed
        rewrite after an upgrade) are dropped silently: the record
        degrades to the subset that is still meaningful rather than
        failing generation.
        """
        from .rewrites import known_ids
        known = set(known_ids())
        kept = tuple(rid for rid in self.accepted if rid in known)
        return dataclasses.replace(base, verified_rewrites=kept)

    def counterexamples(self) -> List[Dict[str, object]]:
        """The refutations that carry a concrete counterexample input."""
        return [entry for entry in self.refuted if "seed" in entry]

    def to_json(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, doc: Dict[str, object]) -> "FixRecord":
        if not isinstance(doc, dict) \
                or doc.get("schema") != FIXBANK_SCHEMA_VERSION:
            raise ValueError(f"unsupported fix record: {doc!r:.80}")
        known = {f.name for f in dataclasses.fields(cls)}
        kwargs = {k: v for k, v in doc.items() if k in known}
        kwargs["accepted"] = [str(rid) for rid in kwargs.get("accepted", [])]
        return cls(**kwargs)


class FixBank:
    """Persistent key -> :class:`FixRecord` store (see module docs)."""

    def __init__(self, root: Optional[str] = None, hot_capacity: int = 128):
        """``hot_capacity`` bounds the in-memory record cache; only
        positive lookups are cached, so records verified by another
        process are picked up on the next miss."""
        self.root = os.path.abspath(root or default_fixbank_dir())
        try:
            os.makedirs(self.root, exist_ok=True)
        except OSError as exc:
            raise CegisError(
                f"cannot create fix-bank root {self.root!r}: {exc}")
        self._hot: LruMap[FixRecord] = LruMap(hot_capacity)
        self.hits = 0
        self.misses = 0
        self.hot_hits = 0
        self.corrupt_dropped = 0

    # -- paths ---------------------------------------------------------------

    def _record_path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    # -- store API -----------------------------------------------------------

    def get(self, key: str) -> Optional[FixRecord]:
        """The stored record, or None (missing or quarantined-corrupt)."""
        hot = self._hot.get(key)
        if hot is not None:
            self.hits += 1
            self.hot_hits += 1
            return hot
        path = self._record_path(key)
        if not os.path.exists(path):
            self.misses += 1
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = FixRecord.from_json(json.load(handle))
        except Exception:
            # Torn write, schema drift, hand-edited garbage: drop the
            # record and let the caller re-verify.
            try:
                os.unlink(path)
            except OSError:
                pass
            self.corrupt_dropped += 1
            self.misses += 1
            return None
        self._hot.insert(key, record)
        self.hits += 1
        return record

    def put(self, key: str, record: FixRecord) -> None:
        record.key = key
        if not record.created_at:
            record.created_at = time.time()
        path = self._record_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        atomic_write_bytes(path, json.dumps(
            record.to_json(), indent=2, sort_keys=True).encode("utf-8"))
        self._hot.insert(key, record)

    def delete(self, key: str) -> bool:
        self._hot.pop(key)
        path = self._record_path(key)
        try:
            os.unlink(path)
            return True
        except OSError:
            return False

    def keys(self) -> List[str]:
        found: List[str] = []
        if not os.path.isdir(self.root):
            return found
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    found.append(name[:-len(".json")])
        return found

    def records(self) -> Iterator[FixRecord]:
        """Every decodable record (corrupt ones are quarantined as usual)."""
        for key in self.keys():
            record = self.get(key)
            if record is not None:
                yield record

    def purge(self) -> int:
        self._hot.clear()
        removed = 0
        for key in self.keys():
            if self.delete(key):
                removed += 1
        return removed

    def verified_options(self, key: str, base: Options) -> Optional[Options]:
        """The banked rewrites for ``key`` applied over ``base``, or None."""
        record = self.get(key)
        if record is None:
            return None
        return record.apply(base)

    def stats(self) -> Dict[str, object]:
        return {
            "backend": "fixbank",
            "root": self.root,
            "entries": len(self.keys()),
            "hits": self.hits,
            "hot_hits": self.hot_hits,
            "misses": self.misses,
            "corrupt_dropped": self.corrupt_dropped,
        }

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._record_path(key))

    def __len__(self) -> int:
        return len(self.keys())
