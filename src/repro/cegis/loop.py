"""The CEGIS driver: propose, verify, accumulate counterexamples.

``optimize_program`` walks the rewrite catalog in order and, for each
candidate id, verifies the *composition* ``accepted + [candidate]``
against the unmodified baseline with
:func:`repro.cegis.verifier.find_counterexample`.  A candidate whose
transform does not fire on the current basic program is recorded as
inapplicable (and not banked -- an id that never changed the program
carries no information).  A refuted candidate contributes its refuting
input seed to a replay list that every *later* candidate is checked
against first, so one counterexample prunes the whole family of rewrites
it breaks at the cost of a single extra execution each.

Verifying the composition (rather than each rewrite in isolation)
matters: two individually-sound rewrites can interact -- the accepted
set that comes out of the loop is exactly the ``verified_rewrites``
tuple the service will generate with, so what was verified is what
ships.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..backend import resolve_backends
from ..errors import CegisError, ReproError
from ..ir.program import Program
from ..machine.microarch import MicroArchitecture
from ..slingen.generator import SLinGen
from ..slingen.options import Options
from .fixbank import FixBank, FixRecord, fixbank_key
from .rewrites import apply_sequence, catalog
from .verifier import (DEFAULT_BUDGET, DEFAULT_REF_TOL, DEFAULT_TOL,
                       Counterexample, find_counterexample)


@dataclass
class CegisOutcome:
    """What one CEGIS run concluded about one program."""

    program_name: str
    label: str                     # registry-style label when known
    key: str                       # fix-bank key of the target
    accepted: List[str]            # ids, in application (catalog) order
    refuted: List[Dict[str, object]] = field(default_factory=list)
    inapplicable: List[str] = field(default_factory=list)
    backends: List[str] = field(default_factory=list)
    seed: int = 0
    budget: int = DEFAULT_BUDGET
    tol: float = DEFAULT_TOL
    ref_tol: float = DEFAULT_REF_TOL

    @property
    def options_applied(self) -> tuple:
        return tuple(self.accepted)

    def to_record(self) -> FixRecord:
        return FixRecord(
            key=self.key, program_name=self.program_name, label=self.label,
            seed=self.seed, budget=self.budget, backends=list(self.backends),
            tol=self.tol, ref_tol=self.ref_tol,
            accepted=list(self.accepted), refuted=list(self.refuted),
            inapplicable=list(self.inapplicable))

    def summary(self) -> Dict[str, object]:
        return {
            "program": self.program_name,
            "label": self.label,
            "key": self.key,
            "accepted": list(self.accepted),
            "refuted": [entry["id"] for entry in self.refuted],
            "inapplicable": list(self.inapplicable),
            "backends": list(self.backends),
            "seed": self.seed,
            "budget": self.budget,
        }


def optimize_program(program: Program,
                     options: Optional[Options] = None, *,
                     machine: Optional[MicroArchitecture] = None,
                     budget: int = DEFAULT_BUDGET,
                     seed: int = 0,
                     tol: float = DEFAULT_TOL,
                     ref_tol: float = DEFAULT_REF_TOL,
                     backends: str = "auto",
                     bank: Optional[FixBank] = None,
                     label: str = "") -> CegisOutcome:
    """Run the CEGIS loop on one program and (optionally) bank the result.

    ``options`` is the generation baseline; any ``verified_rewrites`` it
    carries are stripped first -- the loop decides that field.  When
    ``bank`` is given the resulting :class:`FixRecord` is persisted
    under :func:`fixbank_key`, *including* all-refuted outcomes: a
    record with an empty ``accepted`` list remembers the
    counterexamples, so a later run replays them instead of
    rediscovering them.
    """
    base = dataclasses.replace(options or Options(), verified_rewrites=())
    base.validate()

    try:
        baseline = SLinGen(base).generate_result(program)
    except ReproError as exc:
        raise CegisError(
            f"cannot optimize {program.name!r}: baseline generation "
            f"failed: {exc}") from exc
    basic = baseline.basic_program
    if basic is None:
        raise CegisError(
            f"cannot optimize {program.name!r}: generator recorded no "
            f"basic program to rewrite")

    accepted: List[str] = []
    refuted: List[Dict[str, object]] = []
    inapplicable: List[str] = []
    replay: List[int] = []

    for rewrite in catalog():
        # Applicability against the *current* composition: mirrors what
        # build_candidate will do with accepted + [this id].
        current = apply_sequence(accepted, basic)
        if rewrite.transform(current) is None:
            inapplicable.append(rewrite.id)
            continue
        trial = dataclasses.replace(
            base, verified_rewrites=tuple(accepted) + (rewrite.id,))
        counterexample = find_counterexample(
            program, program, base, options_b=trial,
            seeds=replay, budget=budget, seed=seed,
            tol=tol, ref_tol=ref_tol, backends=backends)
        if counterexample is None:
            accepted.append(rewrite.id)
        else:
            entry: Dict[str, object] = {"id": rewrite.id}
            entry.update(counterexample.to_json())
            refuted.append(entry)
            if counterexample.seed >= 0 \
                    and counterexample.seed not in replay:
                replay.append(counterexample.seed)

    outcome = CegisOutcome(
        program_name=program.name, label=label or program.name,
        key=fixbank_key(program, machine=machine,
                        vectorize=base.vectorize),
        accepted=accepted, refuted=refuted, inapplicable=inapplicable,
        backends=resolve_backends(backends), seed=seed, budget=budget,
        tol=tol, ref_tol=ref_tol)
    if bank is not None:
        bank.put(outcome.key, outcome.to_record())
    return outcome
