"""Command-line front-end of the CEGIS verified-optimization tier.

Usage (``PYTHONPATH=src python -m repro.cegis <command>``)::

    optimize SPEC ... [--budget N] [--seed N] [--backends B] [--scalar]
                      [--json]     # run the CEGIS loop and bank the result
    report   [SPEC ...] [--json]   # show fix records (all, or for specs)
    replay   SPEC ... [--json]     # re-check every banked counterexample
                                   # still refutes its rewrite
    purge    [--yes] [--json]      # drop every fix record

A SPEC is ``name:size`` (``potrf:8``) or ``name:sizexk`` (``kf:8x4``) --
the same workload addresses the kernel service and tuner use.  The bank
root defaults to ``~/.cache/repro-slingen/fixbank`` and can be moved
with ``--db`` (historical alias ``--bank``) or the ``REPRO_FIXBANK``
environment variable.

``optimize --json`` emits one stable document per run (see
:data:`REPORT_SCHEMA_VERSION`); CI asserts accepted/refuted counts
against it.  ``report`` exits non-zero when a requested spec has no
record yet; ``replay`` exits non-zero when a banked counterexample no
longer refutes (which means a rewrite or the oracle changed -- the
record is stale and should be re-verified).
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional

from ..cli import (EXIT_FAILURE, EXIT_OK, add_json_flag, confirm, fail,
                   print_json)
from ..errors import ReproError
from ..slingen.options import Options
from .fixbank import FixBank, default_fixbank_dir, fixbank_key
from .loop import optimize_program
from .rewrites import known_ids
from .verifier import DEFAULT_BUDGET, find_counterexample


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cegis",
        description="Verify unsound rewrites per workload and manage the "
                    "fix bank.")
    parser.add_argument("--db", "--bank", dest="bank", default=None,
                        metavar="DIR",
                        help=f"fix-bank root "
                             f"(default: {default_fixbank_dir()})")
    sub = parser.add_subparsers(dest="command", required=True)

    optimize = sub.add_parser(
        "optimize", help="run the CEGIS loop on workloads and bank what "
                         "survives")
    optimize.add_argument("specs", nargs="+", metavar="SPEC",
                          help="workloads to verify, e.g. potrf:8 kf:8x4")
    optimize.add_argument("--budget", type=int, default=DEFAULT_BUDGET,
                          help="fresh input draws per candidate rewrite")
    optimize.add_argument("--seed", type=int, default=0)
    optimize.add_argument("--backends", default="auto",
                          help="comma-separated backend list or 'auto'")
    optimize.add_argument("--scalar", action="store_true",
                          help="verify scalar (non-vectorized) generation")
    add_json_flag(optimize, help="emit a machine-readable summary (stable "
                                 "schema, see REPORT_SCHEMA_VERSION)")

    report = sub.add_parser("report", help="show fix records")
    report.add_argument("specs", nargs="*", metavar="SPEC",
                        help="workloads to report (default: every record)")
    report.add_argument("--scalar", action="store_true",
                        help="look up the scalar-verified records")
    add_json_flag(report, help="emit a machine-readable report")

    replay = sub.add_parser(
        "replay", help="re-run every banked counterexample against its "
                       "refuted rewrite")
    replay.add_argument("specs", nargs="+", metavar="SPEC")
    replay.add_argument("--scalar", action="store_true")
    add_json_flag(replay)

    purge = sub.add_parser("purge", help="drop every fix record")
    purge.add_argument("--yes", action="store_true",
                       help="do not ask for confirmation")
    add_json_flag(purge)
    return parser


#: Version of the machine-readable documents this CLI emits.  ``optimize
#: --json`` prints ``{"schema": N, "bank_root": str, "runs": [RUN...]}``
#: where each RUN is a :meth:`repro.cegis.loop.CegisOutcome.summary`
#: dict; ``report --json`` prints ``{"schema": N, "bank_root": str,
#: "requested": [...] | null, "missing": [...], "records": [...]}``.
#: Scripts and CI assert against these shapes; bump on any incompatible
#: change.
REPORT_SCHEMA_VERSION = 1


def _record_json(record, spec: Optional[str] = None) -> dict:
    return {
        "spec": spec if spec is not None else record.label,
        "label": record.label,
        "program": record.program_name,
        "key": record.key,
        "seed": record.seed,
        "budget": record.budget,
        "backends": list(record.backends),
        "accepted": list(record.accepted),
        "refuted": list(record.refuted),
        "inapplicable": list(record.inapplicable),
        "created_at": record.created_at,
    }


def _record_line(record) -> str:
    refuted = ",".join(entry["id"] for entry in record.refuted) or "-"
    accepted = ",".join(record.accepted) or "-"
    return (f"{record.label:14s} accepted [{accepted}]  "
            f"refuted [{refuted}]  budget {record.budget}  "
            f"{len(record.backends)} backend(s)")


def _base_options(scalar: bool) -> Options:
    return Options(vectorize=not scalar, annotate_code=False)


def _cmd_optimize(bank: FixBank, args: argparse.Namespace) -> int:
    from ..service.registry import build_case, parse_spec
    options = _base_options(args.scalar)
    runs = []
    for text in args.specs:
        spec = parse_spec(text)
        case = build_case(spec)
        outcome = optimize_program(
            case.program, options, budget=args.budget, seed=args.seed,
            backends=args.backends, bank=bank, label=spec.label)
        runs.append(outcome.summary())
        if not args.as_json:
            print(_record_line(outcome.to_record()))
    if args.as_json:
        print_json({
            "schema": REPORT_SCHEMA_VERSION,
            "bank_root": bank.root,
            "runs": runs,
        })
    else:
        print(f"verified {len(args.specs)} workload(s) against "
              f"{len(known_ids())} candidate rewrite(s) into {bank.root}")
    return EXIT_OK


def _cmd_report(bank: FixBank, args: argparse.Namespace) -> int:
    found: List[tuple] = []          # (spec-or-None, record)
    missing: List[str] = []
    if args.specs:
        from ..service.registry import build_case, parse_spec
        for text in args.specs:
            case = build_case(parse_spec(text))
            record = bank.get(fixbank_key(case.program,
                                          vectorize=not args.scalar))
            if record is None:
                missing.append(text)
            else:
                found.append((text, record))
    else:
        found = [(None, record)
                 for record in sorted(bank.records(), key=lambda r: r.label)]

    if args.as_json:
        print_json({
            "schema": REPORT_SCHEMA_VERSION,
            "bank_root": bank.root,
            "requested": list(args.specs) or None,
            "missing": missing,
            "records": [_record_json(record, spec)
                        for spec, record in found],
        })
        return EXIT_FAILURE if missing else EXIT_OK

    for text in missing:
        print(f"{text}: no fix record")
    for _, record in found:
        print(_record_line(record))
    if not args.specs:
        if not found:
            print("fix bank is empty")
        else:
            print(f"{len(found)} record(s) in {bank.root}")
    return EXIT_FAILURE if missing else EXIT_OK


def _cmd_replay(bank: FixBank, args: argparse.Namespace) -> int:
    """Re-establish every banked counterexample.

    For each refuted rewrite with a recorded seed, re-run the verifier
    with *only* that seed (budget 0 fresh draws) and demand it still
    refutes.  The composition is reconstructed exactly as the loop
    tried it: the loop walks the catalog in order with the accepted
    set accumulated *so far*, so the prefix for a refuted rewrite is
    the accepted ids that precede it in catalog order -- not the full
    final accepted set, under which a later rewrite may simply no
    longer fire.  A counterexample that stopped refuting means the
    catalog or the pipeline changed under the record."""
    from ..service.registry import build_case, parse_spec
    options = _base_options(args.scalar)
    catalog_position = {rid: pos for pos, rid in enumerate(known_ids())}
    stale = 0
    checked = 0
    results = []

    def note(doc: dict, line: str) -> None:
        results.append(doc)
        if not args.as_json:
            print(line)

    for text in args.specs:
        case = build_case(parse_spec(text))
        record = bank.get(fixbank_key(case.program,
                                      vectorize=not args.scalar))
        if record is None:
            stale += 1
            note({"spec": text, "status": "no-record"},
                 f"{text}: no fix record")
            continue
        known = set(known_ids())
        for entry in record.counterexamples():
            rewrite_id = str(entry["id"])
            if rewrite_id not in known:
                stale += 1
                note({"spec": text, "rewrite": rewrite_id,
                      "status": "unknown-rewrite"},
                     f"{text}: {rewrite_id}: rewrite no longer in catalog")
                continue
            prefix = tuple(
                rid for rid in record.accepted
                if rid in known
                and catalog_position[rid] < catalog_position[rewrite_id])
            trial = dataclasses.replace(
                options, verified_rewrites=prefix + (rewrite_id,))
            counterexample = find_counterexample(
                case.program, case.program, options, options_b=trial,
                seeds=[int(entry["seed"])], budget=0)
            checked += 1
            if counterexample is None:
                stale += 1
                note({"spec": text, "rewrite": rewrite_id,
                      "seed": int(entry["seed"]), "status": "stale"},
                     f"{text}: {rewrite_id}: seed {entry['seed']} no "
                     f"longer refutes (stale record)")
            else:
                note({"spec": text, "rewrite": rewrite_id,
                      "seed": int(entry["seed"]), "status": "refuted"},
                     f"{text}: {rewrite_id}: still refuted -- "
                     f"{counterexample.describe()}")
    if args.as_json:
        print_json({"schema": REPORT_SCHEMA_VERSION, "checked": checked,
                    "stale": stale, "results": results})
    else:
        print(f"replayed {checked} counterexample(s), {stale} stale")
    return EXIT_FAILURE if stale else EXIT_OK


def _cmd_purge(bank: FixBank, args: argparse.Namespace) -> int:
    if not confirm(f"purge every fix record under {bank.root}?",
                   assume_yes=args.yes):
        print("aborted")
        return EXIT_FAILURE
    removed = bank.purge()
    if args.as_json:
        print_json({"purged": removed})
    else:
        print(f"purged {removed} record(s)")
    return EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        bank = FixBank(root=args.bank)
        if args.command == "optimize":
            return _cmd_optimize(bank, args)
        if args.command == "report":
            return _cmd_report(bank, args)
        if args.command == "replay":
            return _cmd_replay(bank, args)
        if args.command == "purge":
            return _cmd_purge(bank, args)
    except ReproError as exc:
        return fail(exc)
    return EXIT_OK  # pragma: no cover - argparse enforces a command


if __name__ == "__main__":
    sys.exit(main())
