"""The catalog of candidate *unsound* rewrites over basic programs.

Every transform here is a pure function ``Program -> Program | None``:
``None`` means "does not apply to this program"; otherwise a **new**
program is returned and the input is left untouched.  Transforms are
deterministic and idempotent (applying one to its own output returns
``None``), which the tier-1 suite checks over the whole fuzz corpus.

None of these rewrites is safe in general -- each changes rounding,
exploits an assumed structural property, or reorders memory traffic.
That is the point: the CEGIS loop (:mod:`repro.cegis.loop`) applies a
transform to one concrete program instance and keeps it **only** when
the differential oracle cannot refute the result within its input
budget.  The catalog:

``tri-unit-diag``
    Triangle shortcut: drop divisions by a diagonal element of a square
    operand, assuming the diagonal is exactly 1.  Valid for
    unit-diagonal triangular systems; genuinely wrong otherwise (the
    designated refutation workhorse).
``fma-chain``
    Reassociate long +/- chains into sum-of-positives minus
    sum-of-negatives, right-nested -- the shape FMA contraction and
    vector reduction like.  Changes the rounding order.
``recip-div``
    Strength reduction ``x = b / d  ->  t = 1/d; x = t * b`` for scalar
    divisions with a non-constant divisor, sharing the reciprocal
    across statements with the same divisor.  One rounding per use
    becomes two.
``factor-scalar``
    Common-scalar factoring ``(t*A) - (t*B) -> t * (A - B)`` over +/-
    chains whose terms all scale by the same scalar.  Distributivity is
    not exact in floats.
``fuse-scalar``
    Fuse adjacent single-consumer scalar temporaries into their one
    consumer (forward substitution), deleting the defining statement.
    Reorders evaluation relative to surrounding writes.
``cse-hoist``
    Cross-statement CSE: a scalar statement recomputing an earlier
    statement's exact right-hand side (no intervening clobber of its
    inputs) becomes a copy from the earlier destination.

Hazard checks are storage-group aware (``ow`` aliasing resolved through
:meth:`~repro.ir.program.Program.storage_groups`), but they are *local*
safeguards, not proofs -- the oracle has the final word.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..errors import CegisError
from ..ir.expr import (Add, Const, Div, Expr, Mul, Neg, Ref, Sub, _Binary,
                       _Unary, flatten_add)
from ..ir.operands import IOType, Operand, View
from ..ir.program import Assign, Program, Statement
from ..ir.properties import Properties

#: Iteration bound for the internal fixpoint loops (generous; basic
#: programs have at most a few hundred statements).
_FIXPOINT_LIMIT = 200


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


def _clone(program: Program) -> Program:
    """An independent deep copy (statements keep referencing the *copied*
    operand objects, so ``Program.add``'s identity checks still hold)."""
    return copy.deepcopy(program)


def _canonical(program: Program) -> str:
    from ..service.keys import canonical_program
    return canonical_program(program)


def _views_clash(a: View, b: View, leaders: Dict[str, str]) -> bool:
    """Do two views touch the same storage (``ow`` chains resolved)?"""
    la = leaders.get(a.operand.name, a.operand.name)
    lb = leaders.get(b.operand.name, b.operand.name)
    if la != lb:
        return False
    return not (a.row_off + a.rows <= b.row_off
                or b.row_off + b.rows <= a.row_off
                or a.col_off + a.cols <= b.col_off
                or b.col_off + b.cols <= a.col_off)


def _clashes_any(view: View, others: Iterable[View],
                 leaders: Dict[str, str]) -> bool:
    return any(_views_clash(view, other, leaders) for other in others)


def _fresh_scalar(program: Program, prefix: str) -> View:
    """Declare a fresh 1x1 OUT temporary with an unused name."""
    for index in itertools.count():
        name = f"{prefix}{index}"
        if name not in program.operands:
            operand = Operand(name, 1, 1, IOType.OUT, Properties())
            program.declare(operand)
            return operand.full_view()
    raise AssertionError("unreachable")  # pragma: no cover


def _map_expr(expr: Expr, fn: Callable[[Expr], Expr]) -> Expr:
    """Rebuild ``expr`` with ``fn`` applied to every child subtree."""
    if isinstance(expr, _Binary):
        return type(expr)(fn(expr.left), fn(expr.right))
    if isinstance(expr, _Unary):
        return type(expr)(fn(expr.child))
    return expr


# ---------------------------------------------------------------------------
# tri-unit-diag
# ---------------------------------------------------------------------------


def _is_diagonal_element(view: View) -> bool:
    return (view.rows == 1 and view.cols == 1
            and view.row_off == view.col_off
            and view.operand.rows == view.operand.cols
            and view.operand.rows > 1)


def _tri_unit_diag(program: Program) -> Optional[Program]:
    """Assume square operands carry a unit diagonal: ``x = b / D[k,k]``
    loses its division.  Sound only for genuinely unit-diagonal data."""
    out = _clone(program)
    changed = False
    statements: List[Statement] = []
    for statement in out.statements:
        if isinstance(statement, Assign) and isinstance(statement.rhs, Div) \
                and isinstance(statement.rhs.right, Ref) \
                and _is_diagonal_element(statement.rhs.right.view):
            statements.append(Assign(statement.lhs, statement.rhs.left))
            changed = True
        else:
            statements.append(statement)
    if not changed:
        return None
    out.statements = statements
    return out


# ---------------------------------------------------------------------------
# fma-chain
# ---------------------------------------------------------------------------


def _right_sum(terms: List[Expr]) -> Expr:
    total = terms[-1]
    for term in reversed(terms[:-1]):
        total = Add(term, total)
    return total


def _reassociate(expr: Expr) -> Expr:
    if isinstance(expr, (Add, Sub, Neg)):
        terms = [(sign, _map_expr(term, _reassociate))
                 for sign, term in flatten_add(expr)]
        if len(terms) >= 3:
            positive = [term for sign, term in terms if sign > 0]
            negative = [term for sign, term in terms if sign < 0]
            if not negative:
                return _right_sum(positive)
            if not positive:
                return Neg(_right_sum(negative))
            return Sub(_right_sum(positive), _right_sum(negative))
        # short chains keep their structure (terms still rebuilt)
    return _map_expr(expr, _reassociate)


def _fma_chain(program: Program) -> Optional[Program]:
    """Reassociate every +/- chain of >= 3 terms into
    ``(p0+(p1+...)) - (n0+(n1+...))``: positives and negatives each
    right-nested, FMA/reduction shaped.  Changes rounding order."""
    out = _clone(program)
    changed = False
    statements: List[Statement] = []
    for statement in out.statements:
        if isinstance(statement, Assign):
            rebuilt = _reassociate(statement.rhs)
            if rebuilt != statement.rhs:
                statement = Assign(statement.lhs, rebuilt)
                changed = True
        statements.append(statement)
    if not changed:
        return None
    out.statements = statements
    return out


# ---------------------------------------------------------------------------
# recip-div
# ---------------------------------------------------------------------------


def _recip_div(program: Program) -> Optional[Program]:
    """``x = b / d`` (non-constant scalar divisor, non-constant
    numerator) becomes ``t = 1/d; x = t * b``, reusing ``t`` across
    statements whose divisor is syntactically identical and whose
    inputs were not overwritten in between."""
    from ..service.keys import _canonical_expr
    out = _clone(program)
    leaders = out.storage_groups()
    changed = False
    statements: List[Statement] = []
    # canonical divisor text -> (reciprocal view, divisor read views)
    memo: Dict[str, Tuple[View, List[View]]] = {}
    for statement in out.statements:
        if isinstance(statement, Assign) and isinstance(statement.rhs, Div) \
                and not isinstance(statement.rhs.right, Const) \
                and not isinstance(statement.rhs.left, Const):
            divisor = statement.rhs.right
            canon = _canonical_expr(divisor)
            entry = memo.get(canon)
            if entry is None:
                tau = _fresh_scalar(out, "cg_r")
                statements.append(Assign(tau, Div(Const(1.0), divisor)))
                memo[canon] = (tau, divisor.views())
            else:
                tau = entry[0]
            statements.append(Assign(statement.lhs,
                                     Mul(Ref(tau), statement.rhs.left)))
            changed = True
        else:
            statements.append(statement)
        # invalidate memoized reciprocals whose divisor inputs this
        # statement (or the rewritten pair above) just overwrote
        for write in statements[-1].writes():
            memo = {canon: entry for canon, entry in memo.items()
                    if not _clashes_any(write, entry[1], leaders)}
    if not changed:
        return None
    out.statements = statements
    return out


# ---------------------------------------------------------------------------
# factor-scalar
# ---------------------------------------------------------------------------


def _signed_chain(terms: List[Tuple[int, Expr]]) -> Expr:
    sign, term = terms[0]
    total = Neg(term) if sign < 0 else term
    for sign, term in terms[1:]:
        total = Sub(total, term) if sign < 0 else Add(total, term)
    return total


def _factor(expr: Expr) -> Expr:
    if isinstance(expr, (Add, Sub)):
        terms = [(sign, _factor(term))
                 for sign, term in flatten_add(expr)]
        if len(terms) >= 2 \
                and all(isinstance(term, Mul) and isinstance(term.left, Ref)
                        and term.left.is_scalar for _, term in terms):
            scalars = [term.left for _, term in terms]
            if all(scalar == scalars[0] for scalar in scalars[1:]):
                inner = _signed_chain([(sign, term.right)
                                       for sign, term in terms])
                return Mul(scalars[0], inner)
    return _map_expr(expr, _factor)


def _factor_scalar(program: Program) -> Optional[Program]:
    """``(t*A) - (t*B) + (t*C) ... -> t * (A - B + C ...)`` whenever all
    terms of a +/- chain scale by the same scalar.  Distributivity does
    not hold exactly in floating point."""
    out = _clone(program)
    changed = False
    statements: List[Statement] = []
    for statement in out.statements:
        if isinstance(statement, Assign):
            rebuilt = _factor(statement.rhs)
            if rebuilt != statement.rhs:
                statement = Assign(statement.lhs, rebuilt)
                changed = True
        statements.append(statement)
    if not changed:
        return None
    out.statements = statements
    return out


# ---------------------------------------------------------------------------
# fuse-scalar
# ---------------------------------------------------------------------------


def _substitute_ref(expr: Expr, target: Operand, replacement: Expr) -> Expr:
    if isinstance(expr, Ref) and expr.view.operand is target:
        return replacement
    return _map_expr(expr, lambda child: _substitute_ref(child, target,
                                                         replacement))


def _fuse_once(program: Program) -> bool:
    """Inline one single-def single-use scalar temporary; True if fused."""
    leaders = program.storage_groups()
    statements = program.statements
    for operand in program.operands.values():
        if not (operand.is_scalar and operand.io is IOType.OUT
                and operand.overwrites is None):
            continue
        defs = [index for index, statement in enumerate(statements)
                if isinstance(statement, Assign)
                and statement.lhs.operand is operand]
        uses = [(index, sum(1 for view in statement.reads()
                            if view.operand is operand))
                for index, statement in enumerate(statements)
                if any(view.operand is operand
                       for view in statement.reads())]
        if len(defs) != 1 or len(uses) != 1 or uses[0][1] != 1:
            continue
        def_index, use_index = defs[0], uses[0][0]
        if use_index <= def_index:
            continue
        use = statements[use_index]
        if not isinstance(use, Assign):
            continue
        definition = statements[def_index]
        def_reads = definition.rhs.views()
        if any(view.operand is operand for view in def_reads):
            continue  # self-referential definition
        hazard = False
        for between in statements[def_index + 1:use_index]:
            for write in between.writes():
                if _clashes_any(write, def_reads + [definition.lhs],
                                leaders):
                    hazard = True
                    break
            if hazard:
                break
        # the consumer's own write must not feed the substituted reads
        if hazard or _clashes_any(use.lhs, def_reads, leaders):
            continue
        fused = _substitute_ref(use.rhs, operand, definition.rhs)
        program.statements = (statements[:def_index]
                              + statements[def_index + 1:use_index]
                              + [Assign(use.lhs, fused)]
                              + statements[use_index + 1:])
        return True
    return False


def _fuse_scalar(program: Program) -> Optional[Program]:
    """Forward-substitute scalar temporaries with exactly one definition
    and one consumer, deleting the defining statement (its declaration
    stays; dead stores are the later passes' business).  Runs to a
    fixpoint so the transform is idempotent."""
    out = _clone(program)
    changed = False
    for _ in range(_FIXPOINT_LIMIT):
        if not _fuse_once(out):
            break
        changed = True
    return out if changed else None


# ---------------------------------------------------------------------------
# cse-hoist
# ---------------------------------------------------------------------------


def _cse_hoist(program: Program) -> Optional[Program]:
    """A scalar statement recomputing an earlier statement's exact RHS
    (inputs not clobbered in between) becomes a copy of the earlier
    destination: ``t7 = 1/U[3,3]`` after ``t6 = 1/U[3,3]`` turns into
    ``t7 = t6``."""
    from ..service.keys import _canonical_expr
    out = _clone(program)
    leaders = out.storage_groups()
    changed = False
    # canonical rhs -> (source lhs view, rhs read views)
    memo: Dict[str, Tuple[View, List[View]]] = {}
    statements: List[Statement] = []
    for statement in out.statements:
        if isinstance(statement, Assign) and statement.lhs.is_scalar \
                and not isinstance(statement.rhs, (Ref, Const)):
            canon = _canonical_expr(statement.rhs)
            entry = memo.get(canon)
            if entry is not None:
                statement = Assign(statement.lhs, Ref(entry[0]))
                changed = True
        statements.append(statement)
        writes = statement.writes()
        memo = {canon: entry for canon, entry in memo.items()
                if not any(_clashes_any(write, entry[1] + [entry[0]],
                                        leaders) for write in writes)}
        if isinstance(statement, Assign) and statement.lhs.is_scalar \
                and not isinstance(statement.rhs, (Ref, Const)):
            reads = statement.rhs.views()
            if not _clashes_any(statement.lhs, reads, leaders):
                memo[_canonical_expr(statement.rhs)] = (statement.lhs,
                                                        reads)
    if not changed:
        return None
    out.statements = statements
    return out


# ---------------------------------------------------------------------------
# The catalog
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Rewrite:
    """One catalog entry: a stable id, a summary, and the pure transform."""

    id: str
    summary: str
    transform: Callable[[Program], Optional[Program]]

    def apply(self, program: Program) -> Optional[Program]:
        """The transformed program, or ``None`` when inapplicable.  The
        input program is never mutated."""
        return self.transform(program)


#: Catalog order is the CEGIS proposal order.  ``tri-unit-diag`` goes
#: first on purpose: it is the rewrite most likely to be refuted, and an
#: early refutation seeds the counterexample list that every later
#: candidate must survive before fresh draws are spent.
_CATALOG: Tuple[Rewrite, ...] = (
    Rewrite("tri-unit-diag",
            "skip divisions by the diagonal of a square operand "
            "(assumes a unit diagonal)", _tri_unit_diag),
    Rewrite("fma-chain",
            "reassociate long +/- chains into FMA/reduction shape "
            "(positives minus negatives, right-nested)", _fma_chain),
    Rewrite("recip-div",
            "strength-reduce scalar division to reciprocal + multiply, "
            "sharing reciprocals per divisor", _recip_div),
    Rewrite("factor-scalar",
            "factor a common scalar multiplier out of +/- chains",
            _factor_scalar),
    # cse-hoist must precede fuse-scalar: hoisting needs the duplicate
    # scalar definitions that fusing would inline away.
    Rewrite("cse-hoist",
            "replace recomputed scalar right-hand sides with a copy of "
            "the earlier result", _cse_hoist),
    Rewrite("fuse-scalar",
            "inline single-definition single-use scalar temporaries "
            "into their consumer", _fuse_scalar),
)


def catalog() -> Tuple[Rewrite, ...]:
    """Every candidate rewrite, in proposal order."""
    return _CATALOG


def known_ids() -> Tuple[str, ...]:
    return tuple(rewrite.id for rewrite in _CATALOG)


def get_rewrite(rewrite_id: str) -> Rewrite:
    for rewrite in _CATALOG:
        if rewrite.id == rewrite_id:
            return rewrite
    raise CegisError(
        f"unknown rewrite id {rewrite_id!r} (known: "
        f"{', '.join(known_ids())})")


def apply_sequence(rewrite_ids: Iterable[str], program: Program) -> Program:
    """Apply a sequence of rewrites by id, skipping inapplicable ones.

    Always returns a program (the input itself when nothing fired); the
    input is never mutated.  This is what the generator calls for
    ``Options.verified_rewrites``, so banked ids replay identically here
    and in the CEGIS loop.
    """
    current = program
    for rewrite_id in rewrite_ids:
        result = get_rewrite(rewrite_id).apply(current)
        if result is not None:
            current = result
    return current
