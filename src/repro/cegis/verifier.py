"""The verifier: a budgeted counterexample search between two pipelines.

This is the differential oracle of :mod:`repro.fuzz.oracle` refactored
into a reusable judge.  ``find_counterexample`` generates code for a
*baseline* (program, options) pair and a *candidate* pair, then hunts
for an input draw that splits them:

1. the candidate must execute on every resolvable backend (a crash is a
   refutation -- the rewrite produced an uncompilable or unrunnable
   kernel);
2. candidate and baseline must agree on every program-output buffer, on
   every backend, within ``tol``;
3. the candidate's backends must agree with each other within ``tol``;
4. the candidate must agree with the LA-level NumPy/SciPy reference of
   the baseline program within ``ref_tol`` (skipped when the reference
   is not computable for these values, exactly like the fuzz oracle).

Input draws come from :func:`repro.fuzz.oracle.make_inputs`, so they
honour declared structure (SPD right-hand sides, unit diagonals, ...)
-- the search only explores inputs the kernel contract admits.  Caller-
supplied ``seeds`` are replayed *before* the fresh budget: the CEGIS
loop feeds every previously refuting draw back in first, so one
counterexample prunes a whole family of candidates at the cost of a
single execution each.

The search is budgeted, not exhaustive: ``None`` means "no refutation
found within ``budget`` draws", not "equivalent".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..backend import make_executor, resolve_backends
from ..errors import CegisError, ReproError
from ..ir.program import Program
from ..slingen.generator import SLinGen
from ..slingen.options import Options
from ..fuzz.oracle import (DEFAULT_REF_TOL, DEFAULT_TOL, ReferenceSkip,
                           divergent_buffers, make_inputs, max_deviation,
                           reference_outputs)

#: Fresh input draws per verification when the caller does not say.
DEFAULT_BUDGET = 8


@dataclass
class Counterexample:
    """One input draw that refutes a candidate, and how it refuted it."""

    seed: int                     # make_inputs seed of the refuting draw
    stage: str                    # analysis | execute | baseline | backend | reference
    detail: str                   # backend or comparison pair
    worst_delta: float = 0.0
    divergent: List[str] = field(default_factory=list)
    error_type: str = ""
    error: str = ""

    def describe(self) -> str:
        if self.stage == "analysis":
            return (f"static refutation: {self.error_type}: {self.error}")
        if self.stage == "execute":
            return (f"seed {self.seed}: crash on {self.detail}: "
                    f"{self.error_type}: {self.error}")
        return (f"seed {self.seed}: divergence[{self.stage}] {self.detail} "
                f"delta={self.worst_delta:.3e} "
                f"outputs={','.join(self.divergent)}")

    def to_json(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "stage": self.stage,
            "detail": self.detail,
            "worst_delta": self.worst_delta,
            "divergent": list(self.divergent),
            "error_type": self.error_type,
            "error": self.error,
        }


def _output_leaders(program: Program) -> List[str]:
    """Storage-group leaders of the program's output operands -- the
    buffers whose final contents the kernel contract promises.  Baseline
    and candidate pipelines may disagree on scratch temporaries (that is
    what the rewrites change); they must not disagree here."""
    leaders = program.storage_groups()
    return sorted({leaders[op.name] for op in program.outputs()})


def _check_same_interface(program_a: Program, program_b: Program) -> None:
    def interface(program: Program) -> List[Tuple[str, int, int, bool]]:
        return sorted((op.name, op.rows, op.cols, op.is_output)
                      for op in program.operands.values()
                      if op.is_input or op.is_output)
    if interface(program_a) != interface(program_b):
        raise CegisError(
            "verification targets have different interfaces: "
            f"{interface(program_a)!r} vs {interface(program_b)!r}")


def find_counterexample(program_a: Program, program_b: Program,
                        options: Options, *,
                        seeds: Sequence[int] = (),
                        budget: int = DEFAULT_BUDGET,
                        tol: float = DEFAULT_TOL,
                        ref_tol: float = DEFAULT_REF_TOL,
                        backends: str = "auto",
                        seed: int = 0,
                        options_b: Optional[Options] = None,
                        phase_cache: Optional[object] = None
                        ) -> Optional[Counterexample]:
    """Search for an input on which the two pipelines disagree.

    ``program_a``/``options`` is the trusted baseline; ``program_b`` with
    ``options_b`` (defaulting to ``options``) is the candidate under
    test.  ``seeds`` are replayed first, then ``budget`` fresh draws
    ``seed, seed+1, ...``.  Returns the first :class:`Counterexample`,
    or ``None`` when the budget is exhausted without a refutation.
    ``phase_cache`` (``None`` = the shared process-wide one) lets
    repeated verifications of the same baseline reuse its Stage-1 and
    lowering artifacts instead of regenerating them per refutation
    attempt.

    Raises :class:`CegisError` when the *baseline* itself cannot be
    generated or executed -- a broken baseline refutes the verification
    setup, not the candidate.
    """
    _check_same_interface(program_a, program_b)
    names = resolve_backends(backends)

    try:
        result_a = SLinGen(options,
                           phase_cache=phase_cache).generate_result(program_a)
    except ReproError as exc:
        raise CegisError(f"baseline generation failed: {exc}") from exc
    try:
        result_b = SLinGen(options_b or options,
                           phase_cache=phase_cache).generate_result(program_b)
    except Exception as exc:   # noqa: BLE001 - any crash refutes
        return Counterexample(seed=-1, stage="execute", detail="generate",
                              error_type=type(exc).__name__, error=str(exc))

    # Static refutation before any dynamic draw is spent: a candidate
    # whose artifact the verifier rejects (out-of-bounds access,
    # structurally-zero read, width mismatch) is wrong on *every* input,
    # so no sampling budget is needed to refute it.
    from ..analysis import verify_function, verify_program
    report = verify_function(result_b.function)
    if result_b.basic_program is not None:
        report = report.merged_with(verify_program(result_b.basic_program))
    if not report.ok:
        return Counterexample(
            seed=-1, stage="analysis", detail="static",
            error_type="AnalysisError",
            error="; ".join(d.describe() for d in report.errors[:8]))

    kernels_a = {}
    kernels_b = {}
    for name in names:
        try:
            kernels_a[name] = make_executor(result_a.function, backend=name,
                                            c_code=result_a.c_code)
        except ReproError as exc:
            raise CegisError(
                f"baseline backend {name} unavailable: {exc}") from exc
        try:
            kernels_b[name] = make_executor(result_b.function, backend=name,
                                            c_code=result_b.c_code)
        except Exception as exc:   # noqa: BLE001
            return Counterexample(seed=-1, stage="execute", detail=name,
                                  error_type=type(exc).__name__,
                                  error=str(exc))

    shared = _output_leaders(program_a)
    draws: List[int] = []
    for known in seeds:
        if known not in draws:
            draws.append(int(known))
    for index in range(budget):
        fresh = seed + index
        if fresh not in draws:
            draws.append(fresh)

    for draw in draws:
        inputs = make_inputs(program_a, draw)

        outputs_b: Dict[str, Dict[str, np.ndarray]] = {}
        for name in names:
            try:
                expected = kernels_a[name].run(inputs)
            except ReproError as exc:
                raise CegisError(
                    f"baseline execution failed on {name}: {exc}") from exc
            try:
                outputs_b[name] = kernels_b[name].run(inputs)
            except Exception as exc:   # noqa: BLE001
                return Counterexample(seed=draw, stage="execute", detail=name,
                                      error_type=type(exc).__name__,
                                      error=str(exc))
            common = [buf for buf in shared
                      if buf in expected and buf in outputs_b[name]]
            want = {buf: expected[buf] for buf in common}
            got = {buf: outputs_b[name][buf] for buf in common}
            divergent = divergent_buffers(want, got, tol)
            if divergent:
                return Counterexample(
                    seed=draw, stage="baseline",
                    detail=f"{name}: candidate vs baseline",
                    worst_delta=max_deviation(want, got),
                    divergent=divergent)

        for i, first in enumerate(names):
            for second in names[i + 1:]:
                divergent = divergent_buffers(outputs_b[first],
                                              outputs_b[second], tol)
                if divergent:
                    return Counterexample(
                        seed=draw, stage="backend",
                        detail=f"{first} vs {second}",
                        worst_delta=max_deviation(outputs_b[first],
                                                  outputs_b[second]),
                        divergent=divergent)

        try:
            reference = reference_outputs(program_a, inputs)
        except (ReferenceSkip, ReproError):
            # Not computable for these values (or beyond the evaluator's
            # model): the backend comparisons above still stand, exactly
            # like the fuzz oracle's reference_skip outcome.
            continue
        base = names[0]
        common = [buf for buf in shared
                  if buf in reference and buf in outputs_b[base]]
        want = {buf: reference[buf] for buf in common}
        got = {buf: outputs_b[base][buf] for buf in common}
        divergent = divergent_buffers(want, got, ref_tol)
        if divergent:
            return Counterexample(
                seed=draw, stage="reference",
                detail=f"{base} vs reference",
                worst_delta=max_deviation(want, got),
                divergent=divergent)

    return None
