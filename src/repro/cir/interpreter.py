"""A numpy-backed interpreter for C-IR functions.

The interpreter gives C-IR an executable semantics independent of a C
compiler: every generated kernel can be run on numpy inputs and compared
against a reference implementation.  The vector operations implement the
exact semantics of the AVX instructions they are unparsed to
(``blend_pd``, ``shuffle_pd``, ``permute2f128_pd``, ``unpacklo/hi_pd``,
masked loads/stores), so that the load/store analysis of Stage 3 can be
validated end to end.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Union

import numpy as np

from ..errors import InterpreterError
from .nodes import (Affine, Assign, BinOp, Buffer, CExpr, Comment, CStmt,
                    FloatConst, For, Function, If, Load, ScalarVar, Store,
                    UnOp, VBinOp, VBlend, VBroadcast, VecVar, VExtract, VFma,
                    VLoad, VPermute2f128, VReduceAdd, VSet, VShufflePd, VStore,
                    VUnpack, VZero)

Value = Union[float, np.ndarray]


def coerce_input(buffer: Buffer, value: np.ndarray,
                 error: type = InterpreterError) -> np.ndarray:
    """Coerce one caller-supplied input to the buffer's flat float64 form.

    The single definition of the input-shape rules every execution
    backend accepts (scalars for 1x1 buffers, 1-D vectors promoted to the
    buffer's row/column orientation, exact 2-D shapes otherwise): the
    interpreter and :class:`~repro.backend.numpy_backend.NumPyKernel`
    must agree on what inputs mean, or differential runs would compare
    kernels fed different data.  ``error`` selects the exception type the
    calling backend reports.
    """
    arr = np.asarray(value, dtype=np.float64)
    if arr.ndim == 0:
        arr = arr.reshape(1, 1)
    if arr.ndim == 1:
        if buffer.cols == 1:
            arr = arr.reshape(-1, 1)
        else:
            arr = arr.reshape(1, -1)
    if arr.shape != (buffer.rows, buffer.cols):
        raise error(
            f"input {buffer.name!r} has shape {arr.shape}, expected "
            f"{(buffer.rows, buffer.cols)}")
    return arr.flatten().astype(np.float64)


class Interpreter:
    """Executes a :class:`~repro.cir.nodes.Function` on numpy buffers."""

    def __init__(self, function: Function):
        self.function = function
        #: Dynamic operation count of the last :meth:`run`: one unit per
        #: expression node evaluated plus one per store executed.  The
        #: autotuner's interpreter backend uses it as a deterministic,
        #: compiler-free cost measurement.
        self.executed_ops = 0

    # -- public API ----------------------------------------------------------

    def run(self, inputs: Dict[str, np.ndarray],
            check_finite: bool = False) -> Dict[str, np.ndarray]:
        """Execute the function.

        Parameters
        ----------
        inputs:
            Maps parameter names to 2-D numpy arrays (or scalars for 1x1
            buffers).  Input buffers are copied, so callers' arrays are never
            modified.  Output-only parameters may be omitted.
        check_finite:
            When true, raise if any output contains NaN/Inf.

        Returns
        -------
        dict
            Maps every writable parameter name to its final 2-D value.
        """
        storage: Dict[str, np.ndarray] = {}
        for buf in self.function.params:
            if buf.name in inputs:
                storage[buf.name] = coerce_input(buf, inputs[buf.name])
            elif buf.kind == "in" or buf.kind == "inout":
                raise InterpreterError(f"missing input buffer {buf.name!r}")
            else:
                storage[buf.name] = np.zeros(buf.size, dtype=np.float64)
        for buf in self.function.temps:
            storage[buf.name] = np.zeros(buf.size, dtype=np.float64)

        env: Dict[str, Value] = {}
        self._storage = storage
        self.executed_ops = 0
        # C arithmetic never warns: non-finite values propagate
        # IEEE-style through the vector ops without numpy chatter.
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            self._exec_block(self.function.body, env, {})

        outputs: Dict[str, np.ndarray] = {}
        for buf in self.function.params:
            if buf.writable:
                out = storage[buf.name].reshape(buf.rows, buf.cols).copy()
                if check_finite and not np.all(np.isfinite(out)):
                    raise InterpreterError(
                        f"output {buf.name!r} contains non-finite values")
                outputs[buf.name] = out
        return outputs

    # -- statement execution --------------------------------------------------

    def _exec_block(self, stmts, env: Dict[str, Value],
                    indices: Dict[str, int]) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt, env, indices)

    def _exec_stmt(self, stmt: CStmt, env: Dict[str, Value],
                   indices: Dict[str, int]) -> None:
        if isinstance(stmt, Comment):
            return
        if isinstance(stmt, Assign):
            env[stmt.dest.name] = self._eval(stmt.value, env, indices)
            return
        if isinstance(stmt, Store):
            self.executed_ops += 1
            buf = self._buffer_array(stmt.buffer)
            idx = stmt.index.evaluate(indices)
            self._check_index(stmt.buffer, idx, 1)
            buf[idx] = float(self._as_scalar(self._eval(stmt.value, env,
                                                        indices)))
            return
        if isinstance(stmt, VStore):
            self.executed_ops += 1
            buf = self._buffer_array(stmt.buffer)
            idx = stmt.index.evaluate(indices)
            value = self._as_vector(self._eval(stmt.value, env, indices),
                                    stmt.width)
            mask = stmt.mask if stmt.mask is not None else (True,) * stmt.width
            for lane, keep in enumerate(mask):
                if keep:
                    self._check_index(stmt.buffer, idx + lane, 1)
                    buf[idx + lane] = value[lane]
            return
        if isinstance(stmt, For):
            for value in stmt.iterations():
                inner = dict(indices)
                inner[stmt.var] = value
                self._exec_block(stmt.body, env, inner)
            return
        if isinstance(stmt, If):
            branch = stmt.then_body if stmt.evaluate(indices) else stmt.else_body
            self._exec_block(branch, env, indices)
            return
        raise InterpreterError(f"unknown statement {stmt!r}")

    # -- expression evaluation -------------------------------------------------

    def _eval(self, expr: CExpr, env: Dict[str, Value],
              indices: Dict[str, int]) -> Value:
        self.executed_ops += 1
        if isinstance(expr, FloatConst):
            return float(expr.value)
        if isinstance(expr, (ScalarVar, VecVar)):
            try:
                return env[expr.name]
            except KeyError:
                raise InterpreterError(f"use of undefined register "
                                       f"{expr.name!r}")
        if isinstance(expr, Load):
            buf = self._buffer_array(expr.buffer)
            idx = expr.index.evaluate(indices)
            self._check_index(expr.buffer, idx, 1)
            return float(buf[idx])
        if isinstance(expr, VLoad):
            buf = self._buffer_array(expr.buffer)
            idx = expr.index.evaluate(indices)
            out = np.zeros(expr.width, dtype=np.float64)
            mask = expr.mask if expr.mask is not None else (True,) * expr.width
            for lane, keep in enumerate(mask):
                if keep:
                    self._check_index(expr.buffer, idx + lane, 1)
                    out[lane] = buf[idx + lane]
            return out
        if isinstance(expr, VBroadcast):
            value = self._as_scalar(self._eval(expr.value, env, indices))
            return np.full(expr.width, value, dtype=np.float64)
        if isinstance(expr, VSet):
            return np.array([self._as_scalar(self._eval(e, env, indices))
                             for e in expr.elements], dtype=np.float64)
        if isinstance(expr, VZero):
            return np.zeros(expr.width, dtype=np.float64)
        if isinstance(expr, BinOp):
            left = self._as_scalar(self._eval(expr.left, env, indices))
            right = self._as_scalar(self._eval(expr.right, env, indices))
            return self._scalar_op(expr.op, left, right)
        if isinstance(expr, UnOp):
            value = self._as_scalar(self._eval(expr.operand, env, indices))
            if expr.op == "neg":
                return -value
            if expr.op == "sqrt":
                # C's sqrt() returns NaN for negative arguments; the
                # interpreter is the reference semantics for the compiled
                # backend, so it must not be stricter (a fuzzer-found
                # divergence: interpreter raised while compiled C and the
                # NumPy backend kept running with NaN).
                if value < 0:
                    return math.nan
                return math.sqrt(value)
            raise InterpreterError(f"unknown unary op {expr.op!r}")
        if isinstance(expr, VBinOp):
            left = self._as_vector(self._eval(expr.left, env, indices),
                                   expr.width)
            right = self._as_vector(self._eval(expr.right, env, indices),
                                    expr.width)
            return self._vector_op(expr.op, left, right)
        if isinstance(expr, VFma):
            a = self._as_vector(self._eval(expr.a, env, indices), expr.width)
            b = self._as_vector(self._eval(expr.b, env, indices), expr.width)
            c = self._as_vector(self._eval(expr.c, env, indices), expr.width)
            return a * b + c
        if isinstance(expr, VReduceAdd):
            vec = self._eval(expr.vec, env, indices)
            return float(np.sum(self._as_vector(vec, len(np.atleast_1d(vec)))))
        if isinstance(expr, VExtract):
            vec = self._as_vector(self._eval(expr.vec, env, indices), None)
            return float(vec[expr.lane])
        if isinstance(expr, VBlend):
            a = self._as_vector(self._eval(expr.a, env, indices), expr.width)
            b = self._as_vector(self._eval(expr.b, env, indices), expr.width)
            out = a.copy()
            for lane in range(expr.width):
                if expr.imm >> lane & 1:
                    out[lane] = b[lane]
            return out
        if isinstance(expr, VShufflePd):
            a = self._as_vector(self._eval(expr.a, env, indices), 4)
            b = self._as_vector(self._eval(expr.b, env, indices), 4)
            imm = expr.imm
            return np.array([a[imm & 1], b[(imm >> 1) & 1],
                             a[2 + ((imm >> 2) & 1)], b[2 + ((imm >> 3) & 1)]],
                            dtype=np.float64)
        if isinstance(expr, VPermute2f128):
            a = self._as_vector(self._eval(expr.a, env, indices), 4)
            b = self._as_vector(self._eval(expr.b, env, indices), 4)
            out = np.zeros(4, dtype=np.float64)
            for half in range(2):
                control = (expr.imm >> (4 * half)) & 0xF
                if control & 0x8:
                    out[2 * half:2 * half + 2] = 0.0
                else:
                    source = (a, a, b, b)[control & 3]
                    offset = 0 if (control & 1) == 0 else 2
                    out[2 * half:2 * half + 2] = source[offset:offset + 2]
            return out
        if isinstance(expr, VUnpack):
            a = self._as_vector(self._eval(expr.a, env, indices), 4)
            b = self._as_vector(self._eval(expr.b, env, indices), 4)
            if expr.high:
                return np.array([a[1], b[1], a[3], b[3]], dtype=np.float64)
            return np.array([a[0], b[0], a[2], b[2]], dtype=np.float64)
        raise InterpreterError(f"unknown expression {expr!r}")

    # -- helpers ---------------------------------------------------------------

    def _buffer_array(self, buffer: Buffer) -> np.ndarray:
        try:
            return self._storage[buffer.name]
        except KeyError:
            raise InterpreterError(f"unknown buffer {buffer.name!r}")

    def _check_index(self, buffer: Buffer, index: int, count: int) -> None:
        if index < 0 or index + count > buffer.size:
            raise InterpreterError(
                f"out-of-bounds access to {buffer.name!r}: index {index} "
                f"(+{count}) of {buffer.size}")

    @staticmethod
    def _scalar_op(op: str, left: float, right: float) -> float:
        if op == "add":
            return left + right
        if op == "sub":
            return left - right
        if op == "mul":
            return left * right
        if op == "div":
            # IEEE-754 semantics, like the compiled C: x/0 is +-inf and
            # 0/0 is NaN.  Raising here made the interpreter diverge
            # from every other backend (a fuzzer-found crash).
            if right == 0.0:
                if left == 0.0 or math.isnan(left):
                    return math.nan
                return math.copysign(math.inf, left) * math.copysign(
                    1.0, right)
            return left / right
        if op == "max":
            return max(left, right)
        if op == "min":
            return min(left, right)
        raise InterpreterError(f"unknown scalar op {op!r}")

    @staticmethod
    def _vector_op(op: str, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        if op == "add":
            return left + right
        if op == "sub":
            return left - right
        if op == "mul":
            return left * right
        if op == "div":
            # IEEE-754, like the compiled C: lanes dividing by zero give
            # +-inf / NaN instead of aborting the whole kernel.
            return left / right
        if op == "max":
            return np.maximum(left, right)
        if op == "min":
            return np.minimum(left, right)
        raise InterpreterError(f"unknown vector op {op!r}")

    @staticmethod
    def _as_scalar(value: Value) -> float:
        if isinstance(value, np.ndarray):
            if value.size != 1:
                raise InterpreterError(
                    f"expected a scalar value, got a vector of {value.size}")
            return float(value[0])
        return float(value)

    @staticmethod
    def _as_vector(value: Value, width: Optional[int]) -> np.ndarray:
        if isinstance(value, np.ndarray):
            if width is not None and value.size != width:
                raise InterpreterError(
                    f"expected a vector of width {width}, got {value.size}")
            return value
        if width is None:
            width = 1
        return np.full(width, float(value), dtype=np.float64)


class InterpreterKernel:
    """The interpreter behind the executable-kernel contract.

    Adapter giving C-IR interpretation the same ``run``/``time`` surface
    as :class:`~repro.backend.compile.CompiledKernel` and
    :class:`~repro.backend.numpy_backend.NumPyKernel`, so callers (the
    bench harness, the cross-backend differential checker) can treat
    "interpreter" as just another execution backend.
    """

    def __init__(self, function: Function):
        self.function = function
        self._interpreter = Interpreter(function)

    def run(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        return self._interpreter.run(inputs)

    __call__ = run

    def time(self, inputs: Dict[str, np.ndarray], repeats: int = 5,
             warmup: int = 1, inner: int = 1) -> list:
        """Wall-clock seconds per interpreted call (``repeats`` samples),
        via the shared protocol of :func:`repro.timing.batched_time`.

        The interpreter copies its input buffers on every :meth:`run`, so
        the restore step is a no-op; ``inner`` defaults to 1 because
        interpreted calls are slow enough to time individually.
        """
        from ..timing import batched_time

        return batched_time(lambda: self._interpreter.run(inputs),
                            lambda: None, repeats, warmup, inner)


def run_function(function: Function,
                 inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Convenience wrapper: interpret ``function`` on ``inputs``."""
    return Interpreter(function).run(inputs)
