"""C-IR: the C-like intermediate representation of SLinGen (paper Sec. 3, Stage 2/3).

C-IR sits between the mathematical level (sBLACs on views) and the emitted C
code.  It provides

1. *buffers* -- flat, row-major arrays corresponding to operands (or
   temporaries), accessed through affine index expressions ("special
   pointers for accessing portions of matrices and vectors"),
2. scalar and vector arithmetic on SSA-like register variables, including
   the data-reorganization operations (blend/shuffle/permute/unpack) needed
   by the vectorized codelets and by the load/store analysis,
3. ``For`` and ``If`` statements with affine bounds/conditions on induction
   variables.

All loop bounds are integer constants (operand sizes are fixed), which keeps
both the interpreter and the static instruction-mix analysis exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import CIRError

# ---------------------------------------------------------------------------
# Affine index expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Affine:
    """An affine integer expression ``sum_i coef_i * var_i + const``.

    ``terms`` is a sorted tuple of ``(variable_name, coefficient)`` pairs
    with non-zero coefficients, making instances canonical and hashable.
    """

    terms: Tuple[Tuple[str, int], ...] = ()
    const: int = 0

    # -- constructors -------------------------------------------------------

    @staticmethod
    def constant(value: int) -> "Affine":
        return Affine((), int(value))

    @staticmethod
    def var(name: str, coef: int = 1) -> "Affine":
        if coef == 0:
            return Affine((), 0)
        return Affine(((name, int(coef)),), 0)

    @staticmethod
    def of(value: Union["Affine", int, str]) -> "Affine":
        if isinstance(value, Affine):
            return value
        if isinstance(value, int):
            return Affine.constant(value)
        if isinstance(value, str):
            return Affine.var(value)
        raise CIRError(f"cannot build an affine expression from {value!r}")

    # -- algebra -------------------------------------------------------------

    def __add__(self, other: Union["Affine", int, str]) -> "Affine":
        other = Affine.of(other)
        coeffs: Dict[str, int] = dict(self.terms)
        for name, coef in other.terms:
            coeffs[name] = coeffs.get(name, 0) + coef
        terms = tuple(sorted((n, c) for n, c in coeffs.items() if c != 0))
        return Affine(terms, self.const + other.const)

    def __radd__(self, other: Union[int, str]) -> "Affine":
        return self.__add__(other)

    def __sub__(self, other: Union["Affine", int, str]) -> "Affine":
        return self + Affine.of(other).scaled(-1)

    def __mul__(self, factor: int) -> "Affine":
        return self.scaled(factor)

    def __rmul__(self, factor: int) -> "Affine":
        return self.scaled(factor)

    def scaled(self, factor: int) -> "Affine":
        if factor == 0:
            return Affine((), 0)
        terms = tuple((n, c * factor) for n, c in self.terms)
        return Affine(terms, self.const * factor)

    # -- queries -------------------------------------------------------------

    @property
    def is_constant(self) -> bool:
        return not self.terms

    def value(self) -> int:
        if not self.is_constant:
            raise CIRError(f"affine expression {self} is not constant")
        return self.const

    def variables(self) -> List[str]:
        return [name for name, _ in self.terms]

    def substitute(self, bindings: Dict[str, int]) -> "Affine":
        """Substitute integer values for (some) variables."""
        result = Affine.constant(self.const)
        for name, coef in self.terms:
            if name in bindings:
                result = result + coef * bindings[name]
            else:
                result = result + Affine.var(name, coef)
        return result

    def evaluate(self, bindings: Dict[str, int]) -> int:
        value = self.const
        for name, coef in self.terms:
            try:
                value += coef * bindings[name]
            except KeyError:
                raise CIRError(f"unbound index variable {name!r} in {self}")
        return value

    def __str__(self) -> str:
        parts: List[str] = []
        for name, coef in self.terms:
            if coef == 1:
                parts.append(name)
            elif coef == -1:
                parts.append(f"-{name}")
            else:
                parts.append(f"{coef}*{name}")
        if self.const or not parts:
            parts.append(str(self.const))
        out = " + ".join(parts)
        return out.replace("+ -", "- ")


# ---------------------------------------------------------------------------
# Buffers
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class Buffer:
    """A flat row-major array: a function parameter or a local temporary."""

    name: str
    rows: int
    cols: int
    kind: str = "in"  # one of: in, out, inout, temp

    VALID_KINDS = ("in", "out", "inout", "temp")

    def __post_init__(self) -> None:
        if self.kind not in self.VALID_KINDS:
            raise CIRError(f"invalid buffer kind {self.kind!r}")
        if self.rows <= 0 or self.cols <= 0:
            raise CIRError(f"buffer {self.name!r} has invalid shape "
                           f"{self.rows}x{self.cols}")

    @property
    def size(self) -> int:
        return self.rows * self.cols

    @property
    def is_param(self) -> bool:
        return self.kind != "temp"

    @property
    def writable(self) -> bool:
        return self.kind in ("out", "inout", "temp")

    def index(self, row: Union[Affine, int, str],
              col: Union[Affine, int, str]) -> Affine:
        """Row-major linear index of element (row, col)."""
        return Affine.of(row) * self.cols + Affine.of(col)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Buffer({self.name}, {self.rows}x{self.cols}, {self.kind})"

    def __hash__(self) -> int:
        return id(self)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class CExpr:
    """Base class of C-IR value expressions (double or vector of doubles)."""

    #: vector width of the value (1 for scalars)
    width: int = 1

    def children(self) -> Tuple["CExpr", ...]:
        return ()

    def walk(self) -> Iterator["CExpr"]:
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True)
class FloatConst(CExpr):
    value: float
    width: int = 1

    def __repr__(self) -> str:  # pragma: no cover
        return f"{self.value:g}"


@dataclass(frozen=True)
class ScalarVar(CExpr):
    """A scalar double register variable."""
    name: str
    width: int = 1

    def __repr__(self) -> str:  # pragma: no cover
        return self.name


@dataclass(frozen=True)
class VecVar(CExpr):
    """A vector register variable of ``width`` doubles."""
    name: str
    width: int = 4

    def __repr__(self) -> str:  # pragma: no cover
        return self.name


@dataclass(frozen=True)
class Load(CExpr):
    """Scalar load ``buffer[index]``."""
    buffer: Buffer
    index: Affine
    width: int = 1

    def __repr__(self) -> str:  # pragma: no cover
        return f"{self.buffer.name}[{self.index}]"


@dataclass(frozen=True)
class VLoad(CExpr):
    """Contiguous vector load of ``width`` doubles starting at ``index``.

    ``mask`` (a tuple of booleans, one per lane) marks the lanes actually
    loaded; unset lanes read as 0.0 (AVX ``maskload`` semantics).  ``None``
    means a full unmasked load.
    """
    buffer: Buffer
    index: Affine
    width: int = 4
    mask: Optional[Tuple[bool, ...]] = None

    def __repr__(self) -> str:  # pragma: no cover
        m = "" if self.mask is None else f", mask={self.mask}"
        return f"vload({self.buffer.name}[{self.index}], {self.width}{m})"


@dataclass(frozen=True)
class VBroadcast(CExpr):
    """Broadcast a scalar value to all lanes."""
    value: CExpr
    width: int = 4

    def children(self) -> Tuple[CExpr, ...]:
        return (self.value,)

    def __repr__(self) -> str:  # pragma: no cover
        return f"vbroadcast({self.value!r})"


@dataclass(frozen=True)
class VSet(CExpr):
    """Build a vector from ``width`` scalar expressions (lane 0 first)."""
    elements: Tuple[CExpr, ...]

    @property
    def width(self) -> int:  # type: ignore[override]
        return len(self.elements)

    def children(self) -> Tuple[CExpr, ...]:
        return self.elements

    def __repr__(self) -> str:  # pragma: no cover
        return f"vset({', '.join(map(repr, self.elements))})"


@dataclass(frozen=True)
class VZero(CExpr):
    """An all-zero vector."""
    width: int = 4

    def __repr__(self) -> str:  # pragma: no cover
        return f"vzero({self.width})"


_SCALAR_OPS = ("add", "sub", "mul", "div", "max", "min")


@dataclass(frozen=True)
class BinOp(CExpr):
    """Scalar binary arithmetic."""
    op: str
    left: CExpr
    right: CExpr
    width: int = 1

    def __post_init__(self) -> None:
        if self.op not in _SCALAR_OPS:
            raise CIRError(f"invalid scalar op {self.op!r}")

    def children(self) -> Tuple[CExpr, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:  # pragma: no cover
        sym = {"add": "+", "sub": "-", "mul": "*", "div": "/"}.get(self.op,
                                                                   self.op)
        return f"({self.left!r} {sym} {self.right!r})"


@dataclass(frozen=True)
class UnOp(CExpr):
    """Scalar unary operation: ``neg`` or ``sqrt``."""
    op: str
    operand: CExpr
    width: int = 1

    def __post_init__(self) -> None:
        if self.op not in ("neg", "sqrt"):
            raise CIRError(f"invalid unary op {self.op!r}")

    def children(self) -> Tuple[CExpr, ...]:
        return (self.operand,)

    def __repr__(self) -> str:  # pragma: no cover
        return f"{self.op}({self.operand!r})"


@dataclass(frozen=True)
class VBinOp(CExpr):
    """Lane-wise vector arithmetic."""
    op: str
    left: CExpr
    right: CExpr
    width: int = 4

    def __post_init__(self) -> None:
        if self.op not in _SCALAR_OPS:
            raise CIRError(f"invalid vector op {self.op!r}")

    def children(self) -> Tuple[CExpr, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:  # pragma: no cover
        return f"v{self.op}({self.left!r}, {self.right!r})"


@dataclass(frozen=True)
class VFma(CExpr):
    """Fused multiply-add ``a * b + c`` (lane-wise)."""
    a: CExpr
    b: CExpr
    c: CExpr
    width: int = 4

    def children(self) -> Tuple[CExpr, ...]:
        return (self.a, self.b, self.c)

    def __repr__(self) -> str:  # pragma: no cover
        return f"vfma({self.a!r}, {self.b!r}, {self.c!r})"


@dataclass(frozen=True)
class VReduceAdd(CExpr):
    """Horizontal sum of all lanes; the result is a scalar."""
    vec: CExpr
    width: int = 1

    def children(self) -> Tuple[CExpr, ...]:
        return (self.vec,)

    def __repr__(self) -> str:  # pragma: no cover
        return f"vreduce_add({self.vec!r})"


@dataclass(frozen=True)
class VExtract(CExpr):
    """Extract lane ``lane`` of a vector as a scalar."""
    vec: CExpr
    lane: int
    width: int = 1

    def children(self) -> Tuple[CExpr, ...]:
        return (self.vec,)

    def __repr__(self) -> str:  # pragma: no cover
        return f"vextract({self.vec!r}, {self.lane})"


@dataclass(frozen=True)
class VBlend(CExpr):
    """AVX ``blend_pd`` semantics: lane i = b[i] if bit i of imm else a[i]."""
    a: CExpr
    b: CExpr
    imm: int
    width: int = 4

    def children(self) -> Tuple[CExpr, ...]:
        return (self.a, self.b)

    def __repr__(self) -> str:  # pragma: no cover
        return f"vblend({self.a!r}, {self.b!r}, {self.imm:#x})"


@dataclass(frozen=True)
class VShufflePd(CExpr):
    """AVX ``shuffle_pd`` on 256-bit double vectors.

    Within each 128-bit half h (0 or 1), lane 0 of the result half is
    ``a[2h + bit(2h)]`` and lane 1 is ``b[2h + bit(2h+1)]`` where ``bit(k)``
    is bit k of ``imm``.
    """
    a: CExpr
    b: CExpr
    imm: int
    width: int = 4

    def children(self) -> Tuple[CExpr, ...]:
        return (self.a, self.b)

    def __repr__(self) -> str:  # pragma: no cover
        return f"vshuffle_pd({self.a!r}, {self.b!r}, {self.imm:#x})"


@dataclass(frozen=True)
class VPermute2f128(CExpr):
    """AVX ``permute2f128_pd``: select 128-bit halves from two sources."""
    a: CExpr
    b: CExpr
    imm: int
    width: int = 4

    def children(self) -> Tuple[CExpr, ...]:
        return (self.a, self.b)

    def __repr__(self) -> str:  # pragma: no cover
        return f"vperm2f128({self.a!r}, {self.b!r}, {self.imm:#x})"


@dataclass(frozen=True)
class VUnpack(CExpr):
    """AVX ``unpacklo_pd`` (``high=False``) / ``unpackhi_pd`` (``high=True``)."""
    a: CExpr
    b: CExpr
    high: bool
    width: int = 4

    def children(self) -> Tuple[CExpr, ...]:
        return (self.a, self.b)

    def __repr__(self) -> str:  # pragma: no cover
        half = "hi" if self.high else "lo"
        return f"vunpack{half}({self.a!r}, {self.b!r})"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class CStmt:
    """Base class of C-IR statements."""


@dataclass
class Assign(CStmt):
    """Assign a value to a register variable (declaring it on first use)."""
    dest: Union[ScalarVar, VecVar]
    value: CExpr

    def __repr__(self) -> str:  # pragma: no cover
        return f"{self.dest!r} = {self.value!r};"


@dataclass
class Store(CStmt):
    """Scalar store ``buffer[index] = value``."""
    buffer: Buffer
    index: Affine
    value: CExpr

    def __repr__(self) -> str:  # pragma: no cover
        return f"{self.buffer.name}[{self.index}] = {self.value!r};"


@dataclass
class VStore(CStmt):
    """Vector store of ``width`` contiguous doubles (optionally masked)."""
    buffer: Buffer
    index: Affine
    value: CExpr
    width: int = 4
    mask: Optional[Tuple[bool, ...]] = None

    def __repr__(self) -> str:  # pragma: no cover
        m = "" if self.mask is None else f", mask={self.mask}"
        return f"vstore({self.buffer.name}[{self.index}], {self.value!r}{m});"


@dataclass
class For(CStmt):
    """Counted loop with constant bounds: ``for (var = start; var < stop; var += step)``."""
    var: str
    start: int
    stop: int
    step: int
    body: List[CStmt] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.step <= 0:
            raise CIRError("loop step must be positive")

    @property
    def trip_count(self) -> int:
        if self.stop <= self.start:
            return 0
        return (self.stop - self.start + self.step - 1) // self.step

    def iterations(self) -> range:
        return range(self.start, self.stop, self.step)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"for ({self.var} = {self.start}; {self.var} < {self.stop}; "
                f"{self.var} += {self.step}) {{ {len(self.body)} stmts }}")


@dataclass
class If(CStmt):
    """Conditional with an affine condition ``lhs <op> rhs``."""
    lhs: Affine
    op: str  # one of <, <=, ==, >=, >
    rhs: Affine
    then_body: List[CStmt] = field(default_factory=list)
    else_body: List[CStmt] = field(default_factory=list)

    VALID_OPS = ("<", "<=", "==", ">=", ">")

    def __post_init__(self) -> None:
        if self.op not in self.VALID_OPS:
            raise CIRError(f"invalid comparison {self.op!r}")

    def evaluate(self, bindings: Dict[str, int]) -> bool:
        lhs = self.lhs.evaluate(bindings)
        rhs = self.rhs.evaluate(bindings)
        return {"<": lhs < rhs, "<=": lhs <= rhs, "==": lhs == rhs,
                ">=": lhs >= rhs, ">": lhs > rhs}[self.op]


@dataclass
class Comment(CStmt):
    """A comment carried through to the emitted C code."""
    text: str

    def __repr__(self) -> str:  # pragma: no cover
        return f"// {self.text}"


# ---------------------------------------------------------------------------
# Function
# ---------------------------------------------------------------------------


@dataclass
class Function:
    """A complete C-IR function: parameters, local temporaries, body."""

    name: str
    params: List[Buffer] = field(default_factory=list)
    temps: List[Buffer] = field(default_factory=list)
    body: List[CStmt] = field(default_factory=list)
    vector_width: int = 1

    def buffers(self) -> List[Buffer]:
        return list(self.params) + list(self.temps)

    def buffer(self, name: str) -> Buffer:
        for buf in self.buffers():
            if buf.name == name:
                return buf
        raise CIRError(f"no buffer named {name!r} in function {self.name!r}")

    def walk_statements(self) -> Iterator[CStmt]:
        """Iterate all statements in the body, descending into For/If."""
        def visit(stmts: Sequence[CStmt]) -> Iterator[CStmt]:
            for stmt in stmts:
                yield stmt
                if isinstance(stmt, For):
                    yield from visit(stmt.body)
                elif isinstance(stmt, If):
                    yield from visit(stmt.then_body)
                    yield from visit(stmt.else_body)
        return visit(self.body)

    def statement_count(self) -> int:
        return sum(1 for _ in self.walk_statements())

    def __repr__(self) -> str:  # pragma: no cover
        return (f"Function({self.name}, {len(self.params)} params, "
                f"{len(self.temps)} temps, {self.statement_count()} stmts)")


def walk_expressions(stmt: CStmt) -> Iterator[CExpr]:
    """Iterate every expression appearing in a statement (not recursing into
    nested statements of For/If)."""
    if isinstance(stmt, Assign):
        yield from stmt.value.walk()
    elif isinstance(stmt, Store):
        yield from stmt.value.walk()
    elif isinstance(stmt, VStore):
        yield from stmt.value.walk()
    # For/If/Comment carry no value expressions of their own


__all__ = [
    "Affine", "Buffer", "CExpr", "FloatConst", "ScalarVar", "VecVar", "Load",
    "VLoad", "VBroadcast", "VSet", "VZero", "BinOp", "UnOp", "VBinOp", "VFma",
    "VReduceAdd", "VExtract", "VBlend", "VShufflePd", "VPermute2f128",
    "VUnpack", "CStmt", "Assign", "Store", "VStore", "For", "If", "Comment",
    "Function", "walk_expressions",
]
