"""Helpers for constructing C-IR functions.

The builder owns fresh-name generation for register variables, index
variables and temporary buffers, plus the mapping from LA operands to C-IR
buffers (including the ``ow(...)`` storage aliasing of the LA language:
operands that overwrite each other share one buffer).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..errors import CIRError
from ..ir.operands import Operand, View
from ..ir.program import Program
from .nodes import (Affine, Buffer, CExpr, Function, ScalarVar, VecVar)


class NameAllocator:
    """Generates unique names with a per-prefix counter."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}

    def fresh(self, prefix: str) -> str:
        count = self._counters.get(prefix, 0)
        self._counters[prefix] = count + 1
        return f"{prefix}{count}"


#: C reserved words a generated function must not be named after (the
#: Python side is covered by :func:`keyword.iskeyword`).
_C_KEYWORDS = frozenset("""
auto break case char const continue default do double else enum extern
float for goto if inline int long register restrict return short signed
sizeof static struct switch typedef union unsigned void volatile while
""".split())


def sanitize_identifier(name: str) -> str:
    """Coerce an arbitrary program name into a valid C/Python identifier.

    LA program names are free-form text (they come from the CLI, the HTTP
    service, and file names), but they end up as the generated kernel's
    function name in both the emitted C and the NumPy translation --
    ``potrf-4``, ``2stage`` or ``for`` would produce artifacts that do
    not compile (a fuzzer-found crash).  Invalid characters become
    ``_``, and a leading digit or a C/Python keyword is prefixed, so
    every name yields a compilable identifier while safe names pass
    through unchanged (keeping existing cache keys and artifacts
    stable).
    """
    import keyword

    cleaned = name
    if not cleaned.isidentifier():
        cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_"
                          for ch in cleaned)
    if not cleaned or cleaned[0].isdigit() \
            or keyword.iskeyword(cleaned) or cleaned in _C_KEYWORDS:
        cleaned = f"k_{cleaned}"
    return cleaned


class CIRBuilder:
    """Builds a :class:`~repro.cir.nodes.Function` for an LA program.

    The builder creates one parameter buffer per *storage group* of the
    program (operands related by ``ow(...)`` share storage, exactly like the
    generated C code shares one pointer for them) and provides fresh
    register/temporary names to the lowering code.
    """

    def __init__(self, program: Program, name: Optional[str] = None,
                 vector_width: int = 1):
        self.program = program
        self.names = NameAllocator()
        self.function = Function(
            name=sanitize_identifier(name or f"{program.name}_kernel"),
            vector_width=vector_width)
        self._operand_buffers: Dict[str, Buffer] = {}
        self._build_parameter_buffers()

    # -- buffers -------------------------------------------------------------

    def _build_parameter_buffers(self) -> None:
        groups = self.program.storage_groups()
        # Decide the kind of each storage group: if any member is an output,
        # the buffer is writable; if any member is a pure input (or an output
        # that overwrites an input), the buffer must also be readable.
        group_members: Dict[str, List[Operand]] = {}
        for name, leader in groups.items():
            group_members.setdefault(leader, []).append(
                self.program.operands[name])
        for leader, members in group_members.items():
            leader_op = self.program.operands[leader]
            has_input = any(m.is_input for m in members)
            has_output = any(m.is_output for m in members)
            if has_input and has_output:
                kind = "inout"
            elif has_output:
                kind = "out"
            else:
                kind = "in"
            buffer = Buffer(name=leader, rows=leader_op.rows,
                            cols=leader_op.cols, kind=kind)
            self.function.params.append(buffer)
            for member in members:
                self._operand_buffers[member.name] = buffer

    def buffer_for(self, operand: Operand) -> Buffer:
        """Return the buffer backing an operand (resolving ``ow`` aliasing)."""
        try:
            return self._operand_buffers[operand.name]
        except KeyError:
            raise CIRError(
                f"operand {operand.name!r} is not part of program "
                f"{self.program.name!r}")

    def temp_buffer(self, rows: int, cols: int, prefix: str = "tmp") -> Buffer:
        """Allocate a local temporary array buffer."""
        buffer = Buffer(name=self.names.fresh(prefix), rows=rows, cols=cols,
                        kind="temp")
        self.function.temps.append(buffer)
        return buffer

    def register_temp_operand(self, operand: Operand) -> Buffer:
        """Create (or reuse) a temp buffer backing a synthesized operand.

        Stage 2 introduces temporary operands when it binarizes long
        expressions (e.g. ``Y = F*P*F^T + Q``); those operands are backed by
        local arrays in the generated function.
        """
        if operand.name in self._operand_buffers:
            return self._operand_buffers[operand.name]
        buffer = Buffer(name=operand.name, rows=operand.rows,
                        cols=operand.cols, kind="temp")
        self.function.temps.append(buffer)
        self._operand_buffers[operand.name] = buffer
        return buffer

    # -- addressing -----------------------------------------------------------

    def address(self, view: View, row: Union[Affine, int, str] = 0,
                col: Union[Affine, int, str] = 0) -> Tuple[Buffer, Affine]:
        """Linear address of element (row, col) *within* a view.

        Returns the backing buffer and the affine linear index, taking the
        view offsets and the buffer's row-major leading dimension into
        account.
        """
        buffer = self.buffer_for(view.operand)
        index = buffer.index(Affine.of(row) + view.row_off,
                             Affine.of(col) + view.col_off)
        return buffer, index

    # -- fresh names ------------------------------------------------------------

    def scalar(self, prefix: str = "t") -> ScalarVar:
        return ScalarVar(self.names.fresh(prefix))

    def vector(self, width: int, prefix: str = "v") -> VecVar:
        return VecVar(self.names.fresh(prefix), width)

    def index_var(self, prefix: str = "i") -> str:
        return self.names.fresh(prefix)

    # -- finalization -------------------------------------------------------------

    def finish(self, body: List) -> Function:
        """Attach the body and return the completed function."""
        self.function.body = body
        return self.function
