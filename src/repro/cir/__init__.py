"""C-IR: C-like intermediate representation, passes and interpreter."""

from .builder import CIRBuilder, NameAllocator
from .interpreter import Interpreter, InterpreterKernel, run_function
from .nodes import (Affine, Assign, BinOp, Buffer, CExpr, Comment, CStmt,
                    FloatConst, For, Function, If, Load, ScalarVar, Store,
                    UnOp, VBinOp, VBlend, VBroadcast, VecVar, VExtract, VFma,
                    VLoad, VPermute2f128, VReduceAdd, VSet, VShufflePd, VStore,
                    VUnpack, VZero, walk_expressions)
from .passes import PassOptions, PassReport, run_pipeline

__all__ = [
    "CIRBuilder", "NameAllocator", "Interpreter", "InterpreterKernel",
    "run_function",
    "Affine", "Assign", "BinOp", "Buffer", "CExpr", "Comment", "CStmt",
    "FloatConst", "For", "Function", "If", "Load", "ScalarVar", "Store",
    "UnOp", "VBinOp", "VBlend", "VBroadcast", "VecVar", "VExtract", "VFma",
    "VLoad", "VPermute2f128", "VReduceAdd", "VSet", "VShufflePd", "VStore",
    "VUnpack", "VZero", "walk_expressions",
    "PassOptions", "PassReport", "run_pipeline",
]
