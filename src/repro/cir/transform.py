"""Generic bottom-up transformation utilities for C-IR trees.

Passes are expressed as functions over expressions/statements; this module
provides the structural recursion so each pass only has to deal with the
node kinds it cares about.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

from .nodes import (Affine, Assign, BinOp, CExpr, Comment, CStmt, FloatConst,
                    For, If, Load, ScalarVar, Store, UnOp, VBinOp, VBlend,
                    VBroadcast, VecVar, VExtract, VFma, VLoad, VPermute2f128,
                    VReduceAdd, VSet, VShufflePd, VStore, VUnpack, VZero)

ExprFn = Callable[[CExpr], CExpr]


def map_expression(expr: CExpr, fn: ExprFn) -> CExpr:
    """Rebuild ``expr`` bottom-up, applying ``fn`` to every node.

    ``fn`` receives a node whose children have already been transformed and
    returns the (possibly new) node.
    """
    if isinstance(expr, (FloatConst, ScalarVar, VecVar, Load, VLoad, VZero)):
        return fn(expr)
    if isinstance(expr, VBroadcast):
        return fn(dataclasses.replace(expr, value=map_expression(expr.value, fn)))
    if isinstance(expr, VSet):
        return fn(dataclasses.replace(
            expr, elements=tuple(map_expression(e, fn) for e in expr.elements)))
    if isinstance(expr, BinOp):
        return fn(dataclasses.replace(expr,
                                      left=map_expression(expr.left, fn),
                                      right=map_expression(expr.right, fn)))
    if isinstance(expr, UnOp):
        return fn(dataclasses.replace(expr,
                                      operand=map_expression(expr.operand, fn)))
    if isinstance(expr, VBinOp):
        return fn(dataclasses.replace(expr,
                                      left=map_expression(expr.left, fn),
                                      right=map_expression(expr.right, fn)))
    if isinstance(expr, VFma):
        return fn(dataclasses.replace(expr,
                                      a=map_expression(expr.a, fn),
                                      b=map_expression(expr.b, fn),
                                      c=map_expression(expr.c, fn)))
    if isinstance(expr, VReduceAdd):
        return fn(dataclasses.replace(expr, vec=map_expression(expr.vec, fn)))
    if isinstance(expr, VExtract):
        return fn(dataclasses.replace(expr, vec=map_expression(expr.vec, fn)))
    if isinstance(expr, (VBlend, VShufflePd, VPermute2f128, VUnpack)):
        return fn(dataclasses.replace(expr,
                                      a=map_expression(expr.a, fn),
                                      b=map_expression(expr.b, fn)))
    return fn(expr)


def map_statement_expressions(stmt: CStmt, fn: ExprFn) -> CStmt:
    """Apply ``fn`` (via :func:`map_expression`) to the value expressions of a
    single statement, returning a new statement.  Does not recurse into the
    bodies of ``For``/``If``."""
    if isinstance(stmt, Assign):
        return Assign(stmt.dest, map_expression(stmt.value, fn))
    if isinstance(stmt, Store):
        return Store(stmt.buffer, stmt.index, map_expression(stmt.value, fn))
    if isinstance(stmt, VStore):
        return VStore(stmt.buffer, stmt.index, map_expression(stmt.value, fn),
                      stmt.width, stmt.mask)
    return stmt


def transform_block(stmts: List[CStmt], expr_fn: Optional[ExprFn] = None,
                    index_subst: Optional[Dict[str, int]] = None) -> List[CStmt]:
    """Deep-copy a statement list applying an expression transform and/or an
    index-variable substitution.

    ``index_subst`` replaces index variables with constants in every affine
    index (loop unrolling uses this).
    """
    def fix_affine(affine: Affine) -> Affine:
        if not index_subst:
            return affine
        return affine.substitute(index_subst)

    def fix_expr(expr: CExpr) -> CExpr:
        if index_subst and isinstance(expr, Load):
            expr = dataclasses.replace(expr, index=fix_affine(expr.index))
        if index_subst and isinstance(expr, VLoad):
            expr = dataclasses.replace(expr, index=fix_affine(expr.index))
        if expr_fn is not None:
            expr = expr_fn(expr)
        return expr

    result: List[CStmt] = []
    for stmt in stmts:
        if isinstance(stmt, For):
            result.append(For(stmt.var, stmt.start, stmt.stop, stmt.step,
                              transform_block(stmt.body, expr_fn, index_subst)))
        elif isinstance(stmt, If):
            result.append(If(fix_affine(stmt.lhs), stmt.op, fix_affine(stmt.rhs),
                             transform_block(stmt.then_body, expr_fn,
                                             index_subst),
                             transform_block(stmt.else_body, expr_fn,
                                             index_subst)))
        elif isinstance(stmt, Store):
            new = Store(stmt.buffer, fix_affine(stmt.index),
                        map_expression(stmt.value, fix_expr))
            result.append(new)
        elif isinstance(stmt, VStore):
            new = VStore(stmt.buffer, fix_affine(stmt.index),
                         map_expression(stmt.value, fix_expr), stmt.width,
                         stmt.mask)
            result.append(new)
        elif isinstance(stmt, Assign):
            result.append(Assign(stmt.dest,
                                 map_expression(stmt.value, fix_expr)))
        elif isinstance(stmt, Comment):
            result.append(Comment(stmt.text))
        else:
            result.append(stmt)
    return result
