"""C-IR optimization passes (Stage 3 of SLinGen).

The default pipeline mirrors the paper's code-level optimizations:

1. loop unrolling of small innermost loops,
2. scalar replacement / redundant-load elimination,
3. the domain-specific load/store analysis (store->load forwarding via
   register blends/shuffles),
4. algebraic simplification,
5. dead code elimination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..nodes import Function
from .cse import eliminate_redundant_loads
from .dce import eliminate_dead_code
from .loadstore import LoadStoreStats, forward_stores_to_loads
from .simplify import simplify
from .unroll import unroll_loops


@dataclass
class PassOptions:
    """Configuration of the Stage-3 pass pipeline."""

    unroll: bool = True
    max_unroll_trip_count: int = 8
    max_unroll_body: int = 64
    scalar_replacement: bool = True
    load_store_analysis: bool = True
    dead_code_elimination: bool = True
    algebraic_simplification: bool = True


@dataclass
class PassReport:
    """What the pipeline did (consumed by tests, EXPERIMENTS.md and ablations)."""

    load_store: LoadStoreStats = field(default_factory=LoadStoreStats)
    statements_before: int = 0
    statements_after: int = 0


def run_pipeline(function: Function,
                 options: Optional[PassOptions] = None) -> PassReport:
    """Run the Stage-3 pass pipeline on ``function`` in place."""
    options = options or PassOptions()
    report = PassReport()
    report.statements_before = function.statement_count()

    body = function.body
    if options.algebraic_simplification:
        body = simplify(body)
    if options.unroll:
        body = unroll_loops(body, options.max_unroll_trip_count,
                            options.max_unroll_body)
    if options.scalar_replacement:
        body = eliminate_redundant_loads(body)
    if options.load_store_analysis:
        body, report.load_store = forward_stores_to_loads(body)
    if options.algebraic_simplification:
        body = simplify(body)
    if options.dead_code_elimination:
        body = eliminate_dead_code(body)

    function.body = body
    report.statements_after = function.statement_count()
    return report


__all__ = [
    "PassOptions", "PassReport", "run_pipeline", "unroll_loops", "simplify",
    "eliminate_redundant_loads", "eliminate_dead_code",
    "forward_stores_to_loads", "LoadStoreStats",
]
