"""Scalar replacement / redundant-load elimination.

Within every straight-line region, loads (scalar or vector) of the same
address that are executed more than once are replaced by a register that is
loaded once -- the "scalar replacement" of LGen/SLinGen's code-level
optimizations.  A store to a buffer conservatively invalidates all cached
loads from that buffer; loop and branch boundaries invalidate everything.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..nodes import (Assign, CExpr, CStmt, For, If, Load, ScalarVar, Store,
                     VecVar, VLoad, VStore)
from ..transform import map_statement_expressions


class _Counter:
    """Allocates register names for the pass (kept distinct from builder names)."""

    def __init__(self) -> None:
        self.count = 0

    def scalar(self) -> ScalarVar:
        self.count += 1
        return ScalarVar(f"sr_s{self.count}")

    def vector(self, width: int) -> VecVar:
        self.count += 1
        return VecVar(f"sr_v{self.count}", width)


def _load_key(expr: CExpr):
    """A hashable key identifying a load's address, or None."""
    if isinstance(expr, Load):
        return ("load", expr.buffer.name, expr.index)
    if isinstance(expr, VLoad):
        return ("vload", expr.buffer.name, expr.index, expr.width, expr.mask)
    return None


def _count_loads(stmts: List[CStmt]) -> Dict[Tuple, int]:
    """Count load occurrences in a straight-line block (no recursion)."""
    from ..nodes import walk_expressions
    counts: Dict[Tuple, int] = {}
    for stmt in stmts:
        if isinstance(stmt, (For, If)):
            continue
        for expr in walk_expressions(stmt):
            key = _load_key(expr)
            if key is not None:
                counts[key] = counts.get(key, 0) + 1
    return counts


def eliminate_redundant_loads(stmts: List[CStmt],
                              _counter: _Counter | None = None) -> List[CStmt]:
    """Replace repeated loads of the same address with a single register load."""
    counter = _counter or _Counter()
    counts = _count_loads(stmts)
    available: Dict[Tuple, CExpr] = {}
    result: List[CStmt] = []

    def invalidate_buffer(buffer_name: str) -> None:
        for key in list(available):
            if key[1] == buffer_name:
                del available[key]

    for stmt in stmts:
        if isinstance(stmt, For):
            available.clear()
            result.append(For(stmt.var, stmt.start, stmt.stop, stmt.step,
                              eliminate_redundant_loads(stmt.body, counter)))
            continue
        if isinstance(stmt, If):
            available.clear()
            result.append(If(stmt.lhs, stmt.op, stmt.rhs,
                             eliminate_redundant_loads(stmt.then_body, counter),
                             eliminate_redundant_loads(stmt.else_body, counter)))
            continue

        pending: List[CStmt] = []

        def replace(expr: CExpr) -> CExpr:
            key = _load_key(expr)
            if key is None:
                return expr
            if key in available:
                return available[key]
            if counts.get(key, 0) >= 2:
                reg = (counter.vector(expr.width) if isinstance(expr, VLoad)
                       else counter.scalar())
                pending.append(Assign(reg, expr))
                available[key] = reg
                return reg
            return expr

        new_stmt = map_statement_expressions(stmt, replace)
        result.extend(pending)
        result.append(new_stmt)

        if isinstance(new_stmt, (Store, VStore)):
            invalidate_buffer(new_stmt.buffer.name)

    return result
