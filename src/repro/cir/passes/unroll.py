"""Loop unrolling pass.

SLinGen unrolls the innermost loops produced by the sBLAC tiling (paper
Sec. 3.3, "code-level optimizations ... such as loop unrolling and scalar
replacement").  Unrolling is what exposes the straight-line store/load
sequences that the Stage-3 load/store analysis turns into register
shuffles/blends.

The pass replaces any ``For`` whose trip count does not exceed a threshold
by its unrolled body, substituting the induction variable with its constant
value in every affine index.
"""

from __future__ import annotations

from typing import List

from ..nodes import CStmt, For, If
from ..transform import transform_block


def unroll_loops(stmts: List[CStmt], max_trip_count: int = 8,
                 max_body_statements: int = 64) -> List[CStmt]:
    """Unroll loops with small, known trip counts.

    Parameters
    ----------
    max_trip_count:
        Loops with more iterations than this are kept.
    max_body_statements:
        Safety valve: loops whose unrolled size would exceed this many
        statements are kept even if the trip count is small.
    """
    result: List[CStmt] = []
    for stmt in stmts:
        if isinstance(stmt, For):
            body = unroll_loops(stmt.body, max_trip_count,
                                max_body_statements)
            trip = stmt.trip_count
            if (trip <= max_trip_count
                    and trip * len(body) <= max_body_statements):
                for value in stmt.iterations():
                    result.extend(transform_block(body,
                                                  index_subst={stmt.var: value}))
            else:
                result.append(For(stmt.var, stmt.start, stmt.stop, stmt.step,
                                  body))
        elif isinstance(stmt, If):
            result.append(If(stmt.lhs, stmt.op, stmt.rhs,
                             unroll_loops(stmt.then_body, max_trip_count,
                                          max_body_statements),
                             unroll_loops(stmt.else_body, max_trip_count,
                                          max_body_statements)))
        else:
            result.append(stmt)
    return result
