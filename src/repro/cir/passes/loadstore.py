"""Domain-specific load/store analysis (paper Sec. 3.3, Figs. 11-12).

Goal: replace explicit memory round-trips (a store followed by a load of the
same locations) by data rearrangement between vector registers.  In the
paper's example, two masked stores followed by two masked loads and a
shuffle become two ``blend`` instructions and one shuffle -- no memory
traffic at all.

The pass tracks, per straight-line region and with constant addresses only,
which register (and lane) last wrote every buffer element.  A later vector
load whose lanes are all known is then rebuilt from registers:

* all lanes come from one register with matching lane positions -> that
  register is used directly;
* the lanes come from two registers, each in its original lane position ->
  a single ``VBlend``;
* otherwise -> a ``VSet`` of per-lane extracts (still cheaper than a
  round-trip through L1 on the modeled machine only when few lanes are
  needed, so this fallback is only applied for masked loads).

Stores themselves are kept: the buffer may be a function output.  Dead
temporary stores are cleaned up by later passes when provably unused.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..nodes import (Assign, CExpr, CStmt, FloatConst, For, If, Load,
                     ScalarVar, Store, VBlend, VecVar, VExtract, VLoad, VSet,
                     VStore)
from ..transform import map_statement_expressions


@dataclass
class LoadStoreStats:
    """Statistics reported by the analysis (used by tests and EXPERIMENTS)."""

    forwarded_full: int = 0       # loads replaced by a single register
    forwarded_blend: int = 0      # loads replaced by a blend of two registers
    forwarded_gather: int = 0     # masked loads rebuilt from lane extracts
    forwarded_scalar: int = 0     # scalar loads replaced by a register value

    @property
    def total(self) -> int:
        return (self.forwarded_full + self.forwarded_blend
                + self.forwarded_gather + self.forwarded_scalar)


class _MemoryModel:
    """Tracks the last known register value of buffer elements."""

    def __init__(self) -> None:
        # (buffer name, element index) -> scalar-valued expression
        self.elements: Dict[Tuple[str, int], CExpr] = {}
        # (buffer name, base index) -> (vector register, mask)
        self.vectors: Dict[Tuple[str, int], Tuple[VecVar, Tuple[bool, ...]]] = {}

    def kill_buffer(self, name: str) -> None:
        self.elements = {k: v for k, v in self.elements.items() if k[0] != name}
        self.vectors = {k: v for k, v in self.vectors.items() if k[0] != name}

    def kill_register(self, reg_name: str) -> None:
        def references(expr: CExpr) -> bool:
            return any(isinstance(e, (ScalarVar, VecVar)) and e.name == reg_name
                       for e in expr.walk())
        self.elements = {k: v for k, v in self.elements.items()
                         if not references(v)}
        self.vectors = {k: (r, m) for k, (r, m) in self.vectors.items()
                        if r.name != reg_name}

    def record_scalar_store(self, buffer: str, index: int, value: CExpr) -> None:
        if isinstance(value, (ScalarVar, FloatConst, VExtract)):
            self.elements[(buffer, index)] = value
        else:
            self.elements.pop((buffer, index), None)
        # A scalar store into the middle of a tracked vector invalidates it.
        for (buf, base), (_, mask) in list(self.vectors.items()):
            if buf == buffer and base <= index < base + len(mask):
                del self.vectors[(buf, base)]

    def record_vector_store(self, buffer: str, base: int, value: CExpr,
                            width: int, mask: Optional[Tuple[bool, ...]]) -> None:
        mask = mask if mask is not None else (True,) * width
        if isinstance(value, VecVar):
            self.vectors[(buffer, base)] = (value, mask)
            for lane, keep in enumerate(mask):
                if keep:
                    self.elements[(buffer, base + lane)] = VExtract(value, lane)
        else:
            for lane, keep in enumerate(mask):
                if keep:
                    self.elements.pop((buffer, base + lane), None)
            self.vectors.pop((buffer, base), None)


def _try_rebuild_vload(load: VLoad, model: _MemoryModel,
                       stats: LoadStoreStats) -> Optional[CExpr]:
    if not load.index.is_constant:
        return None
    base = load.index.value()
    mask = load.mask if load.mask is not None else (True,) * load.width
    wanted = [lane for lane, keep in enumerate(mask) if keep]

    # Fast path: a full vector register stored at the same base address.
    key = (load.buffer.name, base)
    if key in model.vectors:
        reg, stored_mask = model.vectors[key]
        if all(stored_mask[lane] for lane in wanted) and reg.width == load.width:
            stats.forwarded_full += 1
            return reg

    # Lane-wise reconstruction.
    lane_exprs: Dict[int, CExpr] = {}
    for lane in wanted:
        expr = model.elements.get((load.buffer.name, base + lane))
        if expr is None:
            return None
        lane_exprs[lane] = expr

    # Blend pattern: every lane is VExtract(reg, lane) from at most two regs.
    regs: List[str] = []
    aligned = True
    for lane, expr in lane_exprs.items():
        if isinstance(expr, VExtract) and isinstance(expr.vec, VecVar) \
                and expr.lane == lane:
            if expr.vec.name not in regs:
                regs.append(expr.vec.name)
        else:
            aligned = False
            break
    if aligned and 1 <= len(regs) <= 2:
        reg_a = VecVar(regs[0], load.width)
        if len(regs) == 1:
            stats.forwarded_full += 1
            return reg_a
        reg_b = VecVar(regs[1], load.width)
        imm = 0
        for lane, expr in lane_exprs.items():
            assert isinstance(expr, VExtract)
            if isinstance(expr.vec, VecVar) and expr.vec.name == regs[1]:
                imm |= 1 << lane
        stats.forwarded_blend += 1
        return VBlend(reg_a, reg_b, imm, load.width)

    # Gather fallback -- only worthwhile for masked (partial) loads.
    if load.mask is not None:
        elements = tuple(lane_exprs.get(lane, FloatConst(0.0))
                         for lane in range(load.width))
        stats.forwarded_gather += 1
        return VSet(elements)
    return None


def forward_stores_to_loads(stmts: List[CStmt],
                            stats: Optional[LoadStoreStats] = None
                            ) -> Tuple[List[CStmt], LoadStoreStats]:
    """Run the load/store analysis on a statement list.

    Returns the rewritten statements and the replacement statistics.
    """
    stats = stats if stats is not None else LoadStoreStats()
    model = _MemoryModel()
    assigned: set = set()
    result: List[CStmt] = []

    for stmt in stmts:
        if isinstance(stmt, For):
            body, _ = forward_stores_to_loads(stmt.body, stats)
            model = _MemoryModel()   # conservative across the loop
            result.append(For(stmt.var, stmt.start, stmt.stop, stmt.step, body))
            continue
        if isinstance(stmt, If):
            then_body, _ = forward_stores_to_loads(stmt.then_body, stats)
            else_body, _ = forward_stores_to_loads(stmt.else_body, stats)
            model = _MemoryModel()
            result.append(If(stmt.lhs, stmt.op, stmt.rhs, then_body, else_body))
            continue

        def replace(expr: CExpr) -> CExpr:
            if isinstance(expr, VLoad):
                rebuilt = _try_rebuild_vload(expr, model, stats)
                if rebuilt is not None:
                    return rebuilt
            elif isinstance(expr, Load) and expr.index.is_constant:
                known = model.elements.get((expr.buffer.name,
                                            expr.index.value()))
                if known is not None and isinstance(known,
                                                    (ScalarVar, FloatConst,
                                                     VExtract)):
                    stats.forwarded_scalar += 1
                    return known
            return expr

        new_stmt = map_statement_expressions(stmt, replace)

        if isinstance(new_stmt, Assign):
            if new_stmt.dest.name in assigned:
                model.kill_register(new_stmt.dest.name)
            assigned.add(new_stmt.dest.name)
        elif isinstance(new_stmt, Store):
            if new_stmt.index.is_constant:
                model.record_scalar_store(new_stmt.buffer.name,
                                          new_stmt.index.value(),
                                          new_stmt.value)
            else:
                model.kill_buffer(new_stmt.buffer.name)
        elif isinstance(new_stmt, VStore):
            if new_stmt.index.is_constant:
                model.record_vector_store(new_stmt.buffer.name,
                                          new_stmt.index.value(),
                                          new_stmt.value, new_stmt.width,
                                          new_stmt.mask)
            else:
                model.kill_buffer(new_stmt.buffer.name)

        result.append(new_stmt)

    return result, stats
