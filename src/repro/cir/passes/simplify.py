"""Algebraic simplification of C-IR expressions.

Removes the identities that the mechanical sBLAC lowering tends to produce
(`x + 0`, `x * 1`, blends with trivial immediates, vector ops against a zero
vector, empty loops, ...).  Running this before the machine-model analysis
avoids counting instructions a C compiler would never emit.
"""

from __future__ import annotations

from typing import List

from ..nodes import (BinOp, CExpr, CStmt, FloatConst, For, If, UnOp, VBinOp,
                     VBlend, VZero)
from ..transform import transform_block


def _is_zero(expr: CExpr) -> bool:
    return (isinstance(expr, FloatConst) and expr.value == 0.0) or \
        isinstance(expr, VZero)


def _is_one(expr: CExpr) -> bool:
    return isinstance(expr, FloatConst) and expr.value == 1.0


def simplify_expression(expr: CExpr) -> CExpr:
    """Apply local algebraic identities to a single node (children already
    simplified by the bottom-up driver)."""
    if isinstance(expr, BinOp):
        left, right = expr.left, expr.right
        if isinstance(left, FloatConst) and isinstance(right, FloatConst):
            value = {"add": left.value + right.value,
                     "sub": left.value - right.value,
                     "mul": left.value * right.value}.get(expr.op)
            if value is not None:
                return FloatConst(value)
            if expr.op == "div" and right.value != 0.0:
                return FloatConst(left.value / right.value)
        if expr.op == "add":
            if _is_zero(left):
                return right
            if _is_zero(right):
                return left
        if expr.op == "sub" and _is_zero(right):
            return left
        if expr.op == "mul":
            if _is_one(left):
                return right
            if _is_one(right):
                return left
            if _is_zero(left) or _is_zero(right):
                return FloatConst(0.0)
        if expr.op == "div" and _is_one(right):
            return left
    if isinstance(expr, UnOp) and expr.op == "neg":
        if isinstance(expr.operand, FloatConst):
            return FloatConst(-expr.operand.value)
    if isinstance(expr, VBinOp):
        left, right = expr.left, expr.right
        if expr.op == "add":
            if _is_zero(left):
                return right
            if _is_zero(right):
                return left
        if expr.op == "sub" and _is_zero(right):
            return left
        if expr.op == "mul" and (_is_zero(left) or _is_zero(right)):
            return VZero(expr.width)
    if isinstance(expr, VBlend):
        lane_mask = (1 << expr.width) - 1
        if expr.imm & lane_mask == 0:
            return expr.a
        if expr.imm & lane_mask == lane_mask:
            return expr.b
    return expr


def simplify(stmts: List[CStmt]) -> List[CStmt]:
    """Simplify expressions everywhere and drop empty loops/branches."""
    simplified = transform_block(stmts, expr_fn=simplify_expression)
    result: List[CStmt] = []
    for stmt in simplified:
        if isinstance(stmt, For):
            body = simplify(stmt.body)
            if body and stmt.trip_count > 0:
                result.append(For(stmt.var, stmt.start, stmt.stop, stmt.step,
                                  body))
        elif isinstance(stmt, If):
            then_body = simplify(stmt.then_body)
            else_body = simplify(stmt.else_body)
            if then_body or else_body:
                result.append(If(stmt.lhs, stmt.op, stmt.rhs, then_body,
                                 else_body))
        else:
            result.append(stmt)
    return result
