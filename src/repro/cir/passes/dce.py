"""Dead code elimination: remove register assignments whose value is never used.

Stores to buffers are always considered live (buffers can be function
outputs or carry values across loop iterations).  The pass iterates to a
fixpoint so that chains of dead assignments disappear entirely.
"""

from __future__ import annotations

from typing import List, Set

from ..nodes import (Assign, CStmt, For, If, ScalarVar, VecVar,
                     walk_expressions)


def _collect_used_registers(stmts: List[CStmt], used: Set[str]) -> None:
    for stmt in stmts:
        if isinstance(stmt, For):
            _collect_used_registers(stmt.body, used)
            continue
        if isinstance(stmt, If):
            _collect_used_registers(stmt.then_body, used)
            _collect_used_registers(stmt.else_body, used)
            continue
        for expr in walk_expressions(stmt):
            if isinstance(expr, (ScalarVar, VecVar)):
                used.add(expr.name)


def _remove_dead(stmts: List[CStmt], used: Set[str]) -> List[CStmt]:
    result: List[CStmt] = []
    for stmt in stmts:
        if isinstance(stmt, Assign) and stmt.dest.name not in used:
            continue
        if isinstance(stmt, For):
            result.append(For(stmt.var, stmt.start, stmt.stop, stmt.step,
                              _remove_dead(stmt.body, used)))
            continue
        if isinstance(stmt, If):
            result.append(If(stmt.lhs, stmt.op, stmt.rhs,
                             _remove_dead(stmt.then_body, used),
                             _remove_dead(stmt.else_body, used)))
            continue
        result.append(stmt)
    return result


def _count_statements(stmts: List[CStmt]) -> int:
    total = 0
    for stmt in stmts:
        total += 1
        if isinstance(stmt, For):
            total += _count_statements(stmt.body)
        elif isinstance(stmt, If):
            total += _count_statements(stmt.then_body)
            total += _count_statements(stmt.else_body)
    return total


def eliminate_dead_code(stmts: List[CStmt], max_iterations: int = 10) -> List[CStmt]:
    """Remove assignments to registers that are never read (to a fixpoint).

    Note: register reads *inside* the assignment being considered do not keep
    it alive; liveness is computed from all other statements.  Because the
    builder generates fresh names, self-referential accumulator updates inside
    loops still count as uses via the following iteration's read, which this
    conservative whole-function analysis keeps alive.
    """
    current = stmts
    for _ in range(max_iterations):
        used: Set[str] = set()
        _collect_used_registers(current, used)
        new = _remove_dead(current, used)
        if _count_statements(new) == _count_statements(current):
            return new
        current = new
    return current
