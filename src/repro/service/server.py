"""The kernel-service HTTP daemon: generation and execution over JSON.

``python -m repro.service serve`` turns one :class:`KernelService` into a
long-running process speaking plain HTTP/JSON -- stdlib only
(``http.server.ThreadingHTTPServer``), so it runs anywhere the generator
does.  Endpoints:

``GET /healthz``
    Liveness: ``{"status": "ok", "uptime_s": ...}``; always served, even
    when the worker admission limit is saturated.
``GET /stats``
    ``{"server": ..., "service": ServiceStats.snapshot(), "store":
    store.stats(), "shards": per-shard accounting when available}``.
``POST /generate``
    Body addresses a program either by registry spec (``{"spec":
    "potrf:4"}``) or by raw LA source (``{"source": "...", "constants":
    {"n": 8}, "name": ..., "nominal_flops": ...}``); optional ``"scalar":
    true`` generates without vectorization.  Answer carries the content
    key, hit/coalesced/tuned flags, the emitted C, and the performance
    estimate.
``POST /run``
    Same program addressing plus ``"backend"`` (``numpy`` default, or
    ``interpreter``/``compiled``), optional ``"inputs"`` (operand name ->
    nested lists; missing operands are synthesized from ``"seed"``).
    Executes the kernel and returns the outputs as nested lists.

Concurrency: every request is handled on its own thread; identical
concurrent ``/generate`` misses coalesce into one pipeline run via the
service's single-flight layer.  A bounded admission semaphore caps how
many POSTs generate/execute at once -- beyond it the daemon answers
``503 {"error": "server busy", ...}`` immediately instead of queueing
unboundedly, so a load spike degrades to fast retries, not to memory
exhaustion.  ``KernelServer.shutdown()`` (or SIGINT/SIGTERM under the
CLI) stops accepting connections, lets in-flight handlers finish, and
returns from :meth:`KernelServer.serve_forever`.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional

import numpy as np

from ..errors import ReproError, ServiceError
from .service import GenerationRequest, KernelService, ServiceResponse

#: Largest accepted request body; a generation request is a few KB of LA
#: source at most, and /run inputs for paper-sized operands are well under
#: this.  Bounding it keeps a misbehaving client from ballooning the
#: process.
MAX_BODY_BYTES = 8 * 1024 * 1024

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8177


def _request_from_body(doc: Dict[str, object],
                       options) -> GenerationRequest:
    """Build a service request from a /generate or /run JSON body."""
    spec = doc.get("spec")
    source = doc.get("source")
    if (spec is None) == (source is None):
        raise ServiceError(
            "request body must name a program via exactly one of "
            "'spec' (registry workload, e.g. \"potrf:4\") or "
            "'source' (raw LA text)")
    if spec is not None:
        from .registry import make_request
        return make_request(str(spec), options=options)
    constants = doc.get("constants") or {}
    if not isinstance(constants, dict):
        raise ServiceError("'constants' must be an object of name -> int")
    nominal = doc.get("nominal_flops")
    try:
        sizes = {str(k): int(v) for k, v in constants.items()}
        flops = float(nominal) if nominal is not None else None
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"bad 'constants'/'nominal_flops' value: {exc}")
    return GenerationRequest.from_source(
        str(source), sizes,
        name=str(doc.get("name") or "la_program"),
        options=options, nominal_flops=flops)


def _effective_request_options(service: KernelService,
                               doc: Dict[str, object]):
    """Per-request option overrides (currently just ``scalar``)."""
    if doc.get("scalar"):
        import dataclasses
        return dataclasses.replace(service.options, vectorize=False)
    return None


def _response_doc(response: ServiceResponse,
                  include_code: bool = True) -> Dict[str, object]:
    perf = response.result.performance
    doc: Dict[str, object] = {
        "key": response.key,
        "label": response.label,
        "cache_hit": response.cache_hit,
        "coalesced": response.coalesced,
        "tuned": response.tuned,
        "verified": response.verified,
        "latency_s": response.latency_s,
        "variant": response.result.variant_label,
        "performance": {
            "cycles": perf.cycles,
            "flops_per_cycle": perf.flops_per_cycle,
            "bottleneck": perf.bottleneck,
        },
    }
    if include_code:
        doc["c_code"] = response.result.c_code
    return doc


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the owning :class:`KernelServer`.

    The server instance is reached through ``self.server.kernel_server``
    (one handler instance exists per connection, on its own thread).
    """

    server_version = "repro-kernel-service/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------------

    @property
    def kernel_server(self) -> "KernelServer":
        return self.server.kernel_server  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:
        if not self.kernel_server.quiet:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _send_json(self, status: int, doc: Dict[str, object]) -> None:
        body = json.dumps(doc).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body_length(self) -> Optional[int]:
        """The validated Content-Length, or None when the header is
        malformed or negative.  Never trust it blindly: a negative value
        fed to ``rfile.read`` would block until EOF, pinning the handler
        thread (and its admission slot) forever."""
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            return None
        return length if length >= 0 else None

    def _discard_body(self) -> None:
        """Drain an unprocessed request body so HTTP/1.1 keep-alive stays
        framed (a reply sent with body bytes still on the socket would make
        the next request on the connection parse mid-payload).  Oversized
        or unframeable bodies are not drained; the connection is closed
        instead."""
        length = self._body_length()
        if length is None or length > MAX_BODY_BYTES:
            self.close_connection = True
        elif length:
            self.rfile.read(length)

    def _read_json(self) -> Dict[str, object]:
        length = self._body_length()
        if length is None:
            self.close_connection = True
            raise ServiceError("invalid Content-Length header")
        if length > MAX_BODY_BYTES:
            self.close_connection = True
            raise ServiceError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit")
        raw = self.rfile.read(length) if length else b""
        try:
            doc = json.loads(raw.decode("utf-8") or "{}")
        except (UnicodeDecodeError, ValueError):
            raise ServiceError("request body is not valid JSON")
        if not isinstance(doc, dict):
            raise ServiceError("request body must be a JSON object")
        return doc

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            self._send_json(200, self.kernel_server.health_doc())
        elif path == "/stats":
            self._send_json(200, self.kernel_server.stats_doc())
        else:
            self._send_json(404, {"error": f"no such endpoint: {path}",
                                  "endpoints": ["/healthz", "/stats",
                                                "/generate", "/run"]})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path not in ("/generate", "/run"):
            self._discard_body()
            self._send_json(404, {"error": f"no such endpoint: {path}",
                                  "endpoints": ["/healthz", "/stats",
                                                "/generate", "/run"]})
            return
        server = self.kernel_server
        if not server.admit():
            self._discard_body()
            self._send_json(503, {
                "error": "server busy",
                "max_inflight": server.max_inflight,
                "retry_after_s": 0.05,
            })
            return
        try:
            doc = self._read_json()
            if path == "/generate":
                answer = server.handle_generate(doc)
            else:
                answer = server.handle_run(doc)
            self._send_json(200, answer)
        except ReproError as exc:
            self._send_json(400, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
        finally:
            server.release()


class KernelServer:
    """A :class:`KernelService` wrapped in a threaded HTTP daemon.

    ``port=0`` binds an ephemeral port (read it back from :attr:`port`),
    which is what the tests and the in-process example use.
    ``max_inflight`` bounds concurrently *admitted* POST work; GETs
    (health, stats) are never gated so monitoring keeps working under
    load.

    ``listen_socket`` adopts an already-bound, already-listening socket
    instead of binding one -- the pre-forked worker pool
    (:mod:`repro.service.pool`) binds once in the parent and every
    worker process serves the inherited socket, so the kernel balances
    accepted connections across workers.  ``worker_info`` (e.g.
    ``{"index": 2, "pid": 4242}``) is stamped into ``/healthz`` and
    ``/stats`` answers so a client can tell which pool member answered.
    """

    def __init__(self, service: Optional[KernelService] = None,
                 host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
                 max_inflight: int = 8, quiet: bool = False,
                 listen_socket=None,
                 worker_info: Optional[Dict[str, object]] = None):
        if max_inflight < 1:
            raise ServiceError(
                f"max_inflight must be >= 1, got {max_inflight}")
        self.service = service if service is not None else KernelService()
        self.max_inflight = max_inflight
        self.quiet = quiet
        self.worker_info = dict(worker_info) if worker_info else None
        # Monotonic clock: uptime must not jump (or go negative) when NTP
        # steps the wall clock.
        self.started_at = time.monotonic()
        self.rejected = 0
        self._admission = threading.BoundedSemaphore(max_inflight)
        self._reject_lock = threading.Lock()
        if listen_socket is not None:
            # Adopt: construct without binding, swap the socket in, and
            # fill the fields server_bind would have set.  getfqdn is
            # deliberately avoided (it can stall on DNS in a worker).
            address = listen_socket.getsockname()
            self.httpd = ThreadingHTTPServer(
                address[:2], _Handler, bind_and_activate=False)
            self.httpd.socket.close()
            self.httpd.socket = listen_socket
            self.httpd.server_address = address[:2]
            self.httpd.server_name = str(address[0])
            self.httpd.server_port = int(address[1])
        else:
            self.httpd = ThreadingHTTPServer((host, port), _Handler)
        # Non-daemon handler threads: server_close() joins them, so the
        # graceful-shutdown promise (in-flight requests finish) is real
        # rather than racing process exit.
        self.httpd.daemon_threads = False
        self.httpd.kernel_server = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    # -- addressing ----------------------------------------------------------

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- admission -----------------------------------------------------------

    def admit(self) -> bool:
        """Try to take one worker slot; False answers 503."""
        if self._admission.acquire(blocking=False):
            return True
        with self._reject_lock:
            self.rejected += 1
        return False

    def release(self) -> None:
        self._admission.release()

    # -- endpoint bodies -----------------------------------------------------

    def health_doc(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "status": "ok",
            "uptime_s": time.monotonic() - self.started_at,
            "max_inflight": self.max_inflight}
        if self.worker_info is not None:
            doc["worker"] = self.worker_info
        return doc

    def stats_doc(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "server": {
                "uptime_s": time.monotonic() - self.started_at,
                "max_inflight": self.max_inflight,
                "rejected": self.rejected,
            },
            "service": self.service.stats.snapshot(),
        }
        if self.worker_info is not None:
            # Pre-forked pool: counters above are *this worker's*.  The
            # kernel balances accepted connections, so repeated GETs
            # sample the pool; sum per-pid samples for pool totals.
            doc["worker"] = self.worker_info
        leases = getattr(self.service, "leases", None)
        if leases is not None:
            doc["leases"] = leases.stats()
        store = self.service.store
        shard_stats = getattr(store, "shard_stats", None)
        if callable(shard_stats):
            # One disk scan serves both the store summary and the
            # per-shard breakdown.
            shards = shard_stats()
            doc["shards"] = shards
            doc["store"] = store.stats(shard_stats=shards)
        else:
            doc["store"] = store.stats()
        return doc

    def handle_generate(self, doc: Dict[str, object]) -> Dict[str, object]:
        options = _effective_request_options(self.service, doc)
        request = _request_from_body(doc, options)
        response = self.service.generate(request)
        return _response_doc(
            response, include_code=bool(doc.get("include_code", True)))

    def handle_run(self, doc: Dict[str, object]) -> Dict[str, object]:
        backend = str(doc.get("backend") or "numpy")
        options = _effective_request_options(self.service, doc)
        request = _request_from_body(doc, options)
        response = self.service.generate(request)
        kernel = response.kernel(backend)
        function = response.result.function
        inputs = self._materialize_inputs(function, doc)
        outputs = kernel.run(inputs)
        # The kernel also surfaces internal scratch buffers as writable
        # params; answer only with the LA program's declared outputs.
        from ..ir.operands import IOType
        declared = {name for name, op in request.program.operands.items()
                    if op.io in (IOType.OUT, IOType.INOUT)}
        visible = {name: value for name, value in outputs.items()
                   if name in declared} or outputs
        answer = _response_doc(response, include_code=False)
        answer["backend"] = backend
        answer["outputs"] = {name: np.asarray(value).tolist()
                             for name, value in sorted(visible.items())}
        return answer

    def _materialize_inputs(self, function, doc: Dict[str, object]
                            ) -> Dict[str, np.ndarray]:
        """The kernel's input arrays: client-supplied where given,
        synthesized (seeded, numerically well-posed) otherwise."""
        from ..tuning.measure import synthesize_inputs
        raw_seed = doc.get("seed")
        try:
            seed = 17 if raw_seed is None else int(raw_seed)
        except (TypeError, ValueError):
            raise ServiceError(f"bad 'seed' value {raw_seed!r}")
        inputs = synthesize_inputs(function, seed=seed)
        return self._apply_supplied_inputs(inputs, doc)

    @staticmethod
    def _apply_supplied_inputs(inputs: Dict[str, np.ndarray],
                               doc: Dict[str, object]
                               ) -> Dict[str, np.ndarray]:
        supplied = doc.get("inputs") or {}
        if not isinstance(supplied, dict):
            raise ServiceError("'inputs' must be an object of "
                               "operand name -> nested lists")
        for name, value in supplied.items():
            if name not in inputs:
                raise ServiceError(
                    f"unknown input operand {name!r}; expected one of "
                    f"{', '.join(sorted(inputs))}")
            try:
                array = np.asarray(value, dtype=np.float64)
            except (TypeError, ValueError) as exc:
                raise ServiceError(f"input {name!r} is not a numeric "
                                   f"array: {exc}")
            if array.shape != inputs[name].shape:
                raise ServiceError(
                    f"input {name!r} has shape {array.shape}, expected "
                    f"{inputs[name].shape}")
            inputs[name] = array
        return inputs

    # -- lifecycle -----------------------------------------------------------

    def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` is called (blocking)."""
        try:
            self.httpd.serve_forever(poll_interval=0.1)
        finally:
            self.httpd.server_close()

    def start_background(self) -> "KernelServer":
        """Serve on a daemon thread (for tests and in-process embedding)."""
        if self._thread is not None:
            raise ServiceError("server is already running")
        self._thread = threading.Thread(
            target=self.serve_forever,
            name=f"kernel-server:{self.port}", daemon=True)
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop the accept loop; in-flight handlers run to completion."""
        self.httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def __enter__(self) -> "KernelServer":
        return self.start_background()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
