"""Command-line front-end of the kernel service.

Usage (``PYTHONPATH=src python -m repro.service <command>``)::

    warm  [SPEC ...] [--scalar] [--no-autotune] [--workers N] [--serial]
    run   SPEC ... [--backend auto|compiled|numpy|interpreter]
                                    # generate (or hit) and actually execute
    serve [--host H] [--port P] [--workers N] [--max-inflight N]
          [--warm [SPEC ...]]       # long-running HTTP daemon (JSON API);
                                    # --workers > 1 pre-forks a process pool
                                    # with cross-process single-flight
    query SPEC ...                  # key + hit/miss, no generation
    ls    [--shards]                # list cached entries (or shard usage)
    stats                           # store statistics
    purge [--yes]                   # drop every cached kernel

A SPEC is ``name:size`` (``potrf:12``), ``name:sizexk`` (``kf:8x4``), or a
bare case name, which expands to the default size sweep.  The cache root
defaults to ``~/.cache/repro-slingen/kernels`` and can be moved with
``--store`` (historical alias ``--cache-dir``) or the
``REPRO_KERNEL_CACHE`` environment variable.  Every subcommand accepts
``--json`` for a machine-readable document; exit-code semantics are the
shared contract of :mod:`repro.cli`.

The global flags ``--tuned`` / ``--tuning-db DIR`` (before the command:
``python -m repro.service --tuned warm potrf:4``) make the service consult
the persistent tuning database and generate with tuned-best options.
Likewise ``--verified`` / ``--fixbank DIR`` make it consult the CEGIS fix
bank and apply the banked verified rewrites before codegen; the two
compose (tuned knobs + verified rewrite set).  ``--analysis warn|strict``
forces the static-verification gate for every request: each pipeline
phase checks its freshly built artifact, and in strict mode an error
aborts generation before anything reaches the kernel store (counters
surface under ``"analysis"`` in ``/stats``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from ..cli import (EXIT_FAILURE, EXIT_OK, add_json_flag, confirm, fail,
                   print_json)
from ..errors import ReproError
from ..slingen.options import Options
from .registry import sweep_requests, workload_names
from .service import KernelService
from .store import DiskKernelStore, default_cache_dir


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Warm, query, and purge the persistent kernel cache.")
    parser.add_argument("--store", "--cache-dir", dest="cache_dir",
                        default=None, metavar="DIR",
                        help=f"kernel store root (default: "
                             f"{default_cache_dir()})")
    parser.add_argument("--tuned", action="store_true",
                        help="consult the persistent tuning database: "
                             "workloads with a tuned-best record generate "
                             "with the tuned options")
    parser.add_argument("--tuning-db", default=None, metavar="DIR",
                        help="tuning database root (implies --tuned)")
    parser.add_argument("--verified", action="store_true",
                        help="consult the persistent CEGIS fix bank: "
                             "workloads with accepted rewrites generate "
                             "with them applied")
    parser.add_argument("--fixbank", default=None, metavar="DIR",
                        help="fix-bank root (implies --verified)")
    parser.add_argument("--analysis", default=None,
                        choices=("off", "warn", "strict"),
                        help="static-verifier gate mode for every request "
                             "(strict: ill-formed artifacts are refused "
                             "before they can be cached or served; "
                             "counters on /stats)")
    sub = parser.add_subparsers(dest="command", required=True)

    warm = sub.add_parser("warm", help="generate-and-cache workloads")
    warm.add_argument("specs", nargs="*", metavar="SPEC",
                      help="workloads to warm (default: all, default sizes)")
    warm.add_argument("--scalar", action="store_true",
                      help="generate scalar (non-vectorized) kernels")
    warm.add_argument("--no-autotune", action="store_true",
                      help="skip the autotuning search")
    warm.add_argument("--max-variants", type=int, default=6)
    warm.add_argument("--workers", type=int, default=None,
                      help="worker pool size for misses")
    warm.add_argument("--serial", action="store_true",
                      help="generate misses one at a time")
    add_json_flag(warm)

    run = sub.add_parser("run", help="generate (or hit) workloads and "
                                     "execute them on synthesized inputs")
    run.add_argument("specs", nargs="+", metavar="SPEC")
    run.add_argument("--scalar", action="store_true")
    run.add_argument("--no-autotune", action="store_true")
    run.add_argument("--max-variants", type=int, default=6)
    run.add_argument("--backend", default="auto",
                     choices=("auto", "compiled", "numpy", "interpreter"),
                     help="execution backend (default: auto -- compiled "
                          "when $CC resolves, numpy otherwise)")
    run.add_argument("--repeats", type=int, default=5,
                     help="timing samples per workload")
    add_json_flag(run)

    serve = sub.add_parser(
        "serve", help="run the HTTP kernel-serving daemon")
    serve.add_argument("--host", default=None,
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=None,
                       help="TCP port (default: 8177; 0 = ephemeral)")
    serve.add_argument("--workers", type=int, default=1,
                       help="worker processes; > 1 pre-forks a pool "
                            "sharing one listening socket (default: 1)")
    serve.add_argument("--max-inflight", type=int, default=8,
                       help="concurrent generate/run requests admitted "
                            "per worker before answering 503 (default: 8)")
    serve.add_argument("--warm", nargs="*", default=None, metavar="SPEC",
                       help="pre-generate workloads from the registry "
                            "before accepting traffic (bare --warm warms "
                            "every registered workload)")
    serve.add_argument("--lease-ttl", type=float, default=None,
                       metavar="S",
                       help="cross-process lease expiry in seconds "
                            "(default: $REPRO_LEASE_TTL or 30)")
    serve.add_argument("--lease-wait", type=float, default=None,
                       metavar="S",
                       help="seconds a follower waits to adopt another "
                            "process's generation before generating "
                            "itself (default: $REPRO_LEASE_WAIT or 120)")
    serve.add_argument("--grace", type=float, default=10.0, metavar="S",
                       help="seconds to let workers drain on shutdown "
                            "before SIGKILL (default: 10)")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress per-request access logging")
    add_json_flag(serve, help="print the shutdown summary as JSON")

    query = sub.add_parser("query", help="look up workloads without "
                                         "generating")
    query.add_argument("specs", nargs="+", metavar="SPEC")
    query.add_argument("--scalar", action="store_true")
    query.add_argument("--no-autotune", action="store_true")
    query.add_argument("--max-variants", type=int, default=6)
    add_json_flag(query)

    ls = sub.add_parser("ls", help="list cached kernels")
    ls.add_argument("--shards", action="store_true",
                    help="show per-shard usage instead of entries")
    add_json_flag(ls)
    stats = sub.add_parser("stats", help="print store statistics")
    add_json_flag(stats, help="accepted for consistency (stats is "
                              "always JSON)")

    purge = sub.add_parser("purge", help="drop every cached kernel")
    purge.add_argument("--yes", action="store_true",
                       help="do not ask for confirmation")
    add_json_flag(purge)

    workloads = sub.add_parser("workloads",
                               help="list registered workload names")
    add_json_flag(workloads)
    return parser


def _options_from(args: argparse.Namespace) -> Options:
    return Options(vectorize=not args.scalar,
                   autotune=not args.no_autotune,
                   max_variants=args.max_variants,
                   annotate_code=False)


def _cmd_warm(service: KernelService, args: argparse.Namespace) -> int:
    options = _options_from(args)
    requests = sweep_requests(args.specs or None, options=options)
    responses = service.generate_many(requests, parallel=not args.serial)
    summary = service.stats.snapshot()
    if args.as_json:
        print_json({
            "workloads": [{
                "label": r.label,
                "hit": r.cache_hit,
                "tuned": r.tuned,
                "verified": r.verified,
                "latency_s": r.latency_s,
                "flops_per_cycle": r.result.performance.flops_per_cycle,
                "key": r.key,
            } for r in responses],
            "stats": summary,
        })
        return EXIT_OK
    width = max(len(r.label or "") for r in responses)
    for response in responses:
        state = "hit " if response.cache_hit else "MISS"
        if response.tuned:
            state += " tuned"
        if response.verified:
            state += " verified"
        perf = response.result.performance
        print(f"{(response.label or ''):{width}s}  {state}  "
              f"{response.latency_s * 1e3:8.1f} ms  "
              f"{perf.flops_per_cycle:6.3f} f/c  {response.key[:12]}")
    print(f"warmed {summary['requests']} workloads: "
          f"{summary['hits']} hits, {summary['misses']} generated "
          f"({summary['coalesced']} coalesced)")
    return EXIT_OK


def _cmd_run(service: KernelService, args: argparse.Namespace) -> int:
    """Generate (cache-first) and *execute* workloads: the zero-compiler
    proof that a served kernel actually runs, with wall-clock timing."""
    import statistics

    from ..tuning.measure import synthesize_inputs

    options = _options_from(args)
    failures = 0
    docs = []
    for text in args.specs:
        for request in sweep_requests([text], options=options):
            response = service.generate(request)
            kernel = response.kernel(args.backend)
            inputs = synthesize_inputs(response.result.function)
            outputs = kernel.run(inputs)
            finite = all(bool(np.all(np.isfinite(v)))
                         for v in outputs.values())
            if not finite:
                failures += 1
            seconds = statistics.median(
                kernel.time(inputs, repeats=args.repeats))
            if args.as_json:
                docs.append({"label": request.label,
                             "hit": response.cache_hit,
                             "executor": type(kernel).__name__,
                             "seconds": seconds,
                             "outputs": sorted(outputs),
                             "finite": finite})
                continue
            state = "hit " if response.cache_hit else "MISS"
            print(f"{request.label:14s} {state}  "
                  f"{type(kernel).__name__:17s} "
                  f"{seconds * 1e6:10.1f} us/call  "
                  f"outputs={','.join(sorted(outputs))} "
                  f"{'ok' if finite else 'NON-FINITE'}")
    if args.as_json:
        print_json({"workloads": docs, "failures": failures})
    return EXIT_FAILURE if failures else EXIT_OK


def _cmd_query(service: KernelService, args: argparse.Namespace) -> int:
    options = _options_from(args)
    missing = 0
    docs = []
    for text in args.specs:
        # Like warm: a bare case name expands to its default size sweep.
        for request in sweep_requests([text], options=options):
            key = service.request_key(request)
            meta = service.store.metadata(key)
            if args.as_json:
                docs.append({"label": request.label, "key": key,
                             "hit": meta is not None,
                             "metadata": meta})
            if meta is None:
                missing += 1
                if not args.as_json:
                    print(f"{request.label}: MISS  {key}")
            elif not args.as_json:
                print(f"{request.label}: hit   {key}  "
                      f"variant={meta.get('variant')} "
                      f"f/c={meta.get('flops_per_cycle'):.3f}")
    if args.as_json:
        print_json({"entries": docs, "missing": missing})
    return EXIT_FAILURE if missing else EXIT_OK


def _cmd_serve(service: KernelService, args: argparse.Namespace,
               make_service) -> int:
    """Run the HTTP daemon until SIGINT/SIGTERM, then shut down cleanly.

    ``--workers 1`` (the default) serves in-process; ``--workers N``
    pre-forks a pool of N worker processes sharing one listening socket
    (each built fresh by ``make_service``, so they share only the
    on-disk store and its cross-process lease layer).
    """
    import signal
    import threading

    from .server import DEFAULT_HOST, DEFAULT_PORT, KernelServer

    if args.workers < 1:
        return fail(ReproError(f"--workers must be >= 1, "
                               f"got {args.workers}"))
    host = args.host if args.host is not None else DEFAULT_HOST
    port = args.port if args.port is not None else DEFAULT_PORT

    if args.warm is not None:
        # Warm before accepting traffic: workers then serve the warmed
        # entries as disk hits from request one.
        warmed = service.warm(args.warm or None)
        print(f"warmed {warmed['warmed']} workloads "
              f"({warmed['hits']} already cached)", flush=True)

    if args.workers == 1:
        server = KernelServer(service, host=host, port=port,
                              max_inflight=args.max_inflight,
                              quiet=args.quiet)

        def _stop(signum, frame):
            # shutdown() must not run on the serve_forever thread.
            threading.Thread(target=server.shutdown, daemon=True).start()

        for signum in (signal.SIGINT, signal.SIGTERM):
            signal.signal(signum, _stop)
        print(f"kernel service listening on {server.url} "
              f"(workers=1, max-inflight={server.max_inflight}, "
              f"cache={getattr(service.store, 'root', '<memory>')})",
              flush=True)
        server.serve_forever()
        summary = service.stats.snapshot()
        if args.as_json:
            print_json({"stats": summary, "rejected": server.rejected})
        else:
            print(f"shut down after {summary['requests']} requests: "
                  f"{summary['hits']} hits, "
                  f"{summary['generations']} generated, "
                  f"{summary['coalesced']} coalesced, "
                  f"{server.rejected} rejected", flush=True)
        return EXIT_OK

    from .pool import WorkerPool

    pool = WorkerPool(make_service, workers=args.workers, host=host,
                      port=port, max_inflight=args.max_inflight,
                      quiet=args.quiet, grace_s=args.grace)
    pool.start()

    def _stop_pool(signum, frame):
        threading.Thread(target=pool.shutdown, daemon=True).start()

    # Handlers go in *after* start(): the forked workers install their
    # own SIGTERM drain handler first thing, and must never inherit one
    # that tears down the whole pool from inside a child.
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, _stop_pool)
    print(f"kernel service listening on {pool.url} "
          f"(workers={args.workers}, "
          f"max-inflight={args.max_inflight} per worker, "
          f"cache={getattr(service.store, 'root', '<memory>')})",
          flush=True)
    pool.wait()
    summary = pool.shutdown()  # idempotent; returns the drain summary
    if args.as_json:
        print_json({"pool": summary})
    else:
        print(f"shut down pool of {summary['workers']} workers: "
              f"{summary['restarts']} restarts, "
              f"{summary['killed']} killed after grace, "
              f"exit codes {summary['exit_codes']}", flush=True)
    clean = all(code == 0 for code in summary["exit_codes"])
    return EXIT_OK if clean and not summary["killed"] else EXIT_FAILURE


def _cmd_ls(service: KernelService, args: argparse.Namespace) -> int:
    if args.shards:
        shard_stats = getattr(service.store, "shard_stats", None)
        if not callable(shard_stats):
            print("store has no shard accounting")
            return EXIT_FAILURE
        shards = shard_stats()
        if args.as_json:
            print_json({"shards": shards})
            return EXIT_OK
        for shard in sorted(shards):
            doc = shards[shard]
            print(f"{shard}  {doc['entries']:>5} entries  "
                  f"{doc['bytes']:>10} B  "
                  f"{doc['evictions']:>4} evicted  "
                  f"lru age {doc['lru_age_s']:8.1f} s")
        print(f"{len(shards)} shards")
        return EXIT_OK
    keys = service.store.keys()
    if args.as_json:
        print_json({"entries": [
            {"key": key, "metadata": service.store.metadata(key) or {}}
            for key in keys]})
        return EXIT_OK
    if not keys:
        print("cache is empty")
        return EXIT_OK
    for key in keys:
        meta = service.store.metadata(key) or {}
        print(f"{key[:16]}  {meta.get('label') or meta.get('program', '?'):20s}"
              f"  {meta.get('variant', '?'):16s}"
              f"  {meta.get('payload_bytes', 0):>8} B")
    print(f"{len(keys)} entries")
    return EXIT_OK


def _cmd_stats(service: KernelService) -> int:
    print_json(service.store.stats())
    return EXIT_OK


def _cmd_purge(service: KernelService, args: argparse.Namespace) -> int:
    root = getattr(service.store, "root", "<store>")
    if not confirm(f"purge every cached kernel under {root}?",
                   assume_yes=args.yes):
        print("aborted")
        return EXIT_FAILURE
    removed = service.store.purge()
    if args.as_json:
        print_json({"purged": removed})
    else:
        print(f"purged {removed} entries")
    return EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    def make_service() -> KernelService:
        """One fresh service over the shared persistent stores.  The
        worker pool calls this *inside each forked worker*, so locks,
        stats, and hot layers are always per-process."""
        store = DiskKernelStore(root=args.cache_dir)
        tuning_db = None
        if args.tuned or args.tuning_db:
            from ..tuning.db import TuningDB
            tuning_db = TuningDB(root=args.tuning_db)
        fix_bank = None
        if args.verified or args.fixbank:
            from ..cegis.fixbank import FixBank
            fix_bank = FixBank(root=args.fixbank)
        leases = None
        if args.command == "serve":
            from .leases import LeaseManager
            leases = LeaseManager.for_store(
                store, ttl_s=args.lease_ttl, wait_s=args.lease_wait)
        return KernelService(
            store=store,
            max_workers=getattr(args, "workers", None)
            if args.command != "serve" else None,
            tuning_db=tuning_db, fix_bank=fix_bank, leases=leases,
            analysis=args.analysis)

    try:
        service = make_service()
        if args.command == "warm":
            return _cmd_warm(service, args)
        if args.command == "run":
            return _cmd_run(service, args)
        if args.command == "serve":
            return _cmd_serve(service, args, make_service)
        if args.command == "query":
            return _cmd_query(service, args)
        if args.command == "ls":
            return _cmd_ls(service, args)
        if args.command == "stats":
            return _cmd_stats(service)
        if args.command == "purge":
            return _cmd_purge(service, args)
        if args.command == "workloads":
            if args.as_json:
                print_json({"workloads": workload_names()})
            else:
                print("\n".join(workload_names()))
            return EXIT_OK
    except ReproError as exc:
        return fail(exc)
    return EXIT_OK  # pragma: no cover - argparse enforces a command


if __name__ == "__main__":
    sys.exit(main())
