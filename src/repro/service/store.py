"""Persistent, content-addressed storage for generated kernels.

The store maps a :func:`~repro.service.keys.cache_key` to a
:class:`~repro.slingen.generator.GenerationResult`.  Two backends ship:

* :class:`MemoryKernelStore` -- a bounded in-process LRU dict, useful for
  tests and for serving from a warm process without touching disk.
* :class:`DiskKernelStore` -- the persistent backend.

**Sharded on-disk layout.**  Entries fan out over a two-level directory
tree keyed by hash prefix: the entry for key ``abcdef...`` lives at
``<root>/ab/abcdef.../``.  Keys are SHA-256 hex, so the first two
characters spread entries uniformly over at most 256 shard directories
and no single directory ever holds more than ~1/256th of the store --
``os.listdir`` on a shard stays cheap no matter how many kernels
accumulate.  The invariants of the layout:

- a directory directly under ``<root>`` whose name is exactly two hex
  characters is a shard; a committed entry found directly under the root
  instead (``<root>/<key>/`` -- a flat layout, e.g. a backup restored by
  hand or a root written by an external tool) is transparently migrated
  into its shard on store construction (see ``migrated`` in
  :meth:`DiskKernelStore.stats`), so flat roots keep working without
  regeneration;
- an entry directory holds three files --

  - ``meta.json``   -- human-readable metadata (program, variant, cycles,
    flops/cycle, sizes, creation time).  Written *last*, so it doubles as
    the commit marker: an entry without valid metadata never existed.
    Its mtime is refreshed on every hit and is the LRU clock.
  - ``kernel.c``    -- the emitted single-source C, greppable on disk.
  - ``payload.pkl`` -- the pickled :class:`GenerationResult`.

- all writes go through a temp-file + ``os.replace`` dance so concurrent
  readers never observe a torn file, and reads are corruption-tolerant:
  any undecodable entry is quarantined (deleted) and reported as a miss,
  so a crashed writer or a bit-flipped cache degrades to regeneration,
  never to an exception.

The store is size-bounded (entries and/or bytes) with least-recently-used
eviction; evictions are accounted per shard
(:meth:`DiskKernelStore.shard_stats` reports entries, bytes, eviction
counts, and LRU age shard by shard).  A small in-memory hot layer lets
repeated hits in one process skip deserialization entirely.  All public
methods are thread-safe (one lock per store instance), so a single store
can back the concurrent :class:`~repro.service.service.KernelService` and
the HTTP daemon directly.

Subclass :class:`KernelStore` to add further backends (an object store, a
memcached tier, ...) without touching the service.
"""

from __future__ import annotations

import abc
import json
import os
import pickle
import shutil
import string
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..errors import StoreError
from ..ioutil import LruMap, atomic_write_bytes, cache_root
from ..slingen.generator import GenerationResult


def default_cache_dir() -> str:
    """Root of the persistent kernel cache.

    Overridable via ``REPRO_KERNEL_CACHE``; defaults to
    ``~/.cache/repro-slingen/kernels``.
    """
    return cache_root("REPRO_KERNEL_CACHE", "kernels")


#: When set, every committed DiskKernelStore entry appends one JSON line
#: here (see :meth:`DiskKernelStore.put`).
ENV_STORE_JOURNAL = "REPRO_STORE_JOURNAL"


class KernelStore(abc.ABC):
    """Abstract mapping from content keys to generation results."""

    @abc.abstractmethod
    def get(self, key: str) -> Optional[GenerationResult]:
        """Return the stored result, or None on a miss."""

    @abc.abstractmethod
    def put(self, key: str, result: GenerationResult,
            meta: Optional[Dict[str, object]] = None) -> None:
        """Store a result under ``key`` (overwriting any previous entry)."""

    @abc.abstractmethod
    def delete(self, key: str) -> bool:
        """Drop one entry; returns True when it existed."""

    @abc.abstractmethod
    def keys(self) -> List[str]:
        """All keys currently stored."""

    @abc.abstractmethod
    def metadata(self, key: str) -> Optional[Dict[str, object]]:
        """Cheap (no-deserialization) metadata for one entry, or None."""

    def contains(self, key: str) -> bool:
        return key in self.keys()

    def purge(self) -> int:
        """Drop every entry; returns the number removed."""
        removed = 0
        for key in self.keys():
            if self.delete(key):
                removed += 1
        return removed

    def stats(self) -> Dict[str, object]:
        return {"entries": len(self.keys())}

    def __contains__(self, key: str) -> bool:
        return self.contains(key)

    def __len__(self) -> int:
        return len(self.keys())


def _describe(key: str, result: GenerationResult,
              meta: Optional[Dict[str, object]]) -> Dict[str, object]:
    doc: Dict[str, object] = {
        "key": key,
        "program": result.program_name,
        "variant": result.variant_label,
        "cycles": result.performance.cycles,
        "flops_per_cycle": result.performance.flops_per_cycle,
        "bottleneck": result.performance.bottleneck,
        "candidates_evaluated": len(result.candidates),
        "created_at": time.time(),
    }
    if meta:
        doc.update(meta)
    return doc


class MemoryKernelStore(KernelStore):
    """A bounded, in-process LRU store (no persistence).  Thread-safe."""

    def __init__(self, max_entries: Optional[int] = None):
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, GenerationResult]" = OrderedDict()
        self._meta: Dict[str, Dict[str, object]] = {}
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> Optional[GenerationResult]:
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return result

    def put(self, key: str, result: GenerationResult,
            meta: Optional[Dict[str, object]] = None) -> None:
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            self._meta[key] = _describe(key, result, meta)
            if self.max_entries is not None:
                while len(self._entries) > self.max_entries:
                    evicted, _ = self._entries.popitem(last=False)
                    self._meta.pop(evicted, None)
                    self.evictions += 1

    def delete(self, key: str) -> bool:
        with self._lock:
            self._meta.pop(key, None)
            return self._entries.pop(key, None) is not None

    def keys(self) -> List[str]:
        with self._lock:
            return list(self._entries)

    def metadata(self, key: str) -> Optional[Dict[str, object]]:
        with self._lock:
            return self._meta.get(key)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {"backend": "memory", "entries": len(self._entries),
                    "hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions}


#: Shard directories are exactly two lowercase-hex characters; anything
#: else directly under the store root is a legacy flat entry or junk.
_HEX_CHARS = frozenset(string.hexdigits.lower())


def _is_shard_name(name: str) -> bool:
    return len(name) == 2 and set(name) <= _HEX_CHARS


def _is_key_name(name: str) -> bool:
    """Cache keys are SHA-256 hex digests (see :mod:`repro.service.keys`);
    flat-store migration must only touch directories named exactly that --
    anything else at the root (a user's backup dir, notes, ...) is left
    alone where it is visible."""
    return len(name) == 64 and set(name) <= _HEX_CHARS


class DiskKernelStore(KernelStore):
    """The persistent disk backend (see module docstring for the layout).

    Thread-safe, without serializing disk traffic: a short-held lock
    guards only the in-memory hot layer and the counters, per-entry file
    I/O relies on the temp-file + ``os.replace`` protocol (concurrent
    readers and writers of one entry never observe torn state, and a
    loser's overwrite is bit-identical anyway since results are a pure
    function of the key), and the LRU eviction scan is serialized by its
    own lock.  Distinct-key requests from the HTTP daemon's handler
    threads therefore proceed in parallel.
    """

    META_NAME = "meta.json"
    CODE_NAME = "kernel.c"
    PAYLOAD_NAME = "payload.pkl"

    def __init__(self, root: Optional[str] = None,
                 max_entries: Optional[int] = None,
                 max_bytes: Optional[int] = None,
                 hot_capacity: int = 32,
                 journal: Optional[str] = None):
        """``journal`` (default: ``$REPRO_STORE_JOURNAL``) names an
        append-only file that receives one JSON line per *committed*
        entry.  Unlike the entries themselves -- which overwrite, so a
        re-generation of one key leaves no trace -- the journal is a
        cross-process record of how many generations actually committed,
        which is exactly what the multi-worker single-flight invariant
        ("N processes, one cold key, one generation") is asserted
        against in the benchmarks and the chaos tests."""
        self.root = os.path.abspath(root or default_cache_dir())
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        env_journal = os.environ.get(ENV_STORE_JOURNAL, "").strip()
        self.journal = journal if journal is not None \
            else (env_journal or None)
        self.journal_writes = 0
        try:
            os.makedirs(self.root, exist_ok=True)
        except OSError as exc:
            raise StoreError(
                f"cannot create kernel cache root {self.root!r}: {exc}")
        self._lock = threading.Lock()        # hot layer + counters only
        self._evict_lock = threading.Lock()  # one eviction scan at a time
        self._hot: LruMap[GenerationResult] = LruMap(hot_capacity)
        self.hot_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.evictions = 0
        self.evictions_by_shard: Dict[str, int] = {}
        self.corrupt_dropped = 0
        self.migrated = self._migrate_flat_entries()

    # -- paths ---------------------------------------------------------------

    def _shard_of(self, key: str) -> str:
        return key[:2]

    def _entry_dir(self, key: str) -> str:
        return os.path.join(self.root, self._shard_of(key), key)

    def _migrate_flat_entries(self) -> int:
        """Move flat entries (``<root>/<key>/``) into their shards.

        The sharded lookups never see an entry sitting directly under the
        root -- which is where a hand-restored backup, an rsync of
        individual entries, or an external writer unaware of the fanout
        puts them.  Any committed entry found there (a directory named by
        a full 64-hex key and containing ``meta.json``) is renamed into
        ``<root>/<key[:2]>/``;
        when the sharded copy already exists, the flat duplicate is simply
        dropped.  Runs once per store construction; an already-sharded or
        empty root is a cheap no-op scan.
        """
        moved = 0
        try:
            names = os.listdir(self.root)
        except OSError:
            return 0
        for name in names:
            flat = os.path.join(self.root, name)
            if not _is_key_name(name) or not os.path.isdir(flat):
                continue        # shard dirs, user files: not flat entries
            if not os.path.exists(os.path.join(flat, self.META_NAME)):
                continue        # uncommitted debris, not an entry
            target = os.path.join(self.root, self._shard_of(name), name)
            if os.path.exists(target):
                shutil.rmtree(flat, ignore_errors=True)
                continue
            os.makedirs(os.path.dirname(target), exist_ok=True)
            try:
                os.replace(flat, target)
                moved += 1
            except OSError:
                # Cross-device or concurrent rename: leave the flat entry
                # in place (it is ignored by the sharded lookups).
                continue
        return moved

    # -- KernelStore API -----------------------------------------------------

    def get(self, key: str) -> Optional[GenerationResult]:
        with self._lock:
            hot = self._hot.get(key)
            if hot is not None:
                self.hot_hits += 1
        if hot is not None:
            # Keep the on-disk LRU clock honest: without this, an entry
            # served only from the hot layer looks idle to _evict() and
            # the most-used kernels would be evicted first on bounded
            # stores.
            try:
                os.utime(os.path.join(self._entry_dir(key),
                                      self.META_NAME))
            except OSError:
                pass
            return hot

        entry = self._entry_dir(key)
        meta_path = os.path.join(entry, self.META_NAME)
        payload_path = os.path.join(entry, self.PAYLOAD_NAME)
        if not os.path.exists(meta_path):
            with self._lock:
                self.misses += 1
            return None
        try:
            with open(meta_path, "r", encoding="utf-8") as handle:
                json.load(handle)
            with open(payload_path, "rb") as handle:
                result = pickle.load(handle)
            if not isinstance(result, GenerationResult):
                raise TypeError(
                    f"payload is {type(result).__name__}, "
                    f"expected GenerationResult")
        except Exception:
            # Torn write, truncated pickle, schema drift: quarantine the
            # entry and treat it as a miss so the caller regenerates.
            self._drop_entry(key)
            with self._lock:
                self.corrupt_dropped += 1
                self.misses += 1
            return None
        # Touch the metadata so LRU eviction sees the access.
        try:
            os.utime(meta_path)
        except OSError:
            pass
        with self._lock:
            self._hot.insert(key, result)
            self.disk_hits += 1
        return result

    def put(self, key: str, result: GenerationResult,
            meta: Optional[Dict[str, object]] = None) -> None:
        entry = self._entry_dir(key)
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        doc = _describe(key, result, meta)
        doc["payload_bytes"] = len(payload)
        doc["schema"] = _schema_version()
        # With many writer *processes* sharing the store, a concurrent
        # LRU eviction (or purge) in another process can rmtree this
        # entry directory between our makedirs and a staged write,
        # surfacing as FileNotFoundError mid-commit.  Re-create and
        # retry: the commit protocol itself (meta.json last, every file
        # atomically replaced) keeps readers safe throughout.
        for attempt in range(3):
            try:
                os.makedirs(entry, exist_ok=True)
                atomic_write_bytes(os.path.join(entry, self.CODE_NAME),
                                   result.c_code.encode("utf-8"))
                atomic_write_bytes(os.path.join(entry, self.PAYLOAD_NAME),
                                   payload)
                # meta.json last: it is the commit marker.
                atomic_write_bytes(
                    os.path.join(entry, self.META_NAME),
                    json.dumps(doc, indent=2,
                               sort_keys=True).encode("utf-8"))
                break
            except FileNotFoundError:
                if attempt == 2:
                    raise
        self._journal_append(key, doc)
        with self._lock:
            self._hot.insert(key, result)
        self._evict()

    def _journal_append(self, key: str, doc: Dict[str, object]) -> None:
        """One line per commit, append-only, cross-process (O_APPEND: a
        single small write never interleaves on a local filesystem)."""
        if not self.journal:
            return
        line = json.dumps({
            "key": key, "pid": os.getpid(),
            "program": doc.get("program"),
            "created_at": doc.get("created_at"),
        }, sort_keys=True) + "\n"
        fd = os.open(self.journal,
                     os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)
        with self._lock:
            self.journal_writes += 1

    def delete(self, key: str) -> bool:
        existed = os.path.exists(
            os.path.join(self._entry_dir(key), self.META_NAME))
        self._drop_entry(key)
        return existed

    def _drop_entry(self, key: str) -> None:
        with self._lock:
            self._hot.pop(key)
        shutil.rmtree(self._entry_dir(key), ignore_errors=True)

    def _shard_names(self) -> List[str]:
        try:
            return sorted(name for name in os.listdir(self.root)
                          if _is_shard_name(name)
                          and os.path.isdir(os.path.join(self.root, name)))
        except OSError:
            return []

    def _shard_keys(self, shard: str) -> List[str]:
        shard_dir = os.path.join(self.root, shard)
        try:
            names = sorted(os.listdir(shard_dir))
        except OSError:
            return []
        return [key for key in names
                if os.path.exists(os.path.join(shard_dir, key,
                                               self.META_NAME))]

    def keys(self) -> List[str]:
        found: List[str] = []
        for shard in self._shard_names():
            found.extend(self._shard_keys(shard))
        return found

    def metadata(self, key: str) -> Optional[Dict[str, object]]:
        meta_path = os.path.join(self._entry_dir(key), self.META_NAME)
        try:
            with open(meta_path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def purge(self) -> int:
        count = len(self.keys())
        with self._lock:
            self._hot.clear()
            self.evictions_by_shard.clear()
        # Only the store's own directories: shards and any flat key-named
        # leftovers.  Foreign directories at the root (the same ones
        # migration refuses to move) survive a purge too.
        for name in os.listdir(self.root):
            if _is_shard_name(name) or _is_key_name(name):
                shutil.rmtree(os.path.join(self.root, name),
                              ignore_errors=True)
        return count

    # -- eviction ------------------------------------------------------------

    def _entry_bytes(self, key: str) -> int:
        entry = self._entry_dir(key)
        total = 0
        try:
            for name in os.listdir(entry):
                total += os.path.getsize(os.path.join(entry, name))
        except OSError:
            pass
        return total

    def _evict(self) -> None:
        if self.max_entries is None and self.max_bytes is None:
            return
        with self._evict_lock:
            keys = self.keys()
            # Oldest access first (meta.json mtime is refreshed on every
            # hit).  Ties are broken by key: on filesystems with coarse
            # (1 s) mtime resolution, entries touched in the same second
            # would otherwise evict in directory-listing order, which is
            # not stable across filesystems or runs.
            def lru_rank(key: str) -> "tuple":
                try:
                    stamp = os.path.getmtime(
                        os.path.join(self._entry_dir(key), self.META_NAME))
                except OSError:
                    stamp = 0.0
                return (stamp, key)
            keys.sort(key=lru_rank)
            total_bytes = sum(self._entry_bytes(k) for k in keys) \
                if self.max_bytes is not None else 0
            while keys:
                over_entries = (self.max_entries is not None
                                and len(keys) > self.max_entries)
                over_bytes = (self.max_bytes is not None
                              and total_bytes > self.max_bytes)
                if not over_entries and not over_bytes:
                    break
                victim = keys.pop(0)
                if self.max_bytes is not None:
                    total_bytes -= self._entry_bytes(victim)
                self._drop_entry(victim)
                shard = self._shard_of(victim)
                with self._lock:
                    self.evictions += 1
                    self.evictions_by_shard[shard] = \
                        self.evictions_by_shard.get(shard, 0) + 1

    def shard_stats(self) -> Dict[str, Dict[str, object]]:
        """Per-shard accounting: entry/byte counts, LRU age, evictions.

        One dict per populated shard (plus any shard that has seen an
        eviction), keyed by the two-hex-character shard name:
        ``entries`` and ``bytes`` size the shard, ``evictions`` counts
        LRU victims taken from it over this instance's lifetime,
        ``lru_age_s`` is the age of its least-recently-used entry (how
        close the shard's coldest kernel is to eviction on a bounded
        store), and ``lru_key`` names that entry.  LRU order matches
        :meth:`_evict`: oldest mtime first, same-second ties broken by
        key, so the reported victim candidate is deterministic even on
        filesystems with 1 s mtime resolution.
        """
        now = time.time()
        with self._lock:
            evictions_by_shard = dict(self.evictions_by_shard)
        shards: Dict[str, Dict[str, object]] = {}
        for shard in self._shard_names():
            keys = self._shard_keys(shard)
            if not keys:
                continue
            oldest: Optional[Tuple[float, str]] = None
            for key in sorted(keys):
                try:
                    mtime = os.path.getmtime(os.path.join(
                        self._entry_dir(key), self.META_NAME))
                except OSError:
                    continue
                if oldest is None or (mtime, key) < oldest:
                    oldest = (mtime, key)
            shards[shard] = {
                "entries": len(keys),
                "bytes": sum(self._entry_bytes(k) for k in keys),
                "evictions": evictions_by_shard.get(shard, 0),
                "lru_age_s": (max(0.0, now - oldest[0])
                              if oldest is not None else 0.0),
                "lru_key": oldest[1] if oldest is not None else "",
            }
        for shard, count in evictions_by_shard.items():
            shards.setdefault(shard, {"entries": 0, "bytes": 0,
                                      "evictions": count,
                                      "lru_age_s": 0.0,
                                      "lru_key": ""})
        return shards

    def stats(self, shard_stats: Optional[Dict[str, Dict[str, object]]]
              = None) -> Dict[str, object]:
        """Store-wide statistics.  ``shard_stats`` (a
        :meth:`shard_stats` result) lets a caller that already paid the
        disk scan (e.g. ``GET /stats``) reuse it instead of walking the
        store a second time; entries/bytes/shard counts are derived from
        it either way, so one scan serves both views.  No disk I/O
        happens while the hot-layer lock is held."""
        shards = shard_stats if shard_stats is not None \
            else self.shard_stats()
        entries = sum(int(doc["entries"]) for doc in shards.values())
        total = sum(int(doc["bytes"]) for doc in shards.values())
        populated = sum(1 for doc in shards.values() if doc["entries"])
        with self._lock:
            return {
                "backend": "disk",
                "root": self.root,
                "entries": entries,
                "bytes": total,
                "shards": populated,
                "hot_entries": len(self._hot),
                "hot_hits": self.hot_hits,
                "disk_hits": self.disk_hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "migrated": self.migrated,
                "corrupt_dropped": self.corrupt_dropped,
                "journal_writes": self.journal_writes,
            }


def _schema_version() -> int:
    from .keys import KEY_SCHEMA_VERSION
    return KEY_SCHEMA_VERSION
