"""Persistent, content-addressed storage for generated kernels.

The store maps a :func:`~repro.service.keys.cache_key` to a
:class:`~repro.slingen.generator.GenerationResult`.  Two backends ship:

* :class:`MemoryKernelStore` -- a bounded in-process LRU dict, useful for
  tests and for serving from a warm process without touching disk.
* :class:`DiskKernelStore` -- the persistent backend.  Each entry is a
  directory ``<root>/<key[:2]>/<key>/`` holding

  - ``meta.json``   -- human-readable metadata (program, variant, cycles,
    flops/cycle, sizes, creation time).  Written *last*, so it doubles as
    the commit marker: an entry without valid metadata never existed.
  - ``kernel.c``    -- the emitted single-source C, greppable on disk.
  - ``payload.pkl`` -- the pickled :class:`GenerationResult`.

  All writes go through a temp-file + ``os.replace`` dance so concurrent
  readers never observe a torn file.  Reads are corruption-tolerant: any
  undecodable entry is quarantined (deleted) and reported as a miss, so a
  crashed writer or a bit-flipped cache degrades to regeneration, never to
  an exception.  The store is size-bounded (entries and/or bytes) with
  least-recently-used eviction, and keeps a small in-memory hot layer so
  repeated hits in one process skip deserialization entirely.

Subclass :class:`KernelStore` to add further backends (an object store, a
memcached tier, ...) without touching the service.
"""

from __future__ import annotations

import abc
import json
import os
import pickle
import shutil
import time
from collections import OrderedDict
from typing import Dict, List, Optional

from ..errors import StoreError
from ..ioutil import LruMap, atomic_write_bytes, cache_root
from ..slingen.generator import GenerationResult


def default_cache_dir() -> str:
    """Root of the persistent kernel cache.

    Overridable via ``REPRO_KERNEL_CACHE``; defaults to
    ``~/.cache/repro-slingen/kernels``.
    """
    return cache_root("REPRO_KERNEL_CACHE", "kernels")


class KernelStore(abc.ABC):
    """Abstract mapping from content keys to generation results."""

    @abc.abstractmethod
    def get(self, key: str) -> Optional[GenerationResult]:
        """Return the stored result, or None on a miss."""

    @abc.abstractmethod
    def put(self, key: str, result: GenerationResult,
            meta: Optional[Dict[str, object]] = None) -> None:
        """Store a result under ``key`` (overwriting any previous entry)."""

    @abc.abstractmethod
    def delete(self, key: str) -> bool:
        """Drop one entry; returns True when it existed."""

    @abc.abstractmethod
    def keys(self) -> List[str]:
        """All keys currently stored."""

    @abc.abstractmethod
    def metadata(self, key: str) -> Optional[Dict[str, object]]:
        """Cheap (no-deserialization) metadata for one entry, or None."""

    def contains(self, key: str) -> bool:
        return key in self.keys()

    def purge(self) -> int:
        """Drop every entry; returns the number removed."""
        removed = 0
        for key in self.keys():
            if self.delete(key):
                removed += 1
        return removed

    def stats(self) -> Dict[str, object]:
        return {"entries": len(self.keys())}

    def __contains__(self, key: str) -> bool:
        return self.contains(key)

    def __len__(self) -> int:
        return len(self.keys())


def _describe(key: str, result: GenerationResult,
              meta: Optional[Dict[str, object]]) -> Dict[str, object]:
    doc: Dict[str, object] = {
        "key": key,
        "program": result.program_name,
        "variant": result.variant_label,
        "cycles": result.performance.cycles,
        "flops_per_cycle": result.performance.flops_per_cycle,
        "bottleneck": result.performance.bottleneck,
        "candidates_evaluated": len(result.candidates),
        "created_at": time.time(),
    }
    if meta:
        doc.update(meta)
    return doc


class MemoryKernelStore(KernelStore):
    """A bounded, in-process LRU store (no persistence)."""

    def __init__(self, max_entries: Optional[int] = None):
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, GenerationResult]" = OrderedDict()
        self._meta: Dict[str, Dict[str, object]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> Optional[GenerationResult]:
        result = self._entries.get(key)
        if result is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return result

    def put(self, key: str, result: GenerationResult,
            meta: Optional[Dict[str, object]] = None) -> None:
        self._entries[key] = result
        self._entries.move_to_end(key)
        self._meta[key] = _describe(key, result, meta)
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                evicted, _ = self._entries.popitem(last=False)
                self._meta.pop(evicted, None)
                self.evictions += 1

    def delete(self, key: str) -> bool:
        self._meta.pop(key, None)
        return self._entries.pop(key, None) is not None

    def keys(self) -> List[str]:
        return list(self._entries)

    def metadata(self, key: str) -> Optional[Dict[str, object]]:
        return self._meta.get(key)

    def stats(self) -> Dict[str, object]:
        return {"backend": "memory", "entries": len(self._entries),
                "hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}


class DiskKernelStore(KernelStore):
    """The persistent disk backend (see module docstring for the layout)."""

    META_NAME = "meta.json"
    CODE_NAME = "kernel.c"
    PAYLOAD_NAME = "payload.pkl"

    def __init__(self, root: Optional[str] = None,
                 max_entries: Optional[int] = None,
                 max_bytes: Optional[int] = None,
                 hot_capacity: int = 32):
        self.root = os.path.abspath(root or default_cache_dir())
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        try:
            os.makedirs(self.root, exist_ok=True)
        except OSError as exc:
            raise StoreError(
                f"cannot create kernel cache root {self.root!r}: {exc}")
        self._hot: LruMap[GenerationResult] = LruMap(hot_capacity)
        self.hot_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.evictions = 0
        self.corrupt_dropped = 0

    # -- paths ---------------------------------------------------------------

    def _entry_dir(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key)

    # -- KernelStore API -----------------------------------------------------

    def get(self, key: str) -> Optional[GenerationResult]:
        hot = self._hot.get(key)
        if hot is not None:
            self.hot_hits += 1
            # Keep the on-disk LRU clock honest: without this, an entry
            # served only from the hot layer looks idle to _evict() and the
            # most-used kernels would be evicted first on bounded stores.
            try:
                os.utime(os.path.join(self._entry_dir(key), self.META_NAME))
            except OSError:
                pass
            return hot

        entry = self._entry_dir(key)
        meta_path = os.path.join(entry, self.META_NAME)
        payload_path = os.path.join(entry, self.PAYLOAD_NAME)
        if not os.path.exists(meta_path):
            self.misses += 1
            return None
        try:
            with open(meta_path, "r", encoding="utf-8") as handle:
                json.load(handle)
            with open(payload_path, "rb") as handle:
                result = pickle.load(handle)
            if not isinstance(result, GenerationResult):
                raise TypeError(
                    f"payload is {type(result).__name__}, "
                    f"expected GenerationResult")
        except Exception:
            # Torn write, truncated pickle, schema drift: quarantine the
            # entry and treat it as a miss so the caller regenerates.
            self._drop_entry(key)
            self.corrupt_dropped += 1
            self.misses += 1
            return None
        # Touch the metadata so LRU eviction sees the access.
        try:
            os.utime(meta_path)
        except OSError:
            pass
        self._hot.insert(key, result)
        self.disk_hits += 1
        return result

    def put(self, key: str, result: GenerationResult,
            meta: Optional[Dict[str, object]] = None) -> None:
        entry = self._entry_dir(key)
        os.makedirs(entry, exist_ok=True)
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        doc = _describe(key, result, meta)
        doc["payload_bytes"] = len(payload)
        doc["schema"] = _schema_version()
        atomic_write_bytes(os.path.join(entry, self.CODE_NAME),
                           result.c_code.encode("utf-8"))
        atomic_write_bytes(os.path.join(entry, self.PAYLOAD_NAME), payload)
        # meta.json last: it is the commit marker.
        atomic_write_bytes(
            os.path.join(entry, self.META_NAME),
            json.dumps(doc, indent=2, sort_keys=True).encode("utf-8"))
        self._hot.insert(key, result)
        self._evict()

    def delete(self, key: str) -> bool:
        existed = os.path.exists(
            os.path.join(self._entry_dir(key), self.META_NAME))
        self._drop_entry(key)
        return existed

    def _drop_entry(self, key: str) -> None:
        self._hot.pop(key)
        shutil.rmtree(self._entry_dir(key), ignore_errors=True)

    def keys(self) -> List[str]:
        found: List[str] = []
        if not os.path.isdir(self.root):
            return found
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for key in sorted(os.listdir(shard_dir)):
                if os.path.exists(os.path.join(shard_dir, key,
                                               self.META_NAME)):
                    found.append(key)
        return found

    def metadata(self, key: str) -> Optional[Dict[str, object]]:
        meta_path = os.path.join(self._entry_dir(key), self.META_NAME)
        try:
            with open(meta_path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def purge(self) -> int:
        count = len(self.keys())
        self._hot.clear()
        for shard in os.listdir(self.root):
            shutil.rmtree(os.path.join(self.root, shard), ignore_errors=True)
        return count

    # -- eviction ------------------------------------------------------------

    def _entry_bytes(self, key: str) -> int:
        entry = self._entry_dir(key)
        total = 0
        try:
            for name in os.listdir(entry):
                total += os.path.getsize(os.path.join(entry, name))
        except OSError:
            pass
        return total

    def _evict(self) -> None:
        if self.max_entries is None and self.max_bytes is None:
            return
        keys = self.keys()
        # Oldest access first (meta.json mtime is refreshed on every hit).
        def mtime(key: str) -> float:
            try:
                return os.path.getmtime(
                    os.path.join(self._entry_dir(key), self.META_NAME))
            except OSError:
                return 0.0
        keys.sort(key=mtime)
        total_bytes = sum(self._entry_bytes(k) for k in keys) \
            if self.max_bytes is not None else 0
        while keys:
            over_entries = (self.max_entries is not None
                            and len(keys) > self.max_entries)
            over_bytes = (self.max_bytes is not None
                          and total_bytes > self.max_bytes)
            if not over_entries and not over_bytes:
                break
            victim = keys.pop(0)
            if self.max_bytes is not None:
                total_bytes -= self._entry_bytes(victim)
            self._drop_entry(victim)
            self.evictions += 1

    def stats(self) -> Dict[str, object]:
        keys = self.keys()
        total = sum(self._entry_bytes(k) for k in keys)
        return {
            "backend": "disk",
            "root": self.root,
            "entries": len(keys),
            "bytes": total,
            "hot_entries": len(self._hot),
            "hot_hits": self.hot_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "corrupt_dropped": self.corrupt_dropped,
        }


def _schema_version() -> int:
    from .keys import KEY_SCHEMA_VERSION
    return KEY_SCHEMA_VERSION
