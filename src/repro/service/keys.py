"""Canonical, version-stamped cache keys for generated kernels.

A kernel is fully determined by three things:

1. the LA program (operand declarations + statements, including all fixed
   sizes),
2. the generator configuration (:class:`~repro.slingen.options.Options`),
3. the machine model (:class:`~repro.machine.microarch.MicroArchitecture`)
   that drives vectorization decisions and the autotuner's timing oracle.

This module serializes each of the three into a canonical form that is
stable across processes and Python versions (no ``repr`` of floats relying
on dict ordering, no ``id``-based content), combines them with a schema
version stamp, and hashes the result with SHA-256.  Two requests produce
the same key **iff** they would produce the same generated kernel; bumping
:data:`KEY_SCHEMA_VERSION` invalidates every existing cache entry, which is
the escape hatch whenever the generator's semantics change.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, Optional, Union

from ..ir.expr import Const, Expr, Ref, _Binary, _Unary
from ..ir.operands import Operand, View
from ..ir.program import Assign, Equation, ForLoop, Program, Statement
from ..machine.microarch import MicroArchitecture
from ..slingen.options import Options

#: Bump whenever generated code may change for an unchanged request
#: (generator semantics, pass pipeline, C unparser, ...).
#: v2: widened default codegen search space (block_size and
#: scalar-replacement axes) and the ``stage1_variants`` option.
#: v3: the ``verified_rewrites`` option (CEGIS tier) -- kernels generated
#: with a banked rewrite set must never collide with unverified ones.
#: v4: the staged pipeline -- every Stage-1 synthesis now uses a fresh
#: algorithm database (purity of cached phase artifacts), which renumbers
#: temporaries in non-default variants, and ``GenerationResult`` grew the
#: ``phase_stats`` field; old pickled store entries must not be recalled.
KEY_SCHEMA_VERSION = 4


# ---------------------------------------------------------------------------
# Canonical program serialization
# ---------------------------------------------------------------------------


def _canonical_view(view: View) -> str:
    return (f"{view.operand.name}"
            f"[{view.row_off},{view.col_off},{view.rows},{view.cols}]")


def _canonical_expr(expr: Expr) -> str:
    if isinstance(expr, Ref):
        return _canonical_view(expr.view)
    if isinstance(expr, Const):
        return f"const({expr.value!r},{expr.rows},{expr.cols})"
    name = type(expr).__name__.lower()
    if isinstance(expr, _Unary):
        return f"{name}({_canonical_expr(expr.child)})"
    if isinstance(expr, _Binary):
        return (f"{name}({_canonical_expr(expr.left)},"
                f"{_canonical_expr(expr.right)})")
    # Future node kinds: fall back to repr (deterministic for all IR nodes).
    return repr(expr)


def _canonical_statement(stmt: Statement) -> str:
    if isinstance(stmt, Assign):
        return (f"assign({_canonical_view(stmt.lhs)},"
                f"{_canonical_expr(stmt.rhs)})")
    if isinstance(stmt, Equation):
        return (f"equation({_canonical_expr(stmt.lhs)},"
                f"{_canonical_expr(stmt.rhs)})")
    if isinstance(stmt, ForLoop):
        body = ";".join(_canonical_statement(s) for s in stmt.body)
        return (f"for({stmt.var},{stmt.start},{stmt.stop},{stmt.step},"
                f"[{body}])")
    return repr(stmt)


def _canonical_operand(op: Operand) -> str:
    props = op.properties
    return (f"{op.name}:{op.rows}x{op.cols}:{op.io.name}"
            f":{props.structure.name}/{props.storage.name}"
            f":pd={int(props.positive_definite)}"
            f":ns={int(props.non_singular)}"
            f":ud={int(props.unit_diagonal)}"
            f":ow={op.overwrites or ''}:{op.datatype}")


def canonical_program(program: Program) -> str:
    """A deterministic, whitespace-free text form of an LA program.

    Declaration and statement order are preserved (they are part of the
    program's identity); constants are emitted sorted by name.
    """
    parts = [f"program({program.name})"]
    for name in sorted(program.constants):
        parts.append(f"const {name}={program.constants[name]}")
    for op in program.operands.values():
        parts.append(f"decl {_canonical_operand(op)}")
    for stmt in program.statements:
        parts.append(_canonical_statement(stmt))
    return "\n".join(parts)


# ---------------------------------------------------------------------------
# Options / machine canonicalization
# ---------------------------------------------------------------------------


def canonical_options(options: Options) -> Dict[str, object]:
    """All *artifact-determining* option fields as a plain JSON-able dict.

    Gate axes (:data:`repro.pipeline.keys.GATE_AXES` -- currently
    ``analysis``) are dropped: they decide whether an artifact is
    *admitted*, never what is generated, so requests differing only in
    gate mode must share one kernel-store entry (and keys minted before
    the axes existed stay valid).
    """
    from ..pipeline.keys import GATE_AXES
    doc = dataclasses.asdict(options)
    for axis in GATE_AXES:
        doc.pop(axis, None)
    return doc


def machine_fingerprint(machine: MicroArchitecture) -> Dict[str, object]:
    """All machine-model parameters as a plain JSON-able dict."""
    return dataclasses.asdict(machine)


# ---------------------------------------------------------------------------
# Request fingerprint and key
# ---------------------------------------------------------------------------


def request_fingerprint(program: Union[Program, str],
                        options: Optional[Options] = None,
                        machine: Optional[MicroArchitecture] = None,
                        nominal_flops: Optional[float] = None,
                        constants: Optional[Dict[str, int]] = None,
                        ) -> Dict[str, object]:
    """The full, JSON-able identity of one generation request.

    ``program`` may be a parsed :class:`Program` or raw LA source text (in
    which case ``constants`` supplies the size bindings and the text is
    parsed so that textual and IR requests for the same program coincide --
    note the program *name* is part of the identity, since it names the
    emitted C function; text requests get ``parse_program``'s default name,
    which :meth:`GenerationRequest.from_source` also uses).
    """
    if isinstance(program, str):
        from ..la import parse_program
        program = parse_program(program, constants or {})
    options = options or Options()
    if machine is None:
        from ..machine.microarch import default_machine
        machine = default_machine()
    return {
        "schema": KEY_SCHEMA_VERSION,
        "program": canonical_program(program),
        "options": canonical_options(options),
        "machine": machine_fingerprint(machine),
        "nominal_flops": nominal_flops,
    }


def cache_key(program: Union[Program, str],
              options: Optional[Options] = None,
              machine: Optional[MicroArchitecture] = None,
              nominal_flops: Optional[float] = None,
              constants: Optional[Dict[str, int]] = None) -> str:
    """SHA-256 content key for one (program, options, machine) request."""
    doc = request_fingerprint(program, options, machine,
                              nominal_flops=nominal_flops,
                              constants=constants)
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
