"""Generation-as-a-service: cache-first kernel generation with batch fan-out.

:class:`KernelService` is the front door for everything that wants generated
kernels -- the benchmark harness, the CLI, the HTTP daemon
(:mod:`repro.service.server`), applications.  It answers each request from
the content-addressed store when possible and otherwise runs the full
SLinGen pipeline, records per-request hit/miss/latency statistics, and fans
batches of misses out over a ``concurrent.futures`` worker pool so a
figure's whole size sweep generates in parallel.

The service is safe to share between threads.  Concurrent *identical*
misses are **single-flighted**: the first caller for a content key becomes
the leader and runs the pipeline; every other caller for the same key
blocks on the leader's in-flight future and receives the very same
:class:`GenerationResult` (marked ``coalesced`` in its response and in the
stats), so N simultaneous requests for one kernel cost exactly one
generation.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from concurrent import futures
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ServiceError
from ..ir.program import Program
from ..machine.microarch import MicroArchitecture, default_machine
from ..slingen.generator import GenerationResult, SLinGen
from ..slingen.options import Options
from .keys import cache_key
from .store import DiskKernelStore, KernelStore


@dataclass
class GenerationRequest:
    """One unit of work for the service.

    ``options`` falls back to the service's defaults; ``nominal_flops`` is
    the mathematical operation count used for flops/cycle reporting (part of
    the cache key, since it changes the reported performance).
    """

    program: Program
    options: Optional[Options] = None
    nominal_flops: Optional[float] = None
    label: Optional[str] = None

    @classmethod
    def from_case(cls, case: object,
                  options: Optional[Options] = None) -> "GenerationRequest":
        """Build a request from an
        :class:`~repro.applications.cases.BenchmarkCase`."""
        return cls(program=case.program, options=options,
                   nominal_flops=case.nominal_flops,
                   label=f"{case.name}:{case.size}")

    @classmethod
    def from_source(cls, source: str, constants: Dict[str, int],
                    name: str = "la_program",
                    options: Optional[Options] = None,
                    nominal_flops: Optional[float] = None
                    ) -> "GenerationRequest":
        """Build a request from raw LA source text.

        The default ``name`` matches :func:`repro.la.parse_program`'s, so a
        request built here and a key computed from the raw text via
        :func:`repro.service.keys.cache_key` resolve to the same entry.
        """
        from ..la import parse_program
        program = parse_program(source, constants, name=name)
        return cls(program=program, options=options,
                   nominal_flops=nominal_flops, label=name)


@dataclass
class ServiceResponse:
    """The service's answer to one request."""

    key: str
    result: GenerationResult
    cache_hit: bool
    latency_s: float
    label: Optional[str] = None
    tuned: bool = False             # generated with TuningDB-best options
    verified: bool = False          # generated with FixBank rewrites applied
    coalesced: bool = False         # shared another request's generation

    def kernel(self, backend: str = "auto"):
        """A runnable kernel for this response's generated code.

        ``backend`` is ``"compiled"``, ``"numpy"``, ``"interpreter"``, or
        ``"auto"`` (compiled when ``$CC`` resolves, the portable NumPy
        translation otherwise -- so a service client always gets a real,
        fast executable even on machines with no C compiler).  Compiled
        artifacts are content-addressed by this response's cache key, so
        repeated calls reuse the shared object / generated source.
        """
        return self.result.kernel(backend, cache_key=self.key)


#: How many of the most recent per-request records ServiceStats keeps;
#: aggregate counters are unbounded, the record log is a window.
STATS_RECORD_WINDOW = 1024


@dataclass
class ServiceStats:
    """Aggregate counters over the lifetime of one service instance.

    All mutation goes through the ``note_*``/:meth:`record` methods, which
    hold an internal lock -- the service is hammered from many threads at
    once (batch pools, the HTTP daemon) and the counters must stay exact.
    Reading individual attributes without the lock is fine for display;
    :meth:`snapshot` takes the lock and returns a consistent view.

    The four core counters obey two invariants:
    ``requests == hits + misses`` (every recorded response is one or the
    other) and ``misses == generations + coalesced`` (a store miss either
    ran the pipeline itself or shared a generation that did -- in a batch
    or via single-flight).
    """

    requests: int = 0
    hits: int = 0                   # served from the store
    misses: int = 0                 # not in the store when requested
    errors: int = 0                 # requests that raised
    generations: int = 0            # actual SLinGen pipeline executions
    coalesced: int = 0              # misses that shared another's generation
    tuned: int = 0                  # requests answered with tuned options
    verified: int = 0               # requests answered with banked rewrites
    hit_latency_s: float = 0.0
    miss_latency_s: float = 0.0
    records: "deque[Dict[str, object]]" = field(
        default_factory=lambda: deque(maxlen=STATS_RECORD_WINDOW))
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def note_error(self) -> None:
        with self._lock:
            self.errors += 1

    def record(self, response: ServiceResponse) -> None:
        # generations/coalesced are derived here, in the same critical
        # section as misses, so a concurrent snapshot() can never observe
        # the documented invariants mid-update: a miss either ran the
        # pipeline itself (a generation) or shared one (coalesced).
        with self._lock:
            self.requests += 1
            if response.cache_hit:
                self.hits += 1
                self.hit_latency_s += response.latency_s
            else:
                self.misses += 1
                self.miss_latency_s += response.latency_s
                if response.coalesced:
                    self.coalesced += 1
                else:
                    self.generations += 1
            if response.tuned:
                self.tuned += 1
            if response.verified:
                self.verified += 1
            self.records.append({
                "key": response.key,
                "label": response.label,
                "hit": response.cache_hit,
                "coalesced": response.coalesced,
                "tuned": response.tuned,
                "verified": response.verified,
                "latency_s": response.latency_s,
            })

    def snapshot(self) -> Dict[str, object]:
        """A consistent, JSON-able view of the counters.

        Schema (all keys always present): ``requests``, ``hits``,
        ``misses``, ``errors``, ``generations``, ``coalesced``, ``tuned``,
        ``verified`` -- monotone integer counters as documented on the
        class;
        ``hit_rate`` -- ``hits / requests`` (0.0 before any request);
        ``hit_latency_s`` / ``miss_latency_s`` -- summed wall-clock
        latency per outcome; ``mean_hit_latency_s`` /
        ``mean_miss_latency_s`` -- the per-request means (0.0 when the
        denominator is zero); ``phase_cache`` -- hit/miss/put counters of
        this process's shared :class:`~repro.pipeline.cache.PhaseCache`
        (what generation work the staged pipeline memoized away), with a
        ``per_phase`` breakdown; ``analysis`` -- this process's static
        verifier counters (:func:`repro.analysis.stats_snapshot`:
        artifacts checked, diagnostics found, strict-gate rejections).
        The schema only grows; existing keys
        keep their meaning (``GET /stats`` of the HTTP daemon exposes
        this dict verbatim under ``"service"``).
        """
        from ..analysis import stats_snapshot as analysis_snapshot
        phase_cache = self._phase_cache_snapshot()
        analysis = analysis_snapshot()
        with self._lock:
            return {
                "analysis": analysis,
                "phase_cache": phase_cache,
                "requests": self.requests,
                "hits": self.hits,
                "misses": self.misses,
                "errors": self.errors,
                "generations": self.generations,
                "coalesced": self.coalesced,
                "tuned": self.tuned,
                "verified": self.verified,
                "hit_rate": self.hit_rate,
                "hit_latency_s": self.hit_latency_s,
                "miss_latency_s": self.miss_latency_s,
                "mean_hit_latency_s": (self.hit_latency_s / self.hits
                                       if self.hits else 0.0),
                "mean_miss_latency_s": (self.miss_latency_s / self.misses
                                        if self.misses else 0.0),
            }

    @staticmethod
    def _phase_cache_snapshot() -> Dict[str, object]:
        """The shared phase cache's counters (this process only: a batch
        miss generated in a ``generate_many`` subprocess hits that
        worker's own cache, not this one)."""
        from ..pipeline.cache import shared_phase_cache
        stats = shared_phase_cache().stats()
        return {
            "hits": int(stats["hits"]),
            "misses": int(stats["misses"]),
            "puts": sum(int(counter["puts"])
                        for counter in stats["phases"].values()),
            "per_phase": stats["phases"],
        }


def _generate_payload(program: Program, options: Options,
                      machine: MicroArchitecture,
                      nominal_flops: Optional[float]) -> GenerationResult:
    """Pure generation, no store access.

    Module-level so it pickles, making it usable as a
    ``ProcessPoolExecutor`` work item as well as a thread-pool one.
    """
    return SLinGen(options, machine=machine).generate_result(
        program, nominal_flops=nominal_flops)


class _SingleFlight:
    """Per-key in-flight registry: one generation per key at a time.

    :meth:`begin` hands the first caller for a key a fresh future and
    leadership; every later caller for the same key gets the *same* future
    and ``leader=False`` -- it waits on ``future.result()`` instead of
    duplicating the work.  The leader must complete the future (result or
    exception) and then :meth:`finish` the key so later requests start a
    new flight (by then the result is in the store, so they hit).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: Dict[str, "futures.Future[GenerationResult]"] = {}

    def begin(self, key: str
              ) -> "Tuple[futures.Future[GenerationResult], bool]":
        with self._lock:
            future = self._inflight.get(key)
            if future is not None:
                return future, False
            future = futures.Future()
            self._inflight[key] = future
            return future, True

    def finish(self, key: str) -> None:
        with self._lock:
            self._inflight.pop(key, None)

    def __len__(self) -> int:
        with self._lock:
            return len(self._inflight)


class KernelService:
    """Cache-first kernel generation with parallel batch misses."""

    def __init__(self, store: Optional[KernelStore] = None,
                 options: Optional[Options] = None,
                 machine: Optional[MicroArchitecture] = None,
                 max_workers: Optional[int] = None,
                 executor: str = "process",
                 tuning_db: Optional[object] = None,
                 fix_bank: Optional[object] = None,
                 single_flight: bool = True,
                 leases: Optional[object] = None,
                 analysis: Optional[str] = None):
        """``executor`` selects the miss pool for :meth:`generate_many`:
        ``"process"`` (default) gives true CPU parallelism for the
        pure-Python generation pipeline; ``"thread"`` avoids process spawn
        on platforms where that is expensive or unavailable (the GIL then
        serializes the actual generation work).  If the process pool cannot
        be created or dies, the batch falls back to in-process serial
        generation rather than failing.

        ``tuning_db`` (a :class:`~repro.tuning.db.TuningDB`) makes the
        service consult the persistent tuning records: when the requested
        *(program, machine)* has a tuned-best entry, the request's options
        are replaced by the tuned ones before keying and generation, so a
        cache miss generates the empirically best known kernel instead of
        re-running the model-driven search.

        ``fix_bank`` (a :class:`~repro.cegis.fixbank.FixBank`) makes the
        service additionally apply CEGIS-verified rewrites: when the
        requested *(program, machine)* has a fix record with accepted
        rewrite ids, ``Options.verified_rewrites`` is set from it before
        keying and generation.  Composes with ``tuning_db`` -- the tuned
        record decides the searched knobs, the fix record decides the
        rewrite set.

        ``single_flight=False`` disables the concurrent-miss coalescing of
        :meth:`generate` (every caller generates independently); it exists
        for tests and for measuring what coalescing buys
        (``benchmarks/bench_concurrent_service.py``).

        ``analysis`` overrides ``Options.analysis`` on *every* request
        this service answers (requests keep their other options): the
        static-verifier gate mode, ``"off"``/``"warn"``/``"strict"``.
        A gate axis never feeds the cache key, so flipping it does not
        invalidate the store -- but under ``"strict"`` an ill-formed
        artifact raises :class:`~repro.errors.AnalysisError` before it
        can be stored or served.

        ``leases`` (a :class:`~repro.service.leases.LeaseManager`,
        conventionally ``LeaseManager.for_store(store)``) extends
        single-flight *across processes*: the in-process flight leader
        additionally takes a per-key filesystem lease before generating,
        so N worker processes of a pool (:mod:`repro.service.pool`)
        hammering one cold key still cost exactly one generation --
        followers adopt the winner's committed artifact (reported
        ``coalesced``), and leases left by crashed processes are reaped.
        Requires ``single_flight`` (the default)."""
        if executor not in ("thread", "process"):
            raise ServiceError(
                f"executor must be 'thread' or 'process', got {executor!r}")
        self.store = store if store is not None else DiskKernelStore()
        self.options = (options or Options()).validate()
        self.machine = machine or default_machine()
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)
        self.executor_kind = executor
        self.tuning_db = tuning_db
        self.fix_bank = fix_bank
        self.single_flight = single_flight
        if leases is not None and not single_flight:
            raise ServiceError(
                "cross-process leases require single_flight=True "
                "(the lease is taken by the in-process flight leader)")
        self.leases = leases
        if analysis is not None:
            from ..analysis import validate_mode
            validate_mode(analysis)
        self.analysis = analysis
        self.stats = ServiceStats()
        self._flight = _SingleFlight()

    # -- keys ----------------------------------------------------------------

    def _coerce(self, request: Union[GenerationRequest, Program]
                ) -> GenerationRequest:
        if isinstance(request, Program):
            request = GenerationRequest(program=request, label=request.name)
        return request

    def _effective_options(self, request: GenerationRequest
                           ) -> "tuple[Options, bool, bool]":
        """The options this request generates with, plus whether they came
        from the tuning database and whether banked verified rewrites were
        applied.

        Tuned options and banked rewrites participate in content
        addressing exactly like user-supplied ones (the key is computed
        from the *effective* options), so tuned, verified and plain
        requests for the same program are distinct cache entries and
        results stay a pure function of the key.
        """
        options = (request.options or self.options).validate()
        tuned = False
        if self.tuning_db is not None:
            from ..tuning.db import tuning_key
            best = self.tuning_db.best_options(
                tuning_key(request.program, self.machine,
                           vectorize=options.vectorize), base=options)
            if best is not None:
                options = best.validate()
                tuned = True
        verified = False
        if self.fix_bank is not None:
            from ..cegis.fixbank import fixbank_key
            banked = self.fix_bank.verified_options(
                fixbank_key(request.program, self.machine,
                            vectorize=options.vectorize), base=options)
            if banked is not None and banked.verified_rewrites:
                options = banked.validate()
                verified = True
        if self.analysis is not None and options.analysis != self.analysis:
            options = replace(options, analysis=self.analysis)
        return options, tuned, verified

    def request_key(self, request: Union[GenerationRequest, Program]) -> str:
        """The content key this request resolves to (no generation)."""
        request = self._coerce(request)
        options, _, _ = self._effective_options(request)
        return cache_key(request.program, options, self.machine,
                         nominal_flops=request.nominal_flops)

    # -- single requests -----------------------------------------------------

    def generate(self, request: Union[GenerationRequest, Program]
                 ) -> ServiceResponse:
        """Answer one request, from the store when possible.

        Thread-safe.  Concurrent misses for the same content key coalesce
        into a single pipeline run (see the module docstring); the
        followers' responses carry ``coalesced=True``.
        """
        request = self._coerce(request)
        started = time.perf_counter()
        options, tuned, verified = self._effective_options(request)
        key = cache_key(request.program, options, self.machine,
                        nominal_flops=request.nominal_flops)
        result = self.store.get(key)
        hit = result is not None
        coalesced = False
        if result is None:
            if self.single_flight:
                result, coalesced = self._miss_single_flight(
                    key, request, options, tuned)
            else:
                result = self._generate_and_store(key, request, options,
                                                  tuned)
        response = ServiceResponse(
            key=key, result=result, cache_hit=hit,
            latency_s=time.perf_counter() - started,
            label=request.label or request.program.name,
            tuned=tuned, verified=verified, coalesced=coalesced)
        self.stats.record(response)
        return response

    def _generate_and_store(self, key: str, request: GenerationRequest,
                            options: Options, tuned: bool
                            ) -> GenerationResult:
        """Run the pipeline for one miss and commit the result."""
        try:
            result = _generate_payload(request.program, options,
                                       self.machine, request.nominal_flops)
        except Exception:
            self.stats.note_error()
            raise
        self.store.put(key, result,
                       meta={"label": request.label, "tuned": tuned})
        return result

    def _miss_single_flight(self, key: str, request: GenerationRequest,
                            options: Options, tuned: bool
                            ) -> "Tuple[GenerationResult, bool]":
        """Resolve one miss, coalescing with any in-flight generation.

        Returns ``(result, coalesced)``.  The leader re-probes the store
        after winning the flight (another thread may have committed between
        our miss and leadership), generates-and-stores if still absent, and
        publishes the outcome -- success or exception -- to every waiter
        before retiring the key.
        """
        future, leader = self._flight.begin(key)
        if not leader:
            try:
                return future.result(), True
            except Exception:
                self.stats.note_error()
                raise
        try:
            result = self.store.get(key)
            # A hit here means another thread committed between our outer
            # miss and winning the flight: we shared its generation.
            coalesced = result is not None
            if result is None:
                if self.leases is not None:
                    # Cross-process single flight: take the per-key
                    # filesystem lease (or adopt the holder's artifact).
                    result, adopted = self.leases.coalesce(
                        key,
                        probe=lambda: self.store.get(key),
                        generate=lambda: self._generate_and_store(
                            key, request, options, tuned))
                    coalesced = adopted
                else:
                    result = self._generate_and_store(key, request,
                                                      options, tuned)
        except BaseException as exc:
            future.set_exception(exc)
            # The waiters hold the only other references; break the cycle
            # between this frame's exception and the future.
            future = None
            raise
        else:
            future.set_result(result)
            return result, coalesced
        finally:
            self._flight.finish(key)

    # -- batches -------------------------------------------------------------

    def generate_many(self,
                      requests: Sequence[Union[GenerationRequest, Program]],
                      parallel: bool = True) -> List[ServiceResponse]:
        """Answer a batch: hits served immediately, misses generated on the
        worker pool, duplicates coalesced to one generation.

        Responses come back in request order and are bitwise identical to
        what serial :meth:`generate` calls would produce (the workers run
        the same pure generation path).
        """
        coerced = [self._coerce(r) for r in requests]
        started = [0.0] * len(coerced)
        keys: List[str] = []
        effective: List[Options] = []
        tuned_flags: List[bool] = []
        verified_flags: List[bool] = []
        resolved: List[Optional[GenerationResult]] = []
        hit_flags: List[bool] = []
        # Hits complete during this first pass; their latency must be
        # captured here, not when the batch's misses finish generating.
        finished: List[Optional[float]] = []

        pending: Dict[str, List[int]] = {}
        for idx, request in enumerate(coerced):
            started[idx] = time.perf_counter()
            options, tuned, verified = self._effective_options(request)
            effective.append(options)
            tuned_flags.append(tuned)
            verified_flags.append(verified)
            key = cache_key(request.program, options, self.machine,
                            nominal_flops=request.nominal_flops)
            keys.append(key)
            result = self.store.get(key)
            resolved.append(result)
            hit_flags.append(result is not None)
            finished.append(time.perf_counter() if result is not None
                            else None)
            if result is None:
                pending.setdefault(key, []).append(idx)

        # One generation per unique missing key; the other indices of each
        # key share it and are reported (and counted) as coalesced.
        work: List[int] = []
        coalesced_flags = [False] * len(coerced)
        for key, indices in pending.items():
            work.append(indices[0])
            for dup_idx in indices[1:]:
                coalesced_flags[dup_idx] = True

        def run_one(idx: int) -> GenerationResult:
            request = coerced[idx]
            return _generate_payload(request.program, effective[idx],
                                     self.machine, request.nominal_flops)

        if work:
            produced: Optional[List[GenerationResult]] = None
            try:
                if parallel and len(work) > 1:
                    workers = min(self.max_workers, len(work))
                    if self.executor_kind == "process":
                        try:
                            with futures.ProcessPoolExecutor(
                                    max_workers=workers) as pool:
                                produced = list(pool.map(
                                    _generate_payload,
                                    [coerced[i].program for i in work],
                                    [effective[i] for i in work],
                                    [self.machine] * len(work),
                                    [coerced[i].nominal_flops for i in work]))
                        except (futures.process.BrokenProcessPool, OSError,
                                PermissionError):
                            # Sandboxes without fork/semaphores: degrade to
                            # serial generation instead of failing the batch.
                            produced = None
                    else:
                        with futures.ThreadPoolExecutor(
                                max_workers=workers) as pool:
                            produced = list(pool.map(run_one, work))
                if produced is None:
                    produced = [run_one(idx) for idx in work]
            except Exception:
                self.stats.note_error()
                raise
            for idx, result in zip(work, produced):
                key = keys[idx]
                self.store.put(key, result,
                               meta={"label": coerced[idx].label,
                                     "tuned": tuned_flags[idx]})
                now = time.perf_counter()
                for dup_idx in pending[key]:
                    resolved[dup_idx] = result
                    finished[dup_idx] = now

        responses: List[ServiceResponse] = []
        for idx, request in enumerate(coerced):
            result = resolved[idx]
            if result is None:  # pragma: no cover - defensive
                raise ServiceError(
                    f"request {request.label or request.program.name!r} "
                    f"was not resolved")
            end = finished[idx] if finished[idx] is not None \
                else time.perf_counter()
            response = ServiceResponse(
                key=keys[idx], result=result, cache_hit=hit_flags[idx],
                latency_s=end - started[idx],
                label=request.label or request.program.name,
                tuned=tuned_flags[idx], verified=verified_flags[idx],
                coalesced=coalesced_flags[idx])
            self.stats.record(response)
            responses.append(response)
        return responses

    # -- registry convenience ------------------------------------------------

    def warm(self, specs: Optional[Sequence[str]] = None,
             options: Optional[Options] = None,
             parallel: bool = True) -> Dict[str, object]:
        """Pre-generate the named workloads (default: every registered
        workload at its default size sweep); returns a summary dict."""
        from .registry import sweep_requests
        requests = sweep_requests(specs, options=options)
        responses = self.generate_many(requests, parallel=parallel)
        return {
            "warmed": len(responses),
            "hits": sum(1 for r in responses if r.cache_hit),
            "misses": sum(1 for r in responses if not r.cache_hit),
            "labels": [r.label for r in responses],
        }

    def reset_stats(self) -> None:
        self.stats = ServiceStats()
