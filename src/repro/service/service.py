"""Generation-as-a-service: cache-first kernel generation with batch fan-out.

:class:`KernelService` is the front door for everything that wants generated
kernels -- the benchmark harness, the CLI, applications.  It answers each
request from the content-addressed store when possible and otherwise runs
the full SLinGen pipeline, records per-request hit/miss/latency statistics,
and fans batches of misses out over a ``concurrent.futures`` worker pool so
a figure's whole size sweep generates in parallel.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent import futures
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..errors import ServiceError
from ..ir.program import Program
from ..machine.microarch import MicroArchitecture, default_machine
from ..slingen.generator import GenerationResult, SLinGen
from ..slingen.options import Options
from .keys import cache_key
from .store import DiskKernelStore, KernelStore


@dataclass
class GenerationRequest:
    """One unit of work for the service.

    ``options`` falls back to the service's defaults; ``nominal_flops`` is
    the mathematical operation count used for flops/cycle reporting (part of
    the cache key, since it changes the reported performance).
    """

    program: Program
    options: Optional[Options] = None
    nominal_flops: Optional[float] = None
    label: Optional[str] = None

    @classmethod
    def from_case(cls, case: object,
                  options: Optional[Options] = None) -> "GenerationRequest":
        """Build a request from an
        :class:`~repro.applications.cases.BenchmarkCase`."""
        return cls(program=case.program, options=options,
                   nominal_flops=case.nominal_flops,
                   label=f"{case.name}:{case.size}")

    @classmethod
    def from_source(cls, source: str, constants: Dict[str, int],
                    name: str = "la_program",
                    options: Optional[Options] = None,
                    nominal_flops: Optional[float] = None
                    ) -> "GenerationRequest":
        """Build a request from raw LA source text.

        The default ``name`` matches :func:`repro.la.parse_program`'s, so a
        request built here and a key computed from the raw text via
        :func:`repro.service.keys.cache_key` resolve to the same entry.
        """
        from ..la import parse_program
        program = parse_program(source, constants, name=name)
        return cls(program=program, options=options,
                   nominal_flops=nominal_flops, label=name)


@dataclass
class ServiceResponse:
    """The service's answer to one request."""

    key: str
    result: GenerationResult
    cache_hit: bool
    latency_s: float
    label: Optional[str] = None
    tuned: bool = False             # generated with TuningDB-best options

    def kernel(self, backend: str = "auto"):
        """A runnable kernel for this response's generated code.

        ``backend`` is ``"compiled"``, ``"numpy"``, ``"interpreter"``, or
        ``"auto"`` (compiled when ``$CC`` resolves, the portable NumPy
        translation otherwise -- so a service client always gets a real,
        fast executable even on machines with no C compiler).  Compiled
        artifacts are content-addressed by this response's cache key, so
        repeated calls reuse the shared object / generated source.
        """
        return self.result.kernel(backend, cache_key=self.key)


#: How many of the most recent per-request records ServiceStats keeps;
#: aggregate counters are unbounded, the record log is a window.
STATS_RECORD_WINDOW = 1024


@dataclass
class ServiceStats:
    """Aggregate counters over the lifetime of one service instance."""

    requests: int = 0
    hits: int = 0
    misses: int = 0
    errors: int = 0
    coalesced: int = 0              # duplicate keys inside one batch
    tuned: int = 0                  # requests answered with tuned options
    hit_latency_s: float = 0.0
    miss_latency_s: float = 0.0
    records: "deque[Dict[str, object]]" = field(
        default_factory=lambda: deque(maxlen=STATS_RECORD_WINDOW))

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def record(self, response: ServiceResponse) -> None:
        self.requests += 1
        if response.cache_hit:
            self.hits += 1
            self.hit_latency_s += response.latency_s
        else:
            self.misses += 1
            self.miss_latency_s += response.latency_s
        if response.tuned:
            self.tuned += 1
        self.records.append({
            "key": response.key,
            "label": response.label,
            "hit": response.cache_hit,
            "tuned": response.tuned,
            "latency_s": response.latency_s,
        })

    def snapshot(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "hits": self.hits,
            "misses": self.misses,
            "errors": self.errors,
            "coalesced": self.coalesced,
            "tuned": self.tuned,
            "hit_rate": self.hit_rate,
            "hit_latency_s": self.hit_latency_s,
            "miss_latency_s": self.miss_latency_s,
            "mean_hit_latency_s": (self.hit_latency_s / self.hits
                                   if self.hits else 0.0),
            "mean_miss_latency_s": (self.miss_latency_s / self.misses
                                    if self.misses else 0.0),
        }


def _generate_payload(program: Program, options: Options,
                      machine: MicroArchitecture,
                      nominal_flops: Optional[float]) -> GenerationResult:
    """Pure generation, no store access.

    Module-level so it pickles, making it usable as a
    ``ProcessPoolExecutor`` work item as well as a thread-pool one.
    """
    return SLinGen(options, machine=machine).generate_result(
        program, nominal_flops=nominal_flops)


class KernelService:
    """Cache-first kernel generation with parallel batch misses."""

    def __init__(self, store: Optional[KernelStore] = None,
                 options: Optional[Options] = None,
                 machine: Optional[MicroArchitecture] = None,
                 max_workers: Optional[int] = None,
                 executor: str = "process",
                 tuning_db: Optional[object] = None):
        """``executor`` selects the miss pool for :meth:`generate_many`:
        ``"process"`` (default) gives true CPU parallelism for the
        pure-Python generation pipeline; ``"thread"`` avoids process spawn
        on platforms where that is expensive or unavailable (the GIL then
        serializes the actual generation work).  If the process pool cannot
        be created or dies, the batch falls back to in-process serial
        generation rather than failing.

        ``tuning_db`` (a :class:`~repro.tuning.db.TuningDB`) makes the
        service consult the persistent tuning records: when the requested
        *(program, machine)* has a tuned-best entry, the request's options
        are replaced by the tuned ones before keying and generation, so a
        cache miss generates the empirically best known kernel instead of
        re-running the model-driven search."""
        if executor not in ("thread", "process"):
            raise ServiceError(
                f"executor must be 'thread' or 'process', got {executor!r}")
        self.store = store if store is not None else DiskKernelStore()
        self.options = (options or Options()).validate()
        self.machine = machine or default_machine()
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)
        self.executor_kind = executor
        self.tuning_db = tuning_db
        self.stats = ServiceStats()

    # -- keys ----------------------------------------------------------------

    def _coerce(self, request: Union[GenerationRequest, Program]
                ) -> GenerationRequest:
        if isinstance(request, Program):
            request = GenerationRequest(program=request, label=request.name)
        return request

    def _effective_options(self, request: GenerationRequest
                           ) -> "tuple[Options, bool]":
        """The options this request generates with, and whether they came
        from the tuning database.

        Tuned options participate in content addressing exactly like
        user-supplied ones (the key is computed from the *effective*
        options), so a tuned and an untuned request for the same program
        are distinct cache entries and results stay a pure function of the
        key.
        """
        options = (request.options or self.options).validate()
        if self.tuning_db is None:
            return options, False
        from ..tuning.db import tuning_key
        tuned = self.tuning_db.best_options(
            tuning_key(request.program, self.machine,
                       vectorize=options.vectorize), base=options)
        if tuned is None:
            return options, False
        return tuned.validate(), True

    def request_key(self, request: Union[GenerationRequest, Program]) -> str:
        """The content key this request resolves to (no generation)."""
        request = self._coerce(request)
        options, _ = self._effective_options(request)
        return cache_key(request.program, options, self.machine,
                         nominal_flops=request.nominal_flops)

    # -- single requests -----------------------------------------------------

    def generate(self, request: Union[GenerationRequest, Program]
                 ) -> ServiceResponse:
        """Answer one request, from the store when possible."""
        request = self._coerce(request)
        started = time.perf_counter()
        options, tuned = self._effective_options(request)
        key = cache_key(request.program, options, self.machine,
                        nominal_flops=request.nominal_flops)
        result = self.store.get(key)
        hit = result is not None
        if result is None:
            try:
                result = _generate_payload(request.program, options,
                                           self.machine,
                                           request.nominal_flops)
            except Exception:
                self.stats.errors += 1
                raise
            self.store.put(key, result,
                           meta={"label": request.label, "tuned": tuned})
        response = ServiceResponse(
            key=key, result=result, cache_hit=hit,
            latency_s=time.perf_counter() - started,
            label=request.label or request.program.name,
            tuned=tuned)
        self.stats.record(response)
        return response

    # -- batches -------------------------------------------------------------

    def generate_many(self,
                      requests: Sequence[Union[GenerationRequest, Program]],
                      parallel: bool = True) -> List[ServiceResponse]:
        """Answer a batch: hits served immediately, misses generated on the
        worker pool, duplicates coalesced to one generation.

        Responses come back in request order and are bitwise identical to
        what serial :meth:`generate` calls would produce (the workers run
        the same pure generation path).
        """
        coerced = [self._coerce(r) for r in requests]
        started = [0.0] * len(coerced)
        keys: List[str] = []
        effective: List[Options] = []
        tuned_flags: List[bool] = []
        resolved: List[Optional[GenerationResult]] = []
        hit_flags: List[bool] = []
        # Hits complete during this first pass; their latency must be
        # captured here, not when the batch's misses finish generating.
        finished: List[Optional[float]] = []

        pending: Dict[str, List[int]] = {}
        for idx, request in enumerate(coerced):
            started[idx] = time.perf_counter()
            options, tuned = self._effective_options(request)
            effective.append(options)
            tuned_flags.append(tuned)
            key = cache_key(request.program, options, self.machine,
                            nominal_flops=request.nominal_flops)
            keys.append(key)
            result = self.store.get(key)
            resolved.append(result)
            hit_flags.append(result is not None)
            finished.append(time.perf_counter() if result is not None
                            else None)
            if result is None:
                pending.setdefault(key, []).append(idx)

        # One generation per unique missing key.
        work: List[int] = []
        for key, indices in pending.items():
            work.append(indices[0])
            self.stats.coalesced += len(indices) - 1

        def run_one(idx: int) -> GenerationResult:
            request = coerced[idx]
            return _generate_payload(request.program, effective[idx],
                                     self.machine, request.nominal_flops)

        if work:
            produced: Optional[List[GenerationResult]] = None
            try:
                if parallel and len(work) > 1:
                    workers = min(self.max_workers, len(work))
                    if self.executor_kind == "process":
                        try:
                            with futures.ProcessPoolExecutor(
                                    max_workers=workers) as pool:
                                produced = list(pool.map(
                                    _generate_payload,
                                    [coerced[i].program for i in work],
                                    [effective[i] for i in work],
                                    [self.machine] * len(work),
                                    [coerced[i].nominal_flops for i in work]))
                        except (futures.process.BrokenProcessPool, OSError,
                                PermissionError):
                            # Sandboxes without fork/semaphores: degrade to
                            # serial generation instead of failing the batch.
                            produced = None
                    else:
                        with futures.ThreadPoolExecutor(
                                max_workers=workers) as pool:
                            produced = list(pool.map(run_one, work))
                if produced is None:
                    produced = [run_one(idx) for idx in work]
            except Exception:
                self.stats.errors += 1
                raise
            for idx, result in zip(work, produced):
                key = keys[idx]
                self.store.put(key, result,
                               meta={"label": coerced[idx].label,
                                     "tuned": tuned_flags[idx]})
                now = time.perf_counter()
                for dup_idx in pending[key]:
                    resolved[dup_idx] = result
                    finished[dup_idx] = now

        responses: List[ServiceResponse] = []
        for idx, request in enumerate(coerced):
            result = resolved[idx]
            if result is None:  # pragma: no cover - defensive
                raise ServiceError(
                    f"request {request.label or request.program.name!r} "
                    f"was not resolved")
            end = finished[idx] if finished[idx] is not None \
                else time.perf_counter()
            response = ServiceResponse(
                key=keys[idx], result=result, cache_hit=hit_flags[idx],
                latency_s=end - started[idx],
                label=request.label or request.program.name,
                tuned=tuned_flags[idx])
            self.stats.record(response)
            responses.append(response)
        return responses

    # -- registry convenience ------------------------------------------------

    def warm(self, specs: Optional[Sequence[str]] = None,
             options: Optional[Options] = None,
             parallel: bool = True) -> Dict[str, object]:
        """Pre-generate the named workloads (default: every registered
        workload at its default size sweep); returns a summary dict."""
        from .registry import sweep_requests
        requests = sweep_requests(specs, options=options)
        responses = self.generate_many(requests, parallel=parallel)
        return {
            "warmed": len(responses),
            "hits": sum(1 for r in responses if r.cache_hit),
            "misses": sum(1 for r in responses if not r.cache_hit),
            "labels": [r.label for r in responses],
        }

    def reset_stats(self) -> None:
        self.stats = ServiceStats()
