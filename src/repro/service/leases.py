"""Cross-process single-flight: per-key lockfile leases over the store.

The in-process single-flight layer (:class:`~repro.service.service._SingleFlight`)
collapses duplicate misses *within* one process; a pre-forked worker pool
(:mod:`repro.service.pool`) runs many processes against one
:class:`~repro.service.store.DiskKernelStore`, so a popular cold key would
still be generated once per worker.  :class:`LeaseManager` extends the
single-flight guarantee across processes with plain filesystem leases --
no daemons, no sockets, nothing beyond the store's own directory tree.

**Protocol.**  A lease for key ``k`` is the file
``<root>/<k[:2]>/<k>.lease`` holding a JSON stamp::

    {"pid": 4242, "host": "worker-1", "token": "...",
     "acquired_at": 1700000000.0, "expires_at": 1700000030.0}

Acquisition is atomic-with-content: the stamp is written to a private
temp file and published with ``os.link`` (which fails if the lease
already exists), so a reader never observes an empty or torn lease.  The
winner generates and commits the artifact to the store, then releases.
Followers poll: they adopt the artifact the moment the store serves it,
and meanwhile watch the lease itself --

* lease gone, no artifact: the holder released without publishing (or
  crashed between unlink and commit); re-contend for the lease.
* lease *stale* -- its stamp expired, or its owner pid is dead on this
  host: reap it (see below) and re-contend, so a SIGKILLed worker never
  wedges the key.
* wait deadline exceeded: generate anyway.  The store's commit protocol
  is atomic and results are a pure function of the key, so duplicated
  generation is wasted work, never wrong data.  A lease can only slow a
  request down; it can never make one fail.

**Reaping** removes a lease we do not own, which races with the owner
releasing and a third process acquiring.  To avoid deleting a *fresh*
lease, removal is rename-then-verify: rename the lease to a unique name,
check the renamed content is the stamp we decided was stale, and if we
grabbed someone's fresh lease instead, put it back (or drop it if yet
another lease has appeared -- the displaced owner still generates and
publishes correctly; see the wedge-proof property above).

Statistics (``acquired`` / ``adopted`` / ``reaped`` / ``wait_timeouts``
/ ``released``) are kept per manager and surfaced on the daemon's
``GET /stats`` under ``"leases"``.
"""

from __future__ import annotations

import errno
import json
import os
import socket
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..errors import StoreError

#: Default seconds a lease stays valid without being released.  Sized to
#: comfortably exceed one generation (tens to hundreds of ms for paper
#: workloads, seconds for tuned sweeps): expiry exists to recover from
#: crashed holders, not to preempt live ones.
DEFAULT_TTL_S = 30.0

#: Default seconds a follower waits for the holder's artifact before
#: giving up on coalescing and generating itself.
DEFAULT_WAIT_S = 120.0

ENV_LEASE_TTL = "REPRO_LEASE_TTL"
ENV_LEASE_WAIT = "REPRO_LEASE_WAIT"

#: Sub-directory of a kernel-store root that holds the lease tree.  Not a
#: two-hex shard name and not a key name, so the store's migration scan,
#: ``keys()``, and ``purge()`` all ignore it.
LEASE_DIRNAME = ".leases"


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


@dataclass(frozen=True)
class Lease:
    """A held lease: the proof of leadership for one key."""

    key: str
    path: str
    token: str
    expires_at: float


class LeaseManager:
    """Filesystem leases giving :class:`DiskKernelStore` users one
    generation per key across any number of processes.

    Thread-safe; one manager per service instance is the intended shape
    (every worker process of a pool builds its own manager over the same
    root).  ``ttl_s`` bounds how long a crashed holder can delay a key;
    ``wait_s`` bounds how long a follower coalesces before falling back
    to generating itself.
    """

    def __init__(self, root: str, ttl_s: Optional[float] = None,
                 wait_s: Optional[float] = None,
                 poll_interval_s: float = 0.02):
        self.root = os.path.abspath(root)
        self.ttl_s = ttl_s if ttl_s is not None \
            else _env_float(ENV_LEASE_TTL, DEFAULT_TTL_S)
        self.wait_s = wait_s if wait_s is not None \
            else _env_float(ENV_LEASE_WAIT, DEFAULT_WAIT_S)
        if self.ttl_s <= 0:
            raise StoreError(f"lease ttl must be positive, got {self.ttl_s}")
        if self.wait_s < 0:
            raise StoreError(f"lease wait must be >= 0, got {self.wait_s}")
        self.poll_interval_s = poll_interval_s
        self.host = socket.gethostname()
        try:
            os.makedirs(self.root, exist_ok=True)
        except OSError as exc:
            raise StoreError(f"cannot create lease root {self.root!r}: {exc}")
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {
            "acquired": 0, "adopted": 0, "reaped": 0,
            "wait_timeouts": 0, "released": 0}

    @classmethod
    def for_store(cls, store: object, **kwargs) -> "LeaseManager":
        """The conventional manager for a disk store: leases live in
        ``<store_root>/.leases``, invisible to the store's own scans."""
        root = getattr(store, "root", None)
        if not root:
            raise StoreError(
                f"{type(store).__name__} has no on-disk root; "
                f"cross-process leases need a shared filesystem store")
        return cls(os.path.join(root, LEASE_DIRNAME), **kwargs)

    # -- bookkeeping ---------------------------------------------------------

    def _note(self, counter: str, delta: int = 1) -> None:
        with self._lock:
            self._counters[counter] += delta

    def stats(self) -> Dict[str, object]:
        """Counters plus configuration, JSON-able (``GET /stats``)."""
        with self._lock:
            doc: Dict[str, object] = dict(self._counters)
        doc["root"] = self.root
        doc["ttl_s"] = self.ttl_s
        doc["wait_s"] = self.wait_s
        return doc

    # -- lease files ---------------------------------------------------------

    def _lease_path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.lease")

    def _read_stamp(self, path: str) -> Optional[Dict[str, object]]:
        """The stamp at ``path``, or None when absent/unreadable.  An
        undecodable stamp (a torn write from a foreign implementation --
        ours are linked atomically) is treated as expired-at-zero so it
        gets reaped rather than wedging the key."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = handle.read()
        except OSError:
            return None
        try:
            stamp = json.loads(raw)
            if not isinstance(stamp, dict):
                raise ValueError(raw)
        except ValueError:
            return {"pid": -1, "host": "", "token": "<corrupt>",
                    "acquired_at": 0.0, "expires_at": 0.0}
        return stamp

    def _is_stale(self, stamp: Dict[str, object]) -> bool:
        try:
            if time.time() > float(stamp.get("expires_at", 0.0)):
                return True
        except (TypeError, ValueError):
            return True
        # Same-host owners can be liveness-checked directly: a dead pid
        # means a crashed worker and the lease is reapable *now*, without
        # waiting out the ttl.
        if stamp.get("host") == self.host:
            try:
                pid = int(stamp.get("pid", -1))
            except (TypeError, ValueError):
                return True
            if pid <= 0:
                return True
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                return True
            except (PermissionError, OSError):
                pass  # exists (or unknowable): not provably dead
        return False

    def _remove_if(self, path: str,
                   should_remove: Callable[[Dict[str, object]], bool]
                   ) -> bool:
        """Atomically remove the lease at ``path`` iff its *current*
        content satisfies ``should_remove`` (rename-then-verify; see the
        module docstring).  Returns True when a lease was removed."""
        staged = f"{path}.rm-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        try:
            os.replace(path, staged)
        except OSError:
            return False  # already gone, or being removed by someone else
        stamp = self._read_stamp(staged)
        if stamp is not None and should_remove(stamp):
            try:
                os.unlink(staged)
            except OSError:
                pass
            return True
        # We displaced a lease we must not remove: put it back unless a
        # newer lease has already taken the slot (then the displaced
        # holder simply loses coalescing, never correctness).
        try:
            os.link(staged, path)
        except OSError:
            pass
        try:
            os.unlink(staged)
        except OSError:
            pass
        return False

    # -- acquire / release ---------------------------------------------------

    def try_acquire(self, key: str) -> Optional[Lease]:
        """One non-blocking acquisition attempt (reaping a stale holder
        counts as part of the attempt).  Returns the lease on success."""
        path = self._lease_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        for attempt in range(2):
            token = uuid.uuid4().hex
            expires_at = time.time() + self.ttl_s
            stamp = {"pid": os.getpid(), "host": self.host, "token": token,
                     "acquired_at": time.time(), "expires_at": expires_at}
            staged = f"{path}.new-{os.getpid()}-{token[:8]}"
            with open(staged, "w", encoding="utf-8") as handle:
                json.dump(stamp, handle)
            try:
                os.link(staged, path)
            except OSError as exc:
                if exc.errno not in (errno.EEXIST,):
                    os.unlink(staged)
                    raise StoreError(
                        f"cannot create lease {path!r}: {exc}")
                os.unlink(staged)
                # Held.  Reap-and-retry once if the holder is stale.
                current = self._read_stamp(path)
                if (attempt == 0 and current is not None
                        and self._is_stale(current)
                        and self.reap(key, current)):
                    continue
                return None
            else:
                os.unlink(staged)
                self._note("acquired")
                return Lease(key=key, path=path, token=token,
                             expires_at=expires_at)
        return None

    def release(self, lease: Lease) -> None:
        """Give the key up.  Removes the lease file only when it is still
        *ours* -- if we overstayed the ttl and were reaped, the file may
        already belong to a successor and must be left alone."""
        removed = self._remove_if(
            lease.path,
            lambda stamp: stamp.get("token") == lease.token)
        if removed:
            self._note("released")

    def reap(self, key: str, stale_stamp: Dict[str, object]) -> bool:
        """Remove ``key``'s lease if it still carries ``stale_stamp``'s
        token and is still stale.  Returns True when reaped."""
        removed = self._remove_if(
            self._lease_path(key),
            lambda stamp: (stamp.get("token") == stale_stamp.get("token")
                           and self._is_stale(stamp)))
        if removed:
            self._note("reaped")
        return removed

    def holder(self, key: str) -> Optional[Dict[str, object]]:
        """The current lease stamp for ``key`` (monitoring), or None."""
        return self._read_stamp(self._lease_path(key))

    # -- the single-flight orchestration ------------------------------------

    def coalesce(self, key: str,
                 probe: Callable[[], Optional[object]],
                 generate: Callable[[], object]
                 ) -> "tuple[object, bool]":
        """Resolve one store miss with at most one generation across
        processes.

        ``probe`` re-checks the shared store (cheap, side-effect free as
        far as this layer cares); ``generate`` runs the pipeline *and
        commits the artifact to the store* before returning.  Returns
        ``(result, adopted)`` where ``adopted`` is True when another
        process's generation was reused.
        """
        deadline = time.monotonic() + self.wait_s
        while True:
            lease = self.try_acquire(key)
            if lease is not None:
                try:
                    result = probe()
                    if result is not None:
                        # Published between our miss and our acquisition.
                        self._note("adopted")
                        return result, True
                    return generate(), False
                finally:
                    self.release(lease)
            outcome = self._follow(key, probe, deadline)
            if outcome is not None:
                return outcome, True
            if time.monotonic() >= deadline:
                # Wedge-proof fallback: duplicated work, correct result.
                self._note("wait_timeouts")
                return generate(), False
            # Lease vanished or was reaped: loop and re-contend.

    def _follow(self, key: str,
                probe: Callable[[], Optional[object]],
                deadline: float) -> Optional[object]:
        """Wait for the current holder to publish.  Returns the adopted
        artifact, or None when the caller should re-contend (lease gone
        or reaped) or has run out of time (checked by the caller)."""
        path = self._lease_path(key)
        while time.monotonic() < deadline:
            result = probe()
            if result is not None:
                self._note("adopted")
                return result
            stamp = self._read_stamp(path)
            if stamp is None:
                # Released (or crashed pre-commit): one last probe before
                # re-contending, so a release-after-commit is adopted.
                result = probe()
                if result is not None:
                    self._note("adopted")
                    return result
                return None
            if self._is_stale(stamp):
                self.reap(key, stamp)
                return None
            time.sleep(self.poll_interval_s)
        return None
