"""Named-workload registry: request the paper's computations by name.

The applications layer (:mod:`repro.applications.cases`) defines the
benchmark computations as factories over a size parameter.  The registry
gives them stable, CLI-friendly addresses -- ``"potrf:12"``,
``"kf:8x4"`` -- and turns them into service requests, so the cache can be
warmed, queried, and purged without writing any LA source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..applications.cases import (APPLICATION_CASES, HLAC_CASES,
                                  BenchmarkCase, all_case_names, make_case)
from ..bench.harness import application_sizes, hlac_sizes
from ..errors import ServiceError
from ..slingen.options import Options
from .service import GenerationRequest


@dataclass(frozen=True)
class WorkloadSpec:
    """One concrete workload: a named case at a fixed size (and, for the
    Kalman filter, an optional observation count ``k``)."""

    name: str
    size: int
    k: Optional[int] = None

    @property
    def label(self) -> str:
        if self.k is not None:
            return f"{self.name}:{self.size}x{self.k}"
        return f"{self.name}:{self.size}"


def workload_names() -> List[str]:
    """Every case name the registry can serve."""
    return all_case_names()


def parse_spec(text: str) -> WorkloadSpec:
    """Parse ``"name:size"`` or ``"name:sizexk"`` into a spec."""
    name, sep, tail = text.partition(":")
    name = name.strip()
    if name not in workload_names():
        raise ServiceError(
            f"unknown workload {name!r}; known: {', '.join(workload_names())}")
    if not sep or not tail.strip():
        raise ServiceError(
            f"workload {text!r} is missing a size (use e.g. {name!r}:8)")
    tail = tail.strip()
    try:
        if "x" in tail:
            size_text, k_text = tail.split("x", 1)
            return WorkloadSpec(name, int(size_text), int(k_text))
        return WorkloadSpec(name, int(tail))
    except ValueError:
        raise ServiceError(f"bad size in workload spec {text!r}")


def build_case(spec: WorkloadSpec) -> BenchmarkCase:
    """Instantiate the benchmark case a spec names."""
    return make_case(spec.name, spec.size, spec.k)


def default_sizes(name: str) -> List[int]:
    """The size sweep a bare workload name expands to (the same reduced
    grids the benchmark figures use; ``REPRO_FULL_SIZES=1`` widens them)."""
    if name in HLAC_CASES:
        return hlac_sizes()
    if name in APPLICATION_CASES or name == "kf-28":
        return application_sizes()
    raise ServiceError(f"unknown workload {name!r}")


def make_request(spec: "WorkloadSpec | str",
                 options: Optional[Options] = None) -> GenerationRequest:
    """Turn a spec (or its text form) into a service request."""
    if isinstance(spec, str):
        spec = parse_spec(spec)
    case = build_case(spec)
    request = GenerationRequest.from_case(case, options=options)
    request.label = spec.label
    return request


def sweep_requests(specs: Optional[Sequence[str]] = None,
                   options: Optional[Options] = None
                   ) -> List[GenerationRequest]:
    """Expand spec strings into requests.

    Each entry may be a sized spec (``"potrf:12"``) or a bare name
    (``"potrf"``), which expands to that case's default size sweep.  With no
    argument, every registered workload is expanded -- the full warm set.
    """
    texts = list(specs) if specs else workload_names()
    requests: List[GenerationRequest] = []
    seen: Dict[str, bool] = {}
    for text in texts:
        if ":" in text:
            expanded = [parse_spec(text)]
        else:
            if text not in workload_names():
                raise ServiceError(
                    f"unknown workload {text!r}; "
                    f"known: {', '.join(workload_names())}")
            expanded = [WorkloadSpec(text, size)
                        for size in default_sizes(text)]
        for spec in expanded:
            if spec.label in seen:
                continue
            seen[spec.label] = True
            requests.append(make_request(spec, options=options))
    return requests
