"""Kernel generation as a service.

SLinGen is meant to be invoked once per (program, size, machine) and reused
forever.  This package supplies the serving layer that makes that true in
practice:

* :mod:`~repro.service.keys` -- canonical, version-stamped content keys
  over (LA program, generator options, machine model),
* :mod:`~repro.service.store` -- a persistent, content-addressed kernel
  store (disk backend with atomic writes, corruption-tolerant reads, LRU
  bounds, an in-memory hot layer) behind an abstract ``KernelStore``,
* :mod:`~repro.service.service` -- ``KernelService``: cache-first
  generation with parallel batch misses and hit/miss/latency stats,
* :mod:`~repro.service.registry` -- named workloads ("potrf:12",
  "kf:8x4") mapping the paper's benchmark cases onto service requests,
* :mod:`~repro.service.server` / :mod:`~repro.service.client` -- the
  HTTP serving daemon (``python -m repro.service serve``) and its
  stdlib JSON client,
* :mod:`~repro.service.leases` -- cross-process single-flight: per-key
  lockfile leases with owner/expiry stamps and stale-lease reaping,
* :mod:`~repro.service.pool` -- the pre-forked multi-process worker pool
  behind one listening socket (``serve --workers N``),
* ``python -m repro.service`` -- CLI to warm, query, inspect, purge,
  and serve the cache.
"""

from .client import ServiceClient
from .keys import (KEY_SCHEMA_VERSION, cache_key, canonical_options,
                   canonical_program, machine_fingerprint,
                   request_fingerprint)
from .leases import Lease, LeaseManager
from .pool import WorkerPool
from .registry import (WorkloadSpec, build_case, default_sizes, make_request,
                       parse_spec, sweep_requests, workload_names)
from .server import KernelServer
from .service import (GenerationRequest, KernelService, ServiceResponse,
                      ServiceStats)
from .store import (DiskKernelStore, KernelStore, MemoryKernelStore,
                    default_cache_dir)

__all__ = [
    "KEY_SCHEMA_VERSION", "cache_key", "canonical_options",
    "canonical_program", "machine_fingerprint", "request_fingerprint",
    "WorkloadSpec", "build_case", "default_sizes", "make_request",
    "parse_spec", "sweep_requests", "workload_names",
    "GenerationRequest", "KernelService", "ServiceResponse", "ServiceStats",
    "KernelServer", "ServiceClient",
    "Lease", "LeaseManager", "WorkerPool",
    "DiskKernelStore", "KernelStore", "MemoryKernelStore",
    "default_cache_dir",
]
