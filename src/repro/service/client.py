"""Stdlib HTTP client for the kernel-service daemon.

:class:`ServiceClient` speaks the JSON protocol of
:mod:`repro.service.server` over ``urllib`` -- no dependencies beyond the
standard library, so any Python process (a build system, a notebook, a
load generator) can request kernels from a running daemon:

    >>> client = ServiceClient("http://127.0.0.1:8177")
    >>> client.wait_healthy()
    >>> doc = client.generate(spec="potrf:4")
    >>> doc["cache_hit"], doc["key"][:12], len(doc["c_code"])
    >>> out = client.run(spec="potrf:4", backend="numpy")
    >>> out["outputs"]["U"]          # nested lists, row-major

Server-reported errors (HTTP 4xx/5xx with a JSON ``{"error": ...}`` body)
raise :class:`~repro.errors.ServiceError` carrying the status code and the
daemon's message; a ``503 server busy`` is retried ``busy_retries`` times
with decorrelated-jitter backoff before giving up, so a briefly
saturated daemon looks slow, not broken -- and a herd of clients that
all hit 503 together does not re-stampede it in lockstep.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Dict, Optional

from ..errors import ServiceError


class ServiceClient:
    """A thin JSON client bound to one daemon base URL."""

    def __init__(self, base_url: str, timeout: float = 120.0,
                 busy_retries: int = 12, busy_backoff_s: float = 0.05,
                 busy_backoff_cap_s: float = 1.0,
                 jitter_seed: Optional[int] = None):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.busy_retries = busy_retries
        self.busy_backoff_s = busy_backoff_s
        self.busy_backoff_cap_s = busy_backoff_cap_s
        # Decorrelated jitter (seedable so tests can pin the schedule):
        # each 503 sleeps uniform(base, 3 * previous_sleep), capped.
        self._rng = random.Random(jitter_seed)

    # -- transport -----------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, object]] = None
                 ) -> Dict[str, object]:
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json"})
        attempts = self.busy_retries + 1
        delay = self.busy_backoff_s
        for attempt in range(attempts):
            try:
                with urllib.request.urlopen(request,
                                            timeout=self.timeout) as reply:
                    return json.loads(reply.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                detail = self._error_detail(exc)
                if exc.code == 503 and attempt + 1 < attempts:
                    time.sleep(delay)
                    delay = min(self.busy_backoff_cap_s,
                                self._rng.uniform(self.busy_backoff_s,
                                                  3.0 * delay))
                    continue
                raise ServiceError(
                    f"{method} {path} failed with HTTP {exc.code}: "
                    f"{detail}")
            except urllib.error.URLError as exc:
                raise ServiceError(
                    f"cannot reach kernel server at {self.base_url}: "
                    f"{exc.reason}")
        raise ServiceError(f"{method} {path}: retries exhausted"
                           )  # pragma: no cover - loop always returns/raises

    @staticmethod
    def _error_detail(exc: "urllib.error.HTTPError") -> str:
        try:
            doc = json.loads(exc.read().decode("utf-8"))
            return str(doc.get("error", doc))
        except Exception:
            return exc.reason or "unknown error"

    # -- monitoring ----------------------------------------------------------

    def healthz(self) -> Dict[str, object]:
        return self._request("GET", "/healthz")

    def stats(self) -> Dict[str, object]:
        return self._request("GET", "/stats")

    def wait_healthy(self, timeout: float = 10.0,
                     interval: float = 0.05) -> Dict[str, object]:
        """Poll ``/healthz`` until the daemon answers (or raise)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.healthz()
            except ServiceError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(interval)

    # -- work ----------------------------------------------------------------

    def generate(self, spec: Optional[str] = None,
                 source: Optional[str] = None,
                 constants: Optional[Dict[str, int]] = None,
                 name: Optional[str] = None,
                 nominal_flops: Optional[float] = None,
                 scalar: bool = False,
                 include_code: bool = True) -> Dict[str, object]:
        """``POST /generate``: generate (or cache-hit) one kernel."""
        return self._request("POST", "/generate", self._body(
            spec, source, constants, name, nominal_flops, scalar,
            include_code=include_code))

    def run(self, spec: Optional[str] = None,
            source: Optional[str] = None,
            constants: Optional[Dict[str, int]] = None,
            name: Optional[str] = None,
            nominal_flops: Optional[float] = None,
            scalar: bool = False,
            backend: str = "numpy",
            inputs: Optional[Dict[str, object]] = None,
            seed: Optional[int] = None) -> Dict[str, object]:
        """``POST /run``: generate (or hit) and execute one kernel.

        ``inputs`` maps operand names to nested lists (or anything
        ``np.asarray`` accepts on the server); omitted operands are
        synthesized deterministically from ``seed``.
        """
        body = self._body(spec, source, constants, name, nominal_flops,
                          scalar)
        body["backend"] = backend
        if inputs is not None:
            body["inputs"] = inputs
        if seed is not None:
            body["seed"] = seed
        return self._request("POST", "/run", body)

    @staticmethod
    def _body(spec, source, constants, name, nominal_flops, scalar,
              **extra) -> Dict[str, object]:
        body: Dict[str, object] = dict(extra)
        if spec is not None:
            body["spec"] = spec
        if source is not None:
            body["source"] = source
        if constants is not None:
            body["constants"] = constants
        if name is not None:
            body["name"] = name
        if nominal_flops is not None:
            body["nominal_flops"] = nominal_flops
        if scalar:
            body["scalar"] = True
        return body
