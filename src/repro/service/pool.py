"""The pre-forked worker pool: N processes, one listening socket.

``ThreadingHTTPServer`` gives the daemon request-level concurrency but
one process and one GIL: the pure-Python generation pipeline serializes.
:class:`WorkerPool` removes that cap the classic pre-fork way -- the
parent binds and listens once, forks ``workers`` child processes, and
every child runs the complete :class:`~repro.service.server.KernelServer`
handler stack, ``accept``-ing from the *inherited* socket.  The kernel
hands each new connection to exactly one blocked worker, so load spreads
across processes with no userspace balancer, no extra port, and no
change to the wire protocol.

Each worker builds its own :class:`~repro.service.service.KernelService`
**after** the fork (``service_factory``), so no locks, stats, or hot
caches are shared through fork; what workers share is the content-
addressed disk store -- and its cross-process single-flight layer
(:mod:`repro.service.leases`), which keeps a stampede on one cold key at
exactly one generation across the whole pool.

Lifecycle, run by the parent's monitor loop:

* a worker that dies unexpectedly (OOM kill, segfault, bug) is reaped
  and a replacement is forked within one poll interval -- the pool heals
  itself and ``restarts`` counts the incidents;
* ``shutdown()`` (SIGTERM/SIGINT under the CLI) drains gracefully:
  every worker gets SIGTERM, stops accepting, finishes its in-flight
  requests (handler threads are joined), and exits 0; workers still
  alive after ``grace_s`` are SIGKILLed so a wedged handler cannot block
  shutdown forever.

Workers are forked (``multiprocessing`` ``"fork"`` context): the
listening socket and the warm module state are inherited for free.  On
platforms without ``fork`` the pool refuses to start -- use a single
in-process :class:`KernelServer` there.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import socket
import threading
import time
from typing import Callable, Dict, List, Optional

from ..errors import ServiceError
from .server import DEFAULT_HOST, DEFAULT_PORT, KernelServer
from .service import KernelService


def _worker_main(listen_socket: "socket.socket", index: int,
                 service_factory: Callable[[], KernelService],
                 max_inflight: int, quiet: bool) -> None:
    """Body of one worker process: serve the inherited socket until
    SIGTERM, drain, and exit 0."""
    service = service_factory()
    server = KernelServer(service, max_inflight=max_inflight, quiet=quiet,
                          listen_socket=listen_socket,
                          worker_info={"index": index, "pid": os.getpid()})

    def _stop(signum, frame):
        # shutdown() blocks until the accept loop exits; it must not run
        # on the signal-handling (main) thread, which serve_forever owns.
        threading.Thread(target=server.httpd.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _stop)
    signal.signal(signal.SIGINT, _stop)
    server.serve_forever()


class WorkerPool:
    """A listening socket shared by ``workers`` pre-forked daemon
    processes (see the module docstring).

    ``service_factory`` is called once *inside each worker* to build its
    service; make it construct a :class:`DiskKernelStore` (shared root)
    plus a :class:`~repro.service.leases.LeaseManager` so the pool keeps
    the one-generation-per-key guarantee across processes.
    """

    def __init__(self, service_factory: Callable[[], KernelService],
                 workers: int = 2, host: str = DEFAULT_HOST,
                 port: int = DEFAULT_PORT, max_inflight: int = 8,
                 quiet: bool = False, grace_s: float = 10.0,
                 backlog: int = 128):
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        try:
            self._mp = multiprocessing.get_context("fork")
        except ValueError:
            raise ServiceError(
                "the pre-forked worker pool needs the 'fork' start "
                "method; run a single in-process KernelServer instead")
        self.service_factory = service_factory
        self.workers = workers
        self.max_inflight = max_inflight
        self.quiet = quiet
        self.grace_s = grace_s
        self.restarts = 0
        self.started_at = time.monotonic()
        self._draining = threading.Event()
        self._finished = threading.Event()
        self._shutdown_lock = threading.Lock()
        self._final_summary: Optional[Dict[str, object]] = None
        self._monitor: Optional[threading.Thread] = None
        self._procs: List[Optional[multiprocessing.Process]] = \
            [None] * workers
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            self._sock.bind((host, port))
            self._sock.listen(backlog)
        except OSError as exc:
            self._sock.close()
            raise ServiceError(f"cannot listen on {host}:{port}: {exc}")

    # -- addressing ----------------------------------------------------------

    @property
    def host(self) -> str:
        return self._sock.getsockname()[0]

    @property
    def port(self) -> int:
        return self._sock.getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle -----------------------------------------------------------

    def _spawn(self, index: int) -> "multiprocessing.Process":
        proc = self._mp.Process(
            target=_worker_main,
            args=(self._sock, index, self.service_factory,
                  self.max_inflight, self.quiet),
            name=f"kernel-worker-{index}", daemon=False)
        proc.start()
        return proc

    def start(self) -> "WorkerPool":
        """Fork the workers and the monitor thread; returns immediately
        (the parent keeps running -- call :meth:`wait` to block)."""
        if self._monitor is not None:
            raise ServiceError("worker pool is already running")
        for index in range(self.workers):
            self._procs[index] = self._spawn(index)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="kernel-pool-monitor",
            daemon=True)
        self._monitor.start()
        return self

    def _monitor_loop(self, poll_interval_s: float = 0.1) -> None:
        """Reap dead workers and fork replacements until shutdown."""
        while not self._draining.is_set():
            for index, proc in enumerate(self._procs):
                if proc is None or proc.is_alive():
                    continue
                proc.join(timeout=0)
                if self._draining.is_set():
                    break
                self.restarts += 1
                self._procs[index] = self._spawn(index)
            self._draining.wait(poll_interval_s)

    def worker_pids(self) -> List[int]:
        """PIDs of the currently live workers."""
        return [proc.pid for proc in self._procs
                if proc is not None and proc.is_alive()
                and proc.pid is not None]

    def wait(self) -> None:
        """Block until a :meth:`shutdown` (e.g. from a signal handler's
        thread) has completed the drain (CLI serve loop)."""
        self._finished.wait()

    def shutdown(self) -> Dict[str, object]:
        """Graceful drain: SIGTERM every worker, join within the grace
        budget, SIGKILL stragglers, close the socket.  Idempotent and
        safe to call from several threads: late callers block until the
        first drain finishes and get the same summary."""
        with self._shutdown_lock:
            if self._final_summary is not None:
                return self._final_summary
            self._draining.set()
            for proc in self._procs:
                if proc is not None and proc.is_alive():
                    try:
                        os.kill(proc.pid, signal.SIGTERM)
                    except (OSError, TypeError):
                        pass
            deadline = time.monotonic() + self.grace_s
            killed = 0
            for proc in self._procs:
                if proc is None:
                    continue
                proc.join(timeout=max(0.0, deadline - time.monotonic()))
                if proc.is_alive():
                    proc.kill()
                    proc.join(timeout=5)
                    killed += 1
            if self._monitor is not None:
                self._monitor.join(timeout=5)
                self._monitor = None
            self._sock.close()
            self._final_summary = self._summary(killed=killed)
            self._finished.set()
            return self._final_summary

    def _summary(self, killed: int = 0) -> Dict[str, object]:
        exit_codes = [proc.exitcode for proc in self._procs
                      if proc is not None]
        return {"workers": self.workers, "restarts": self.restarts,
                "killed": killed, "exit_codes": exit_codes,
                "uptime_s": time.monotonic() - self.started_at}

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
