"""LA language frontend: tokenizer and parser (paper Fig. 4)."""

from .lexer import Token, tokenize
from .parser import Parser, parse_program

__all__ = ["Token", "tokenize", "Parser", "parse_program"]
