"""Tokenizer for the LA input language (paper Fig. 4)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from ..errors import LASyntaxError

KEYWORDS = {"Mat", "Vec", "Sca", "In", "Out", "InOut", "for", "ow",
            "trans", "inv", "sqrt",
            "LoTri", "UpTri", "UpSym", "LoSym", "PD", "NS", "UnitDiag"}

SYMBOLS = ("<=", ">=", "==", "(", ")", "{", "}", "<", ">", ",", ";", "=",
           "+", "-", "*", "/", "'", ":")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: str          # 'id', 'int', 'float', 'keyword', or the symbol itself
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.kind!r}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> List[Token]:
    """Tokenize LA source text; raises :class:`LASyntaxError` on bad input."""
    tokens: List[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(source)

    while index < length:
        char = source[index]
        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if char == "#" or source.startswith("//", index):
            while index < length and source[index] != "\n":
                index += 1
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (source[index].isalnum()
                                      or source[index] == "_"):
                index += 1
            text = source[start:index]
            kind = "keyword" if text in KEYWORDS else "id"
            tokens.append(Token(kind, text, line, column))
            column += index - start
            continue
        if char.isdigit():
            start = index
            while index < length and (source[index].isdigit()
                                      or source[index] == "."):
                index += 1
            text = source[start:index]
            kind = "float" if "." in text else "int"
            tokens.append(Token(kind, text, line, column))
            column += index - start
            continue
        matched = None
        for symbol in SYMBOLS:
            if source.startswith(symbol, index):
                matched = symbol
                break
        if matched is None:
            raise LASyntaxError(f"unexpected character {char!r}", line, column)
        tokens.append(Token(matched, matched, line, column))
        index += len(matched)
        column += len(matched)

    tokens.append(Token("eof", "", line, column))
    return tokens
