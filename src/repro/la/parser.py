"""Recursive-descent parser for the LA language (paper Fig. 4).

The parser builds a :class:`~repro.ir.program.Program` directly, performing
semantic checks (declared operands, dimension compatibility, output
annotations) as it goes.  Operand sizes may be integer literals or names
bound through the ``constants`` argument, which is how the paper's programs
are parameterized by ``n`` and ``k``.

Syntax summary (MATLAB-flavoured, as in Fig. 5 of the paper)::

    Mat H(k, n) <In>;
    Mat S(k, k) <Out, UpSym, PD>;
    Mat U(k, k) <Out, UpTri, NS, ow(S)>;
    Vec x(n) <InOut>;
    Sca alpha <In>;

    S = H * P * H' + R;          # sBLAC (transpose is ' or trans(.))
    U' * U = S;                  # HLAC: equation form
    X = inv(L);                  # HLAC: triangular inverse
    for (i = 0:4) { ... }        # fixed-trip-count loop (unrolled)
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import LASemanticError, LASyntaxError
from ..ir.expr import (Const, Div, Expr, Inverse, Mul, Neg, Ref, Sqrt, Sub,
                       Transpose, Add)
from ..ir.operands import IOType, Operand, View
from ..ir.program import Assign, Equation, ForLoop, Program, Statement
from ..ir.properties import Properties
from .lexer import Token, tokenize


class Parser:
    """Parses LA source text into a Program."""

    def __init__(self, source: str, constants: Optional[Dict[str, int]] = None,
                 name: str = "la_program"):
        self.tokens = tokenize(source)
        self.position = 0
        self.constants = dict(constants or {})
        self.program = Program(name, constants=dict(self.constants))

    # -- token helpers ------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.position + offset, len(self.tokens) - 1)]

    def _advance(self) -> Token:
        token = self._peek()
        self.position += 1
        return token

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self._peek()
        if token.kind != kind or (text is not None and token.text != text):
            expected = text or kind
            raise LASyntaxError(f"expected {expected!r}, got {token.text!r}",
                                token.line, token.column)
        return self._advance()

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        token = self._peek()
        if token.kind == kind and (text is None or token.text == text):
            return self._advance()
        return None

    # -- entry point ---------------------------------------------------------------

    def parse(self) -> Program:
        while self._peek().kind != "eof":
            token = self._peek()
            if token.kind == "keyword" and token.text in ("Mat", "Vec", "Sca"):
                self._parse_declaration()
            else:
                self.program.statements.append(self._parse_statement())
        self.program.validate()
        return self.program

    # -- declarations ----------------------------------------------------------------

    def _parse_size(self) -> int:
        token = self._advance()
        if token.kind == "int":
            return int(token.text)
        if token.kind == "id":
            if token.text not in self.constants:
                raise LASemanticError(
                    f"size constant {token.text!r} is not bound (pass it via "
                    f"the constants argument)")
            return int(self.constants[token.text])
        raise LASyntaxError(f"expected a size, got {token.text!r}", token.line,
                            token.column)

    def _parse_declaration(self) -> None:
        kind = self._advance().text
        name = self._expect("id").text
        rows = cols = 1
        if kind in ("Mat", "Vec"):
            self._expect("(")
            rows = self._parse_size()
            if kind == "Mat":
                self._expect(",")
                cols = self._parse_size()
            else:
                if self._accept(","):
                    cols = self._parse_size()
                    if cols != 1:
                        raise LASemanticError(
                            f"vector {name!r} must have a single column")
            self._expect(")")
        self._expect("<")
        io_token = self._expect("keyword")
        try:
            io = IOType(io_token.text)
        except ValueError:
            raise LASyntaxError(f"expected In/Out/InOut, got {io_token.text!r}",
                                io_token.line, io_token.column)
        annotations: List[str] = []
        overwrites: Optional[str] = None
        while self._accept(","):
            token = self._peek()
            if token.kind == "keyword" and token.text == "ow":
                self._advance()
                self._expect("(")
                overwrites = self._expect("id").text
                self._expect(")")
            elif token.kind == "keyword":
                annotations.append(self._advance().text)
            else:
                raise LASyntaxError(f"unexpected token {token.text!r} in "
                                    f"declaration", token.line, token.column)
        self._expect(">")
        self._expect(";")
        try:
            properties = Properties.from_annotations(annotations)
        except ValueError as error:
            raise LASemanticError(str(error))
        operand = Operand(name, rows, cols, io, properties,
                          overwrites=overwrites)
        self.program.declare(operand)

    # -- statements ------------------------------------------------------------------

    def _parse_statement(self) -> Statement:
        if self._peek().kind == "keyword" and self._peek().text == "for":
            return self._parse_for()
        lhs = self._parse_expression()
        self._expect("=")
        rhs = self._parse_expression()
        self._expect(";")
        if isinstance(lhs, Ref) and lhs.view.is_full:
            if not lhs.view.operand.is_output:
                raise LASemanticError(
                    f"cannot assign to input operand "
                    f"{lhs.view.operand.name!r}")
            return Assign(lhs.view, rhs)
        return Equation(lhs, rhs)

    def _parse_for(self) -> ForLoop:
        self._expect("keyword", "for")
        self._expect("(")
        var = self._expect("id").text
        self._expect("=")
        start = int(self._expect("int").text)
        self._expect(":")
        stop = int(self._expect("int").text)
        step = 1
        if self._accept(":"):
            step = stop
            stop = int(self._expect("int").text)
        self._expect(")")
        self._expect("{")
        body: List[Statement] = []
        while not self._accept("}"):
            body.append(self._parse_statement())
        return ForLoop(var, start, stop, step, body)

    # -- expressions -----------------------------------------------------------------

    def _parse_expression(self) -> Expr:
        expr = self._parse_term()
        while True:
            if self._accept("+"):
                expr = Add(expr, self._parse_term())
            elif self._accept("-"):
                expr = Sub(expr, self._parse_term())
            else:
                return expr

    def _parse_term(self) -> Expr:
        expr = self._parse_factor()
        while True:
            if self._accept("*"):
                expr = Mul(expr, self._parse_factor())
            elif self._accept("/"):
                expr = Div(expr, self._parse_factor())
            else:
                return expr

    def _parse_factor(self) -> Expr:
        if self._accept("-"):
            return Neg(self._parse_factor())
        expr = self._parse_primary()
        while self._accept("'"):
            expr = Transpose(expr)
        return expr

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.kind in ("int", "float"):
            self._advance()
            return Const(float(token.text))
        if token.kind == "keyword" and token.text in ("trans", "inv", "sqrt"):
            self._advance()
            self._expect("(")
            inner = self._parse_expression()
            self._expect(")")
            if token.text == "trans":
                return Transpose(inner)
            if token.text == "inv":
                return Inverse(inner)
            return Sqrt(inner)
        if token.kind == "(":
            self._advance()
            inner = self._parse_expression()
            self._expect(")")
            return inner
        if token.kind == "id":
            self._advance()
            if token.text in self.constants:
                return Const(float(self.constants[token.text]))
            if token.text not in self.program.operands:
                raise LASemanticError(
                    f"use of undeclared operand {token.text!r} at line "
                    f"{token.line}")
            return Ref(self.program.operands[token.text].full_view())
        raise LASyntaxError(f"unexpected token {token.text!r}", token.line,
                            token.column)


def parse_program(source: str, constants: Optional[Dict[str, int]] = None,
                  name: str = "la_program") -> Program:
    """Parse LA source text into a validated :class:`Program`."""
    return Parser(source, constants, name).parse()
