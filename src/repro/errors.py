"""Exception hierarchy for the repro (SLinGen reproduction) package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch a single exception type at the API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ConfigurationError(ReproError):
    """Raised when user-facing options fail validation."""


class ServiceError(ReproError):
    """Raised by the kernel-generation service layer."""


class StoreError(ServiceError):
    """Raised on unrecoverable kernel-store failures (e.g. unusable root)."""


class LAError(ReproError):
    """Errors related to the LA input language."""


class LASyntaxError(LAError):
    """Raised by the lexer/parser on malformed LA source.

    Attributes
    ----------
    line, column:
        1-based source position of the offending token (0 when unknown).
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"line {line}, col {column}: {message}"
        super().__init__(message)


class LASemanticError(LAError):
    """Raised by semantic analysis on a well-formed but invalid program."""


class DimensionError(ReproError):
    """Raised when operand dimensions are incompatible in an expression."""


class StructureError(ReproError):
    """Raised when matrix structure annotations are inconsistent."""


class SynthesisError(ReproError):
    """Raised when Cl1ck-style algorithm synthesis fails for an HLAC."""


class UnsupportedHLACError(SynthesisError):
    """Raised when an HLAC does not match any known operation pattern."""


class LoweringError(ReproError):
    """Raised when an sBLAC cannot be lowered to C-IR."""


class CIRError(ReproError):
    """Raised on malformed C-IR or failed C-IR passes."""


class InterpreterError(ReproError):
    """Raised when the C-IR interpreter encounters an invalid program."""


class BackendError(ReproError):
    """Raised by the C backends (unparsing or compilation failures)."""


class MachineModelError(ReproError):
    """Raised by the machine/performance model."""


class AutotuningError(ReproError):
    """Raised when autotuning cannot find any working candidate."""


class MeasurementError(AutotuningError):
    """Raised when an empirical measurement backend cannot score a kernel
    (no compiler, failed timing run, unknown backend name)."""


class TuningDBError(AutotuningError):
    """Raised on unrecoverable tuning-database failures (unusable root)."""


class FuzzError(ReproError):
    """Raised by the differential fuzzer on malformed cases or corpora."""


class CegisError(ReproError):
    """Raised by the verified-optimization tier (unknown rewrite ids,
    mismatched verification targets, unusable fix-bank roots)."""


class PerfError(ReproError):
    """Raised by the continuous-performance subsystem (malformed
    manifests, unusable trajectory files, structurally invalid runs)."""


class AnalysisError(ReproError):
    """Raised when the static verifier rejects a pipeline artifact.

    Only strict-mode gating raises (``Options.analysis == "strict"``);
    warn mode records diagnostics without interrupting generation.  The
    message carries the error diagnostics of the failing
    :class:`repro.analysis.AnalysisReport`.
    """
