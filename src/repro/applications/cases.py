"""The paper's benchmark computations as LA programs + reference oracles.

Each :class:`BenchmarkCase` bundles

* the LA source program (exercising the frontend of Fig. 4/5),
* the nominal flop count used on the y-axis of the paper's plots,
* an input generator producing well-conditioned random operands, and
* a reference oracle (numpy/scipy) producing the expected outputs.

Cases cover the four HLACs of Table 3 (potrf, trsyl, trlya, trtri) and the
three applications of Fig. 13 (kf, gpr, l1a) plus the kf-28 sweep of
Fig. 15b.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..ir.program import Program
from ..kernels import reference as ref
from ..la import parse_program


@dataclass
class BenchmarkCase:
    """One benchmark computation: program, inputs, oracle, cost."""

    name: str
    program: Program
    nominal_flops: float
    make_inputs: Callable[[int], Dict[str, np.ndarray]]
    reference: Callable[[Dict[str, np.ndarray]], Dict[str, np.ndarray]]
    #: outputs to check and how ("full", "lower", "upper")
    checked_outputs: Dict[str, str] = field(default_factory=dict)
    size: int = 0
    kind: str = "hlac"

    def reference_outputs(self, inputs: Dict[str, np.ndarray]
                          ) -> Dict[str, np.ndarray]:
        return self.reference(inputs)


# ---------------------------------------------------------------------------
# HLAC cases (Table 3)
# ---------------------------------------------------------------------------


def potrf_case(n: int) -> BenchmarkCase:
    """Cholesky decomposition ``X^T X = A`` with X upper triangular."""
    source = """
    Mat S(n, n) <In, UpSym, PD>;
    Mat U(n, n) <Out, UpTri, NS>;
    U' * U = S;
    """
    program = parse_program(source, {"n": n}, name=f"potrf_{n}")

    def make_inputs(seed: int) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        return {"S": ref.random_spd(n, rng)}

    def oracle(inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        return {"U": ref.potrf_upper(inputs["S"])}

    return BenchmarkCase(name="potrf", program=program,
                         nominal_flops=ref.cost_potrf(n),
                         make_inputs=make_inputs, reference=oracle,
                         checked_outputs={"U": "upper"}, size=n, kind="hlac")


def gemm_case(n: int) -> BenchmarkCase:
    """Matrix multiply-accumulate ``C = A B + C`` (the workhorse sBLAC)."""
    source = """
    Mat A(n, n) <In>;
    Mat B(n, n) <In>;
    Mat C(n, n) <InOut>;
    C = A * B + C;
    """
    program = parse_program(source, {"n": n}, name=f"gemm_{n}")

    def make_inputs(seed: int) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        return {"A": rng.standard_normal((n, n)),
                "B": rng.standard_normal((n, n)),
                "C": rng.standard_normal((n, n))}

    def oracle(inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        return {"C": inputs["A"] @ inputs["B"] + inputs["C"]}

    return BenchmarkCase(name="gemm", program=program,
                         nominal_flops=ref.cost_gemm(n),
                         make_inputs=make_inputs, reference=oracle,
                         checked_outputs={"C": "full"}, size=n, kind="hlac")


def trsm_case(n: int) -> BenchmarkCase:
    """Triangular solve with matrix right-hand side ``L X = B``."""
    source = """
    Mat L(n, n) <In, LoTri, NS>;
    Mat B(n, n) <In>;
    Mat X(n, n) <Out>;
    L * X = B;
    """
    program = parse_program(source, {"n": n}, name=f"trsm_{n}")

    def make_inputs(seed: int) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        return {"L": ref.random_lower_triangular(n, rng),
                "B": rng.standard_normal((n, n))}

    def oracle(inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        return {"X": ref.trsm(inputs["L"], inputs["B"], lower=True)}

    return BenchmarkCase(name="trsm", program=program,
                         nominal_flops=ref.cost_trsm(n, n),
                         make_inputs=make_inputs, reference=oracle,
                         checked_outputs={"X": "full"}, size=n, kind="hlac")


def trsyl_case(n: int) -> BenchmarkCase:
    """Triangular Sylvester equation ``L X + X U = C``."""
    source = """
    Mat L(n, n) <In, LoTri, NS>;
    Mat U(n, n) <In, UpTri, NS>;
    Mat C(n, n) <In>;
    Mat X(n, n) <Out>;
    L * X + X * U = C;
    """
    program = parse_program(source, {"n": n}, name=f"trsyl_{n}")

    def make_inputs(seed: int) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        return {"L": ref.random_lower_triangular(n, rng),
                "U": ref.random_upper_triangular(n, rng),
                "C": rng.standard_normal((n, n))}

    def oracle(inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        return {"X": ref.trsyl(inputs["L"], inputs["U"], inputs["C"])}

    return BenchmarkCase(name="trsyl", program=program,
                         nominal_flops=ref.cost_trsyl(n),
                         make_inputs=make_inputs, reference=oracle,
                         checked_outputs={"X": "full"}, size=n, kind="hlac")


def trlya_case(n: int) -> BenchmarkCase:
    """Triangular Lyapunov equation ``L X + X L^T = S`` (X symmetric)."""
    source = """
    Mat L(n, n) <In, LoTri, NS>;
    Mat S(n, n) <In, UpSym>;
    Mat X(n, n) <Out, UpSym>;
    L * X + X * L' = S;
    """
    program = parse_program(source, {"n": n}, name=f"trlya_{n}")

    def make_inputs(seed: int) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        sym = rng.standard_normal((n, n))
        return {"L": ref.random_lower_triangular(n, rng),
                "S": sym + sym.T}

    def oracle(inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        return {"X": ref.trlya(inputs["L"], inputs["S"])}

    return BenchmarkCase(name="trlya", program=program,
                         nominal_flops=ref.cost_trlya(n),
                         make_inputs=make_inputs, reference=oracle,
                         checked_outputs={"X": "full"}, size=n, kind="hlac")


def trtri_case(n: int) -> BenchmarkCase:
    """Triangular matrix inversion ``X = L^{-1}``."""
    source = """
    Mat L(n, n) <In, LoTri, NS>;
    Mat X(n, n) <Out, LoTri, NS>;
    X = inv(L);
    """
    program = parse_program(source, {"n": n}, name=f"trtri_{n}")

    def make_inputs(seed: int) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        return {"L": ref.random_lower_triangular(n, rng)}

    def oracle(inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        return {"X": ref.trtri(inputs["L"], lower=True)}

    return BenchmarkCase(name="trtri", program=program,
                         nominal_flops=ref.cost_trtri(n),
                         make_inputs=make_inputs, reference=oracle,
                         checked_outputs={"X": "lower"}, size=n, kind="hlac")


# ---------------------------------------------------------------------------
# Application cases (Fig. 13)
# ---------------------------------------------------------------------------


KF_SOURCE = """
Mat F(n, n) <In>;
Mat B(n, n) <In>;
Mat Q(n, n) <In, UpSym>;
Mat H(k, n) <In>;
Mat R(k, k) <In, UpSym, PD>;
Mat P(n, n) <InOut, UpSym, PD>;
Vec u(n) <In>;
Vec x(n) <InOut>;
Vec z(k) <In>;
Vec y(n) <Out>;
Mat Y(n, n) <Out>;
Vec v0(k) <Out>;
Mat M1(k, n) <Out>;
Mat M2(n, k) <Out>;
Mat M3(k, k) <Out, UpSym, PD>;
Mat U(k, k) <Out, UpTri, NS, ow(M3)>;
Vec v1(k) <Out>;
Vec v2(k) <Out>;
Mat M4(k, n) <Out>;
Mat M5(k, n) <Out>;

y = F * x + B * u;
Y = F * P * F' + Q;
v0 = z - H * y;
M1 = H * Y;
M2 = Y * H';
M3 = M1 * H' + R;
U' * U = M3;
U' * v1 = v0;
U * v2 = v1;
U' * M4 = M1;
U * M5 = M4;
x = y + M2 * v2;
P = Y - M2 * M5;
"""


def kf_case(n: int, k: Optional[int] = None) -> BenchmarkCase:
    """One Kalman-filter iteration with ``n`` states and ``k`` observations."""
    k = n if k is None else k
    program = parse_program(KF_SOURCE, {"n": n, "k": k}, name=f"kf_{n}_{k}")

    def make_inputs(seed: int) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        return {
            "F": np.eye(n) + 0.1 * rng.standard_normal((n, n)),
            "B": rng.standard_normal((n, n)) / np.sqrt(n),
            "Q": ref.random_spd(n, rng) * 0.1,
            "H": rng.standard_normal((k, n)) / np.sqrt(n),
            "R": ref.random_spd(k, rng),
            "P": ref.random_spd(n, rng),
            "u": rng.standard_normal((n, 1)),
            "x": rng.standard_normal((n, 1)),
            "z": rng.standard_normal((k, 1)),
        }

    def oracle(inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        out = ref.kalman_filter_step(inputs)
        return {"x": out["x"], "P": out["P"]}

    return BenchmarkCase(name="kf" if k == n else "kf-28", program=program,
                         nominal_flops=ref.cost_kf(n, k),
                         make_inputs=make_inputs, reference=oracle,
                         checked_outputs={"x": "full", "P": "full"},
                         size=n if k == n else k, kind="application")


GPR_SOURCE = """
Mat K(n, n) <In, UpSym, PD>;
Mat X(n, n) <In>;
Vec x(n) <In>;
Vec y(n) <In>;
Mat L(n, n) <Out, LoTri, NS>;
Vec t0(n) <Out>;
Vec t1(n) <Out>;
Vec ks(n) <Out>;
Vec v(n) <Out>;
Sca phi <Out>;
Sca psi <Out>;
Sca lambda <Out>;

L * L' = K;
L * t0 = y;
L' * t1 = t0;
ks = X * x;
phi = ks' * t1;
L * v = ks;
psi = x' * x - v' * v;
lambda = y' * t1;
"""


def gpr_case(n: int) -> BenchmarkCase:
    """Gaussian-process regression (predictive mean/variance, Fig. 13b)."""
    program = parse_program(GPR_SOURCE, {"n": n}, name=f"gpr_{n}")

    def make_inputs(seed: int) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        return {"K": ref.random_spd(n, rng),
                "X": rng.standard_normal((n, n)) / np.sqrt(n),
                "x": rng.standard_normal((n, 1)),
                "y": rng.standard_normal((n, 1))}

    def oracle(inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        out = ref.gaussian_process_regression(inputs)
        return {"phi": np.array([[out["phi"]]]),
                "psi": np.array([[out["psi"]]]),
                "lambda": np.array([[out["lambda"]]])}

    return BenchmarkCase(name="gpr", program=program,
                         nominal_flops=ref.cost_gpr(n),
                         make_inputs=make_inputs, reference=oracle,
                         checked_outputs={"phi": "full", "psi": "full",
                                          "lambda": "full"},
                         size=n, kind="application")


L1A_SOURCE = """
Mat W(n, n) <In>;
Mat A(n, n) <In>;
Vec x0(n) <In>;
Vec y(n) <In>;
Vec v1(n) <InOut>;
Vec z1(n) <InOut>;
Vec v2(n) <InOut>;
Vec z2(n) <InOut>;
Sca alpha <In>;
Sca beta <In>;
Sca tau <In>;
Vec y1(n) <Out>;
Vec y2(n) <Out>;
Vec x1(n) <Out>;
Vec x(n) <Out>;

y1 = alpha * v1 + tau * z1;
y2 = alpha * v2 + tau * z2;
x1 = W' * y1 - A' * y2;
x = x0 + beta * x1;
z1 = y1 - W * x;
z2 = y2 - (y - A * x);
v1 = alpha * v1 + tau * z1;
v2 = alpha * v2 + tau * z2;
"""


def l1a_case(n: int) -> BenchmarkCase:
    """One iteration of the L1-analysis convex solver (Fig. 13c)."""
    program = parse_program(L1A_SOURCE, {"n": n}, name=f"l1a_{n}")

    def make_inputs(seed: int) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        return {"W": rng.standard_normal((n, n)) / np.sqrt(n),
                "A": rng.standard_normal((n, n)) / np.sqrt(n),
                "x0": rng.standard_normal((n, 1)),
                "y": rng.standard_normal((n, 1)),
                "v1": rng.standard_normal((n, 1)),
                "z1": rng.standard_normal((n, 1)),
                "v2": rng.standard_normal((n, 1)),
                "z2": rng.standard_normal((n, 1)),
                "alpha": np.array([[0.9]]),
                "beta": np.array([[0.5]]),
                "tau": np.array([[0.3]])}

    def oracle(inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        return ref.l1_analysis_step(inputs)

    return BenchmarkCase(name="l1a", program=program,
                         nominal_flops=ref.cost_l1a(n),
                         make_inputs=make_inputs, reference=oracle,
                         checked_outputs={"v1": "full", "z1": "full",
                                          "v2": "full", "z2": "full"},
                         size=n, kind="application")


# ---------------------------------------------------------------------------
# Case registry
# ---------------------------------------------------------------------------

HLAC_CASES: Dict[str, Callable[[int], BenchmarkCase]] = {
    "potrf": potrf_case,
    "gemm": gemm_case,
    "trsm": trsm_case,
    "trsyl": trsyl_case,
    "trlya": trlya_case,
    "trtri": trtri_case,
}

APPLICATION_CASES: Dict[str, Callable[[int], BenchmarkCase]] = {
    "kf": kf_case,
    "gpr": gpr_case,
    "l1a": l1a_case,
}


def make_case(name: str, n: int, k: Optional[int] = None) -> BenchmarkCase:
    """Construct a benchmark case by name ('potrf', 'kf', 'kf-28', ...)."""
    if name == "kf-28":
        return kf_case(28, k if k is not None else n)
    if name in HLAC_CASES:
        return HLAC_CASES[name](n)
    if name in APPLICATION_CASES:
        if name == "kf":
            return kf_case(n, k)
        return APPLICATION_CASES[name](n)
    raise KeyError(f"unknown benchmark case {name!r}")


def all_case_names() -> List[str]:
    return list(HLAC_CASES) + list(APPLICATION_CASES) + ["kf-28"]
