"""Benchmark computations of the paper as LA programs with reference oracles."""

from .cases import (APPLICATION_CASES, HLAC_CASES, BenchmarkCase,
                    all_case_names, gemm_case, gpr_case, kf_case, l1a_case,
                    make_case, potrf_case, trlya_case, trsm_case, trsyl_case,
                    trtri_case, KF_SOURCE, GPR_SOURCE, L1A_SOURCE)

__all__ = [
    "APPLICATION_CASES", "HLAC_CASES", "BenchmarkCase", "all_case_names",
    "gemm_case", "gpr_case", "kf_case", "l1a_case", "make_case",
    "potrf_case", "trlya_case", "trsm_case", "trsyl_case", "trtri_case",
    "KF_SOURCE", "GPR_SOURCE", "L1A_SOURCE",
]
