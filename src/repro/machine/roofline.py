"""ERM-style generalized roofline analysis (paper Sec. 4, Table 4).

Given an instruction mix and a microarchitecture description, the analysis
computes, per hardware resource, how many cycles that resource alone would
need to retire the instruction stream; the largest of those is the
bottleneck and determines the modeled execution time.  This mirrors what
the paper does with ERM on its generated code, and it is also the
"performance measurement" used by the autotuner and the benchmark harness
(see DESIGN.md, substitution table).

On top of the pure throughput bounds, two latency effects that dominate
small sizes are modeled:

* divisions/square roots are unpipelined and essentially sequential in the
  triangular algorithms, so they contribute ``div_issue_cycles`` each;
* each (library) call contributes a fixed overhead, used by the
  library-based baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .microarch import MicroArchitecture, default_machine
from .mix import InstructionMix


@dataclass
class PerformanceEstimate:
    """Result of the roofline analysis of one kernel."""

    cycles: float
    bottleneck: str
    resource_cycles: Dict[str, float]
    mix: InstructionMix
    machine: MicroArchitecture
    call_overhead_cycles: float = 0.0
    nominal_flops: Optional[float] = None

    @property
    def flops_per_cycle(self) -> float:
        """Performance in flops/cycle using the *nominal* operation count.

        The paper's plots divide the mathematical cost of the computation
        (e.g. n^3/3 for potrf) by the measured time; executed flops can be
        higher (full-storage symmetric updates, masked lanes, ...).
        """
        flops = self.nominal_flops if self.nominal_flops is not None \
            else self.mix.flops
        if self.cycles <= 0:
            return 0.0
        return flops / self.cycles

    @property
    def shuffle_blend_issue_rate(self) -> float:
        """Share of shuffle+blend issues among non-memory issues (Table 4)."""
        denominator = self.mix.issues_excluding_memory
        if denominator <= 0:
            return 0.0
        return (self.mix.shuffle_issues + self.mix.blend_issues) / denominator

    def perf_limit_from(self, issue_count: float,
                        throughput: float) -> float:
        """Achievable peak (f/c) if ``issue_count`` ops share one port."""
        flops = self.nominal_flops if self.nominal_flops is not None \
            else self.mix.flops
        if issue_count <= 0:
            return self.machine.peak_flops_per_cycle
        limit = flops / (issue_count / throughput)
        return min(self.machine.peak_flops_per_cycle, limit)

    @property
    def perf_limit_shuffles(self) -> float:
        return self.perf_limit_from(self.mix.shuffle_issues,
                                    self.machine.shuffle_per_cycle)

    @property
    def perf_limit_blends(self) -> float:
        return self.perf_limit_from(self.mix.blend_issues,
                                    self.machine.shuffle_per_cycle)

    def summary(self) -> Dict[str, float]:
        return {
            "cycles": self.cycles,
            "flops_per_cycle": self.flops_per_cycle,
            "bottleneck": self.bottleneck,
            "shuffle_blend_issue_rate": self.shuffle_blend_issue_rate,
            "perf_limit_shuffles": self.perf_limit_shuffles,
            "perf_limit_blends": self.perf_limit_blends,
        }


def analyze_mix(mix: InstructionMix,
                machine: Optional[MicroArchitecture] = None,
                nominal_flops: Optional[float] = None,
                call_count: int = 0,
                sequential_divisions: bool = True) -> PerformanceEstimate:
    """Run the generalized roofline analysis on an instruction mix.

    Parameters
    ----------
    mix:
        The instruction mix (from :func:`repro.machine.mix.instruction_mix`
        or from a baseline model).
    nominal_flops:
        The mathematical operation count used for f/c reporting.
    call_count:
        Number of opaque (library) calls; each adds the machine's
        per-call overhead.  Zero for generated single-source code.
    sequential_divisions:
        When true (the default, matching the dependence structure of
        factorizations/substitutions), every division/square root contributes
        its full issue latency.
    """
    machine = machine or default_machine()

    resource_cycles: Dict[str, float] = {
        "fp multiply port": mix.mul_issues / machine.mul_per_cycle,
        "fp add port": mix.add_issues / machine.add_per_cycle,
        "shuffle port": (mix.shuffle_issues + mix.blend_issues)
        / machine.shuffle_per_cycle,
        "L1 loads": mix.load_issues / machine.loads_per_cycle,
        "L1 stores": mix.store_issues / machine.stores_per_cycle,
    }
    if sequential_divisions:
        resource_cycles["divs/sqrt"] = (mix.div_sqrt_issues
                                        * machine.div_issue_cycles)
    else:
        resource_cycles["divs/sqrt"] = (mix.div_sqrt_issues
                                        * machine.div_issue_cycles / 4.0)

    call_overhead = call_count * machine.call_overhead_cycles

    bottleneck = max(resource_cycles, key=lambda name: resource_cycles[name])
    cycles = resource_cycles[bottleneck] + call_overhead
    # A kernel can never be faster than issuing one instruction.
    cycles = max(cycles, 1.0)

    # Report the Table-4 style bottleneck names.
    pretty = {
        "fp multiply port": "fp mul",
        "fp add port": "fp add",
        "shuffle port": "shuffles",
        "L1 loads": "L1 loads",
        "L1 stores": "L1 stores",
        "divs/sqrt": "divs/sqrt",
    }

    return PerformanceEstimate(
        cycles=cycles,
        bottleneck=pretty[bottleneck],
        resource_cycles=resource_cycles,
        mix=mix,
        machine=machine,
        call_overhead_cycles=call_overhead,
        nominal_flops=nominal_flops,
    )


def analyze_function(function, machine: Optional[MicroArchitecture] = None,
                     nominal_flops: Optional[float] = None
                     ) -> PerformanceEstimate:
    """Convenience wrapper: instruction mix + roofline for a C-IR function."""
    from .mix import instruction_mix
    return analyze_mix(instruction_mix(function), machine=machine,
                       nominal_flops=nominal_flops)
