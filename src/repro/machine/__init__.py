"""Machine model: microarchitecture descriptions, instruction mixes, ERM-style
generalized roofline analysis."""

from .microarch import (EMBEDDED_SSE, HASWELL, SANDY_BRIDGE,
                        MicroArchitecture, default_machine)
from .mix import InstructionMix, instruction_mix
from .roofline import PerformanceEstimate, analyze_function, analyze_mix

__all__ = [
    "EMBEDDED_SSE", "HASWELL", "SANDY_BRIDGE", "MicroArchitecture",
    "default_machine", "InstructionMix", "instruction_mix",
    "PerformanceEstimate", "analyze_function", "analyze_mix",
]
