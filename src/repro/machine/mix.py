"""Static instruction-mix extraction from C-IR.

Because every loop in generated C-IR has constant bounds, the exact dynamic
instruction counts can be computed statically by weighting each statement
with the product of the trip counts of its enclosing loops.  The resulting
:class:`InstructionMix` is the input of the ERM-style roofline analysis and
is also used directly by tests (e.g. "the load/store analysis removes N
loads").
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Iterable, List

from ..cir.nodes import (Assign, BinOp, CExpr, Comment, CStmt, For, Function,
                         If, Load, Store, UnOp, VBinOp, VBlend, VBroadcast,
                         VExtract, VFma, VLoad, VPermute2f128, VReduceAdd,
                         VSet, VShufflePd, VStore, VUnpack, VZero,
                         walk_expressions)


@dataclass
class InstructionMix:
    """Dynamic instruction counts of one generated kernel."""

    # floating-point arithmetic (instruction counts, not flops)
    vector_add: float = 0.0
    vector_mul: float = 0.0
    vector_fma: float = 0.0
    vector_div: float = 0.0
    scalar_add: float = 0.0
    scalar_mul: float = 0.0
    scalar_div: float = 0.0
    scalar_sqrt: float = 0.0
    # memory
    vector_loads: float = 0.0
    vector_stores: float = 0.0
    scalar_loads: float = 0.0
    scalar_stores: float = 0.0
    # data rearrangement
    shuffles: float = 0.0
    blends: float = 0.0
    broadcasts: float = 0.0
    extracts: float = 0.0
    reductions: float = 0.0

    vector_width: int = 4

    # -- derived quantities -------------------------------------------------

    @property
    def flops(self) -> float:
        """Double-precision floating-point operations actually executed."""
        w = self.vector_width
        return (w * (self.vector_add + self.vector_mul + self.vector_div)
                + 2 * w * self.vector_fma
                + self.scalar_add + self.scalar_mul + self.scalar_div
                + self.scalar_sqrt
                + (w - 1) * self.reductions)

    @property
    def mul_issues(self) -> float:
        return self.vector_mul + self.vector_fma + self.scalar_mul

    @property
    def add_issues(self) -> float:
        # a horizontal reduction needs ~2 additional add-type issues
        return (self.vector_add + self.vector_fma + self.scalar_add
                + 2 * self.reductions)

    @property
    def div_sqrt_issues(self) -> float:
        return self.vector_div + self.scalar_div + self.scalar_sqrt

    @property
    def load_issues(self) -> float:
        return self.vector_loads + self.scalar_loads + self.broadcasts

    @property
    def store_issues(self) -> float:
        return self.vector_stores + self.scalar_stores

    @property
    def shuffle_issues(self) -> float:
        # a horizontal reduction needs ~2 lane-crossing shuffles
        return self.shuffles + self.extracts + 2 * self.reductions

    @property
    def blend_issues(self) -> float:
        return self.blends

    @property
    def total_issues(self) -> float:
        """All issued instructions (used for Table-4 style issue rates)."""
        return (self.mul_issues + self.add_issues + self.div_sqrt_issues
                + self.load_issues + self.store_issues + self.shuffle_issues
                + self.blend_issues)

    @property
    def issues_excluding_memory(self) -> float:
        return self.total_issues - self.load_issues - self.store_issues

    # -- arithmetic ----------------------------------------------------------

    def scaled(self, factor: float) -> "InstructionMix":
        result = InstructionMix(vector_width=self.vector_width)
        for f in fields(self):
            if f.name == "vector_width":
                continue
            setattr(result, f.name, getattr(self, f.name) * factor)
        return result

    def __add__(self, other: "InstructionMix") -> "InstructionMix":
        result = InstructionMix(vector_width=max(self.vector_width,
                                                 other.vector_width))
        for f in fields(self):
            if f.name == "vector_width":
                continue
            setattr(result, f.name,
                    getattr(self, f.name) + getattr(other, f.name))
        return result

    def as_dict(self) -> Dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)
                if f.name != "vector_width"}


def _count_expression(expr: CExpr, mix: InstructionMix, weight: float) -> None:
    for node in expr.walk():
        if isinstance(node, Load):
            mix.scalar_loads += weight
        elif isinstance(node, VLoad):
            mix.vector_loads += weight
        elif isinstance(node, VBroadcast):
            mix.broadcasts += weight
        elif isinstance(node, BinOp):
            if node.op in ("add", "sub", "max", "min"):
                mix.scalar_add += weight
            elif node.op == "mul":
                mix.scalar_mul += weight
            elif node.op == "div":
                mix.scalar_div += weight
        elif isinstance(node, UnOp):
            if node.op == "sqrt":
                mix.scalar_sqrt += weight
            else:
                mix.scalar_add += weight
        elif isinstance(node, VBinOp):
            if node.op in ("add", "sub", "max", "min"):
                mix.vector_add += weight
            elif node.op == "mul":
                mix.vector_mul += weight
            elif node.op == "div":
                mix.vector_div += weight
        elif isinstance(node, VFma):
            mix.vector_fma += weight
        elif isinstance(node, VReduceAdd):
            mix.reductions += weight
        elif isinstance(node, VExtract):
            mix.extracts += weight
        elif isinstance(node, VBlend):
            mix.blends += weight
        elif isinstance(node, (VShufflePd, VPermute2f128, VUnpack)):
            mix.shuffles += weight
        elif isinstance(node, (VSet, VZero)):
            # vzeroall / set sequences: negligible, but VSet of k scalars
            # costs about k-1 lane insertions (counted as shuffles).
            if isinstance(node, VSet):
                mix.shuffles += weight * max(0, len(node.elements) - 1)


def _count_statements(stmts: Iterable[CStmt], mix: InstructionMix,
                      weight: float) -> None:
    for stmt in stmts:
        if isinstance(stmt, Comment):
            continue
        if isinstance(stmt, For):
            _count_statements(stmt.body, mix, weight * stmt.trip_count)
            continue
        if isinstance(stmt, If):
            # Both branches weighted by half: conditions in generated code
            # are leftovers guards that alternate.
            _count_statements(stmt.then_body, mix, weight * 0.5)
            _count_statements(stmt.else_body, mix, weight * 0.5)
            continue
        for expr in walk_expressions(stmt):
            pass  # expressions handled below (walk once, weighted)
        if isinstance(stmt, Assign):
            _count_expression(stmt.value, mix, weight)
        elif isinstance(stmt, Store):
            _count_expression(stmt.value, mix, weight)
            mix.scalar_stores += weight
        elif isinstance(stmt, VStore):
            _count_expression(stmt.value, mix, weight)
            mix.vector_stores += weight


def instruction_mix(function: Function) -> InstructionMix:
    """Compute the exact dynamic instruction mix of a C-IR function."""
    mix = InstructionMix(vector_width=max(function.vector_width, 1))
    _count_statements(function.body, mix, 1.0)
    return mix
