"""Microarchitecture descriptions for the performance model.

The paper analyzes its generated code with ERM, a generalized-roofline tool
parameterized by microarchitectural throughput/latency numbers (Sec. 4,
"Bottleneck analysis").  This module provides the same kind of description
for the evaluation platform of the paper, an Intel Sandy Bridge core
(i7-2600):

* one 256-bit floating-point multiply and one 256-bit add issue per cycle
  (peak 8 double-precision flops/cycle),
* one shuffle/blend per cycle (port 5),
* two 128-bit-equivalent loads and one store per cycle to L1,
* divisions and square roots are unpipelined and can be issued roughly
  every 44 cycles (the number quoted in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MicroArchitecture:
    """Throughput parameters of one core (all per cycle unless noted)."""

    name: str
    vector_width: int               # doubles per SIMD register
    mul_per_cycle: float            # vector multiplies issued per cycle
    add_per_cycle: float            # vector adds issued per cycle
    fma: bool                       # fused multiply-add available
    shuffle_per_cycle: float        # shuffles/blends/permutes per cycle
    loads_per_cycle: float          # L1 loads per cycle
    stores_per_cycle: float         # L1 stores per cycle
    div_issue_cycles: float         # cycles between dependent div/sqrt issues
    call_overhead_cycles: float     # cost of a (library) function call
    frequency_ghz: float = 3.3

    @property
    def peak_flops_per_cycle(self) -> float:
        """Peak double-precision flops per cycle."""
        units = self.mul_per_cycle + self.add_per_cycle
        if self.fma:
            units = 2 * max(self.mul_per_cycle, self.add_per_cycle)
        return units * self.vector_width


#: The paper's evaluation platform: Intel Core i7-2600 (Sandy Bridge), AVX.
SANDY_BRIDGE = MicroArchitecture(
    name="Intel Sandy Bridge (i7-2600)",
    vector_width=4,
    mul_per_cycle=1.0,
    add_per_cycle=1.0,
    fma=False,
    shuffle_per_cycle=1.0,
    loads_per_cycle=2.0,
    stores_per_cycle=1.0,
    div_issue_cycles=44.0,
    call_overhead_cycles=120.0,
)

#: A Haswell-like core with FMA, used to check that the model's conclusions
#: are not an artifact of one parameter set.
HASWELL = MicroArchitecture(
    name="Intel Haswell (FMA)",
    vector_width=4,
    mul_per_cycle=2.0,
    add_per_cycle=1.0,
    fma=True,
    shuffle_per_cycle=1.0,
    loads_per_cycle=2.0,
    stores_per_cycle=1.0,
    div_issue_cycles=28.0,
    call_overhead_cycles=120.0,
)

#: A narrow embedded-style core (SSE2-like, 2-wide) for the scalar/embedded
#: scenario discussed in the LGen line of work.
EMBEDDED_SSE = MicroArchitecture(
    name="Embedded SSE2-class core",
    vector_width=2,
    mul_per_cycle=1.0,
    add_per_cycle=1.0,
    fma=False,
    shuffle_per_cycle=1.0,
    loads_per_cycle=1.0,
    stores_per_cycle=1.0,
    div_issue_cycles=30.0,
    call_overhead_cycles=80.0,
)


def default_machine() -> MicroArchitecture:
    """The machine used throughout the reproduction (paper's platform)."""
    return SANDY_BRIDGE
