"""Benchmark harness shared by the benchmarks/ directory and EXPERIMENTS.md."""

from .harness import (Series, SeriesPoint, application_sizes,
                      empirical_flops_per_cycle, full_sizes_requested,
                      generator_options, hlac_sizes, kf28_observation_sizes,
                      measure_kernel_seconds, measure_slingen, run_series)

__all__ = [
    "Series", "SeriesPoint", "application_sizes",
    "empirical_flops_per_cycle", "full_sizes_requested",
    "generator_options", "hlac_sizes", "kf28_observation_sizes",
    "measure_kernel_seconds", "measure_slingen", "run_series",
]
