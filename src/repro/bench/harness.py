"""Benchmark harness: regenerates the rows/series of every figure and table.

Each figure of the paper is a performance-vs-size plot (flops/cycle on the
y-axis).  :func:`run_series` produces exactly that: for one benchmark case
family and a list of sizes, it generates SLinGen code (measuring it with the
machine model) and evaluates every baseline, returning a table that the
benchmark scripts print in the same layout as the paper's plots.

Sizes default to a reduced grid so the full suite runs in minutes; set the
environment variable ``REPRO_FULL_SIZES=1`` to use the paper's grid
(4..124 for HLACs, 4..52 for applications).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..applications.cases import BenchmarkCase, make_case
from ..baselines.models import baseline_names, evaluate_baseline
from ..machine.microarch import MicroArchitecture, default_machine
from ..slingen.generator import SLinGen
from ..slingen.options import Options


def full_sizes_requested() -> bool:
    return os.environ.get("REPRO_FULL_SIZES", "0") not in ("", "0", "false")


def hlac_sizes() -> List[int]:
    """Sizes of the x-axis of Fig. 14 (reduced grid by default)."""
    if full_sizes_requested():
        return [4, 28, 52, 76, 100, 124]
    return [4, 12, 24, 36]


def application_sizes() -> List[int]:
    """Sizes of the x-axis of Fig. 15 (reduced grid by default)."""
    if full_sizes_requested():
        return [4, 12, 20, 28, 36, 44, 52]
    return [4, 12, 20, 28]


def kf28_observation_sizes() -> List[int]:
    if full_sizes_requested():
        return [4, 8, 12, 16, 20, 24, 28]
    return [4, 12, 20, 28]


@dataclass
class SeriesPoint:
    """Performance of every implementation at one problem size."""

    size: int
    flops: float
    performance: Dict[str, float]          # implementation -> flops/cycle
    cycles: Dict[str, float]
    bottleneck: str = ""
    variant: str = ""
    correct: Optional[bool] = None


@dataclass
class Series:
    """A full figure: one benchmark family swept over sizes."""

    name: str
    points: List[SeriesPoint] = field(default_factory=list)

    def implementations(self) -> List[str]:
        names: List[str] = []
        for point in self.points:
            for impl in point.performance:
                if impl not in names:
                    names.append(impl)
        return names

    def column(self, implementation: str) -> List[float]:
        return [point.performance.get(implementation, float("nan"))
                for point in self.points]

    def speedup(self, over: str) -> List[float]:
        """SLinGen speedup over a baseline at every size."""
        values = []
        for point in self.points:
            ours = point.performance.get("slingen")
            theirs = point.performance.get(over)
            if ours and theirs:
                values.append(ours / theirs)
        return values

    def format_table(self) -> str:
        """Render the series as an aligned text table (paper-plot layout)."""
        impls = self.implementations()
        header = ["n"] + impls
        rows = [header]
        for point in self.points:
            row = [str(point.size)]
            for impl in impls:
                value = point.performance.get(impl)
                row.append(f"{value:.3f}" if value is not None else "-")
            rows.append(row)
        widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
        lines = [f"[{self.name}]  performance in flops/cycle vs. size"]
        for row in rows:
            lines.append("  ".join(cell.rjust(width)
                                   for cell, width in zip(row, widths)))
        return "\n".join(lines)


def generator_options(vectorize: bool = True, autotune: bool = True,
                      max_variants: int = 6) -> Options:
    return Options(vectorize=vectorize, autotune=autotune,
                   max_variants=max_variants, annotate_code=False)


def measure_kernel_seconds(generated, case: BenchmarkCase,
                           executor: str = "numpy",
                           repeats: int = 5, kernel=None) -> float:
    """Median wall-clock seconds per call of a generated kernel.

    ``executor`` names an execution backend (``"numpy"``, ``"compiled"``,
    ``"interpreter"``, or ``"auto"``); the kernel runs on the case's own
    input distribution so timings reflect realistic operand values.
    ``kernel`` (an already-built executor kernel) skips the build, letting
    callers time and validate with one artifact.
    """
    from ..timing import median_and_mad

    if kernel is None:
        kernel = generated.kernel(executor)
    samples = kernel.time(case.make_inputs(seed=17), repeats=repeats)
    median, _ = median_and_mad(samples)
    return median


def empirical_flops_per_cycle(seconds: float, flops: float,
                              machine: MicroArchitecture) -> float:
    """Measured performance in the figures' unit (flops/cycle), converting
    wall-clock seconds at the machine model's nominal frequency."""
    if seconds <= 0.0:
        return float("nan")
    return flops / (seconds * machine.frequency_ghz * 1e9)


def _performance_and_kernel(generated, case: BenchmarkCase,
                            executor: Optional[str],
                            cache_key: Optional[str],
                            machine: MicroArchitecture):
    """The reported performance of one generated case, and the executor
    kernel that produced it (None for the model path).

    The single place the model-vs-measured switch lives: with no
    ``executor`` (or ``"model"``) the roofline estimate is reported; a
    backend name builds exactly one kernel -- content-addressed by the
    service ``cache_key`` when available -- which timing and validation
    then share.
    """
    if executor is None or executor == "model":
        return generated.performance.flops_per_cycle, None
    kernel = generated.kernel(executor, cache_key=cache_key)
    seconds = measure_kernel_seconds(generated, case, kernel=kernel)
    return empirical_flops_per_cycle(
        seconds, case.nominal_flops, machine), kernel


def measure_slingen(case: BenchmarkCase, options: Optional[Options] = None,
                    machine: Optional[MicroArchitecture] = None,
                    validate: bool = False, service=None, tuner=None,
                    executor: Optional[str] = None):
    """Generate code for one case and return (result, f/c, correct?).

    With a :class:`~repro.service.service.KernelService` as ``service``,
    generation goes through the persistent kernel cache (the service's
    machine model wins over ``machine``), so repeated sizes across figures
    and re-runs of a suite are cache hits instead of full pipeline runs.

    With an :class:`~repro.tuning.tuner.Autotuner` as ``tuner``, the case
    is empirically tuned first (idempotent when the tuner has a database)
    and generation uses the tuned-best options, so a figure can report the
    model-picked and the measurement-picked kernel side by side.

    ``executor`` switches the reported performance from the machine-model
    estimate (the default, the paper's methodology) to an actual timed
    execution on the named backend -- ``executor="numpy"`` produces the
    figure series on machines with no C compiler.  Validation also runs
    on that backend.
    """
    if tuner is not None:
        _check_tuner_machine(tuner, service, machine)
        options = tuner.tuned_options_for_case(
            case, options or generator_options())
    cache_key = None
    if service is not None:
        from ..service.service import GenerationRequest
        response = service.generate(GenerationRequest.from_case(
            case, options=options or generator_options()))
        generated = response.result
        cache_key = response.key
        machine = service.machine
    else:
        machine = machine or default_machine()
        generator = SLinGen(options or generator_options(), machine=machine)
        generated = generator.generate_result(
            case.program, nominal_flops=case.nominal_flops)
    performance, kernel = _performance_and_kernel(
        generated, case, executor, cache_key, machine)
    correct = check_case(case, generated, kernel=kernel) if validate \
        else None
    return generated, performance, correct


def _check_tuner_machine(tuner, service, machine) -> None:
    """Tuning records are keyed by the tuner's machine model; measuring
    against one machine and generating for another silently produces
    never-found (and wrongly tuned) records, so mismatches are an error."""
    target = service.machine if service is not None \
        else (machine or default_machine())
    if tuner.machine != target:
        from ..errors import AutotuningError
        raise AutotuningError(
            "tuner and service/benchmark use different machine models; "
            "construct the Autotuner with machine=service.machine")


def check_case(case: BenchmarkCase, generated,
               executor: Optional[str] = None, kernel=None) -> bool:
    """Run the generated kernel against the case's oracle.

    ``executor`` picks the execution backend (default: the C-IR
    interpreter, the reference semantics; ``"numpy"`` is an order of
    magnitude faster and what the figure scripts use when validating
    whole sweeps).  ``kernel`` (an already-built executor kernel) wins
    over ``executor`` so a timing pass and a validation pass can share
    one build.
    """
    inputs = case.make_inputs(seed=17)
    if kernel is not None:
        outputs = kernel.run(inputs)
    elif executor is None or executor in ("model", "interpreter"):
        outputs = generated.run(inputs)
    else:
        outputs = generated.kernel(executor).run(inputs)
    expected = case.reference_outputs(inputs)
    correct = True
    for key, mode in case.checked_outputs.items():
        got, want = outputs[key], expected[key]
        if mode == "lower":
            got, want = np.tril(got), np.tril(want)
        elif mode == "upper":
            got, want = np.triu(got), np.triu(want)
        correct = correct and bool(np.allclose(got, want, atol=1e-7))
    return correct


def run_series(case_name: str, sizes: Sequence[int],
               case_factory: Optional[Callable[[int], BenchmarkCase]] = None,
               options: Optional[Options] = None,
               machine: Optional[MicroArchitecture] = None,
               baselines: Optional[List[str]] = None,
               validate: bool = False, service=None,
               tuner=None, executor: Optional[str] = None) -> Series:
    """Run one figure: SLinGen + all baselines over a size sweep.

    ``service`` (a :class:`~repro.service.service.KernelService`) routes
    all generation through the kernel cache; misses for the whole sweep are
    generated in parallel up front via :meth:`generate_many`.  ``tuner``
    (an :class:`~repro.tuning.tuner.Autotuner`) swaps the model-picked
    options for each case's empirically tuned ones first.  Note that on a
    cold tuning database this runs one full (serial) tuning search per
    case before the batch generation -- empirical measurements cannot
    safely run concurrently on one machine anyway; pre-tune with
    ``python -m repro.tuning tune`` to make this step a database lookup.
    ``executor`` (an execution backend name, e.g. ``"numpy"``) reports
    measured instead of modeled performance for the SLinGen series, as in
    :func:`measure_slingen`.
    """
    machine = service.machine if service is not None \
        else (machine or default_machine())
    if tuner is not None:
        _check_tuner_machine(tuner, service, machine)
    series = Series(name=case_name)
    cases = [case_factory(size) if case_factory else make_case(case_name,
                                                               size)
             for size in sizes]
    base_options = options or generator_options()
    if service is not None:
        # One batch request for the sweep: hits come from the store, every
        # miss generates on the service's worker pool.
        from ..service.service import GenerationRequest
        responses = service.generate_many([
            GenerationRequest.from_case(
                c, options=(tuner.tuned_options_for_case(c, base_options)
                            if tuner is not None else base_options))
            for c in cases])
        results = [(r.result, r.key) for r in responses]
    else:
        results = [None] * len(cases)
    for case, pregenerated in zip(cases, results):
        if pregenerated is not None:
            generated, cache_key = pregenerated
            ours, kernel = _performance_and_kernel(
                generated, case, executor, cache_key, machine)
            correct = check_case(case, generated, kernel=kernel) \
                if validate else None
        else:
            generated, ours, correct = measure_slingen(
                case, options, machine, validate, tuner=tuner,
                executor=executor)
        performance = {"slingen": ours}
        cycles = {"slingen": generated.performance.cycles}
        for baseline in (baselines if baselines is not None
                         else baseline_names(case.name)):
            result = evaluate_baseline(baseline, case, machine)
            performance[baseline] = result.flops_per_cycle
            cycles[baseline] = result.cycles
        series.points.append(SeriesPoint(
            size=case.size, flops=case.nominal_flops, performance=performance,
            cycles=cycles, bottleneck=generated.performance.bottleneck,
            variant=generated.variant_label, correct=correct))
    return series
