"""The committed corpus of minimized fuzz repros.

Every divergence or crash the fuzzer finds is shrunk and saved here as
one JSON file -- the full :class:`~repro.fuzz.spec.FuzzCase` plus
metadata about what was observed when it was found and a human note
about the bug it exposed.  The corpus lives in ``tests/fuzz_corpus/``
and replays in two ways:

* ``python -m repro.fuzz replay`` -- the CLI regression gate, and
* ``tests/test_fuzz_corpus.py`` -- one parametrized tier-1 test per
  entry.

A replayed entry must come back ``ok``: corpus entries document *fixed*
bugs, so a red replay means a regression (or an entry committed before
its fix).

The exception is entries with an ``expect`` field -- an expected failure
signature (as :meth:`~repro.fuzz.oracle.CaseResult.signature`).  These
are *witnesses*, not fixed bugs: they document that the oracle still
catches a known-unsound configuration (e.g. a CEGIS-refuted rewrite
forced on via ``Options.verified_rewrites``).  Such an entry passes when
the replay reproduces the expected signature, and fails either when the
original failure "heals" silently (the oracle lost its teeth) or when
the failure mode changed.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import FuzzError
from .oracle import (DEFAULT_REF_TOL, DEFAULT_TOL, CaseResult, run_case)
from .spec import FuzzCase

#: Corpus location relative to the repository root (the conventional
#: working directory of every ``python -m repro.*`` invocation).
DEFAULT_CORPUS_DIR = os.path.join("tests", "fuzz_corpus")


@dataclass
class CorpusEntry:
    """One minimized repro on disk."""

    case: FuzzCase
    entry_id: str
    note: str = ""
    found: Dict[str, object] = field(default_factory=dict)
    expect: List[str] = field(default_factory=list)
    path: Optional[str] = None

    @property
    def found_status(self) -> str:
        return str(self.found.get("status", "?"))

    @property
    def expects_failure(self) -> bool:
        return bool(self.expect)


def entry_id(case: FuzzCase) -> str:
    """Content-addressed identifier of a case (stable across re-saves)."""
    canonical = json.dumps(case.to_json(), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def save_entry(case: FuzzCase, result: CaseResult, note: str,
               directory: str, expect: Optional[List[str]] = None) -> str:
    """Write one corpus entry; returns the file path.

    ``expect`` marks a witness entry: the failure signature the replay
    must *reproduce* (normally ``list(result.signature())``), instead of
    the default expectation of coming back ``ok``."""
    os.makedirs(directory, exist_ok=True)
    identifier = entry_id(case)
    doc = case.to_json()
    doc["id"] = identifier
    doc["note"] = note
    if expect:
        doc["expect"] = [str(part) for part in expect]
    doc["found"] = {
        "status": result.status,
        "stage": result.stage,
        "error_type": result.error_type,
        "error": result.error[:500],
        "worst_pair": result.worst_pair,
        "divergent": list(result.divergent),
    }
    path = os.path.join(directory, f"{identifier}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_entry(path: str) -> CorpusEntry:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise FuzzError(f"cannot read corpus entry {path!r}: {exc}")
    if not isinstance(doc, dict):
        raise FuzzError(f"corpus entry {path!r} is not a JSON object")
    case = FuzzCase.from_json(doc)
    return CorpusEntry(case=case,
                       entry_id=str(doc.get("id", entry_id(case))),
                       note=str(doc.get("note", "")),
                       found=dict(doc.get("found", {})),
                       expect=[str(part)
                               for part in doc.get("expect") or []],
                       path=path)


def load_corpus(directory: str = DEFAULT_CORPUS_DIR) -> List[CorpusEntry]:
    """Every entry in the corpus directory, sorted by file name."""
    if not os.path.isdir(directory):
        return []
    entries: List[CorpusEntry] = []
    for name in sorted(os.listdir(directory)):
        if name.endswith(".json"):
            entries.append(load_entry(os.path.join(directory, name)))
    return entries


def replay_entry(entry: CorpusEntry, backends: str = "auto",
                 tol: float = DEFAULT_TOL,
                 ref_tol: float = DEFAULT_REF_TOL) -> CaseResult:
    """Run one corpus entry through the oracle (expected: ``ok``, or the
    entry's ``expect`` signature -- see :func:`entry_passes`)."""
    return run_case(entry.case, backends=backends, tol=tol,
                    reference=True, ref_tol=ref_tol)


def entry_passes(entry: CorpusEntry, result: CaseResult) -> bool:
    """Whether a replay outcome upholds what the entry documents.

    Regular entries (no ``expect``) document fixed bugs and must come
    back ``ok``.  Witness entries must reproduce their expected failure
    signature exactly -- an ``ok`` replay of a witness means the oracle
    stopped catching a known-unsound configuration."""
    if entry.expects_failure:
        return list(result.signature()) == list(entry.expect)
    return result.status == "ok"
