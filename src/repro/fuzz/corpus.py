"""The committed corpus of minimized fuzz repros.

Every divergence or crash the fuzzer finds is shrunk and saved here as
one JSON file -- the full :class:`~repro.fuzz.spec.FuzzCase` plus
metadata about what was observed when it was found and a human note
about the bug it exposed.  The corpus lives in ``tests/fuzz_corpus/``
and replays in two ways:

* ``python -m repro.fuzz replay`` -- the CLI regression gate, and
* ``tests/test_fuzz_corpus.py`` -- one parametrized tier-1 test per
  entry.

A replayed entry must come back ``ok``: corpus entries document *fixed*
bugs, so a red replay means a regression (or an entry committed before
its fix).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import FuzzError
from .oracle import (DEFAULT_REF_TOL, DEFAULT_TOL, CaseResult, run_case)
from .spec import FuzzCase

#: Corpus location relative to the repository root (the conventional
#: working directory of every ``python -m repro.*`` invocation).
DEFAULT_CORPUS_DIR = os.path.join("tests", "fuzz_corpus")


@dataclass
class CorpusEntry:
    """One minimized repro on disk."""

    case: FuzzCase
    entry_id: str
    note: str = ""
    found: Dict[str, object] = field(default_factory=dict)
    path: Optional[str] = None

    @property
    def found_status(self) -> str:
        return str(self.found.get("status", "?"))


def entry_id(case: FuzzCase) -> str:
    """Content-addressed identifier of a case (stable across re-saves)."""
    canonical = json.dumps(case.to_json(), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def save_entry(case: FuzzCase, result: CaseResult, note: str,
               directory: str) -> str:
    """Write one corpus entry; returns the file path."""
    os.makedirs(directory, exist_ok=True)
    identifier = entry_id(case)
    doc = case.to_json()
    doc["id"] = identifier
    doc["note"] = note
    doc["found"] = {
        "status": result.status,
        "stage": result.stage,
        "error_type": result.error_type,
        "error": result.error[:500],
        "worst_pair": result.worst_pair,
        "divergent": list(result.divergent),
    }
    path = os.path.join(directory, f"{identifier}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_entry(path: str) -> CorpusEntry:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise FuzzError(f"cannot read corpus entry {path!r}: {exc}")
    if not isinstance(doc, dict):
        raise FuzzError(f"corpus entry {path!r} is not a JSON object")
    case = FuzzCase.from_json(doc)
    return CorpusEntry(case=case,
                       entry_id=str(doc.get("id", entry_id(case))),
                       note=str(doc.get("note", "")),
                       found=dict(doc.get("found", {})),
                       path=path)


def load_corpus(directory: str = DEFAULT_CORPUS_DIR) -> List[CorpusEntry]:
    """Every entry in the corpus directory, sorted by file name."""
    if not os.path.isdir(directory):
        return []
    entries: List[CorpusEntry] = []
    for name in sorted(os.listdir(directory)):
        if name.endswith(".json"):
            entries.append(load_entry(os.path.join(directory, name)))
    return entries


def replay_entry(entry: CorpusEntry, backends: str = "auto",
                 tol: float = DEFAULT_TOL,
                 ref_tol: float = DEFAULT_REF_TOL) -> CaseResult:
    """Run one corpus entry through the oracle (expected: ``ok``)."""
    return run_case(entry.case, backends=backends, tol=tol,
                    reference=True, ref_tol=ref_tol)
