"""Serializable fuzz cases: a random LA program plus generator options.

A fuzz case is everything needed to reproduce one differential run --
the LA program (as structured declarations plus statement text, rendered
to the exact source the parser consumes), the :class:`Options` the
pipeline ran with, and the input seed.  Cases round-trip through JSON so
failures can be shrunk, saved to the committed corpus
(``tests/fuzz_corpus/``), and replayed as regression tests.

Declarations are kept structured (kind, dims, io, annotations) because
the shrinker mutates them -- dropping properties, shrinking dimension
bindings -- while statements stay plain LA text, which the shrinker only
ever deletes wholesale.
"""

from __future__ import annotations

import dataclasses
import json
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import FuzzError
from ..ir.program import Program
from ..la import parse_program
from ..slingen.options import Options

#: Bump when the JSON layout changes incompatibly.
SCHEMA_VERSION = 1

_IDENT_RE = re.compile(r"[A-Za-z_]\w*")

#: Words in statement text that are never operand references.
_LA_KEYWORDS = frozenset({
    "for", "trans", "inv", "sqrt", "Mat", "Vec", "Sca",
    "In", "Out", "InOut", "ow",
})


@dataclass
class FuzzDecl:
    """One operand declaration of a fuzzed LA program.

    ``rows``/``cols`` are *dimension names* resolved through the
    program's ``dims`` binding (or the literal ``"1"``), so the shrinker
    can shrink every operand bound to a dimension coherently by editing
    one number.
    """

    kind: str                      # "Mat" | "Vec" | "Sca"
    name: str
    rows: str = "1"
    cols: str = "1"
    io: str = "In"                 # "In" | "Out" | "InOut"
    annotations: List[str] = field(default_factory=list)
    overwrites: Optional[str] = None

    def render(self) -> str:
        """The LA declaration statement for this operand."""
        tail = [self.io] + list(self.annotations)
        if self.overwrites:
            tail.append(f"ow({self.overwrites})")
        inside = ", ".join(tail)
        if self.kind == "Sca":
            return f"Sca {self.name} <{inside}>;"
        if self.kind == "Vec":
            return f"Vec {self.name}({self.rows}) <{inside}>;"
        return f"Mat {self.name}({self.rows}, {self.cols}) <{inside}>;"

    @property
    def is_square(self) -> bool:
        return self.kind == "Mat" and self.rows == self.cols

    def to_json(self) -> Dict[str, object]:
        doc: Dict[str, object] = {"kind": self.kind, "name": self.name}
        if self.kind != "Sca":
            doc["rows"] = self.rows
        if self.kind == "Mat":
            doc["cols"] = self.cols
        doc["io"] = self.io
        if self.annotations:
            doc["annotations"] = list(self.annotations)
        if self.overwrites:
            doc["overwrites"] = self.overwrites
        return doc

    @staticmethod
    def from_json(doc: Dict[str, object]) -> "FuzzDecl":
        return FuzzDecl(kind=str(doc["kind"]), name=str(doc["name"]),
                        rows=str(doc.get("rows", "1")),
                        cols=str(doc.get("cols", "1")),
                        io=str(doc.get("io", "In")),
                        annotations=[str(a) for a in
                                     doc.get("annotations", [])],
                        overwrites=(str(doc["overwrites"])
                                    if doc.get("overwrites") else None))


@dataclass
class FuzzProgram:
    """A fuzzed LA program: dimension bindings, declarations, statements."""

    name: str
    dims: Dict[str, int] = field(default_factory=dict)
    decls: List[FuzzDecl] = field(default_factory=list)
    statements: List[str] = field(default_factory=list)

    def source(self) -> str:
        """Render the exact LA source text the parser consumes."""
        lines = [decl.render() for decl in self.decls]
        if self.decls and self.statements:
            lines.append("")
        lines.extend(self.statements)
        return "\n".join(lines) + "\n"

    def parse(self) -> Program:
        """Parse (and semantically validate) the rendered source."""
        return parse_program(self.source(), dict(self.dims), name=self.name)

    def referenced_names(self) -> frozenset:
        """Identifiers appearing in statement text (operand uses plus loop
        variables/keywords; good enough for the shrinker's dead-decl and
        dead-dim sweeps since generated names never collide with
        keywords)."""
        found = set()
        for statement in self.statements:
            for match in _IDENT_RE.findall(statement):
                if match not in _LA_KEYWORDS:
                    found.add(match)
        return frozenset(found)

    def to_json(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "dims": dict(self.dims),
            "decls": [decl.to_json() for decl in self.decls],
            "statements": list(self.statements),
        }

    @staticmethod
    def from_json(doc: Dict[str, object]) -> "FuzzProgram":
        return FuzzProgram(
            name=str(doc["name"]),
            dims={str(k): int(v) for k, v in dict(doc["dims"]).items()},
            decls=[FuzzDecl.from_json(d) for d in doc["decls"]],
            statements=[str(s) for s in doc["statements"]])


# ---------------------------------------------------------------------------
# Options (de)serialization
# ---------------------------------------------------------------------------


def options_to_json(options: Options) -> Dict[str, object]:
    """Only the fields that differ from the default :class:`Options`
    (keeps corpus entries readable and immune to new default-valued
    fields)."""
    defaults = Options()
    doc: Dict[str, object] = {}
    for f in dataclasses.fields(Options):
        value = getattr(options, f.name)
        if value == getattr(defaults, f.name):
            continue
        if f.name == "stage1_variants" and value is not None:
            doc[f.name] = {str(k): v for k, v in value.items()}
        else:
            doc[f.name] = value
    return doc


def options_from_json(doc: Dict[str, object]) -> Options:
    known = {f.name for f in dataclasses.fields(Options)}
    unknown = sorted(set(doc) - known)
    if unknown:
        raise FuzzError(f"unknown Options fields in fuzz case: {unknown}")
    kwargs = dict(doc)
    if kwargs.get("stage1_variants") is not None:
        kwargs["stage1_variants"] = {
            int(k): str(v) for k, v in dict(kwargs["stage1_variants"]).items()}
    if kwargs.get("verified_rewrites") is not None:
        # JSON has no tuples; restore the field to its canonical type so
        # round-tripped options compare equal to constructed ones
        kwargs["verified_rewrites"] = tuple(
            str(rid) for rid in kwargs["verified_rewrites"])
    return Options(**kwargs)


# ---------------------------------------------------------------------------
# The full case
# ---------------------------------------------------------------------------


@dataclass
class FuzzCase:
    """One differential-fuzzing input: program x options x input seed."""

    program: FuzzProgram
    options: Options = field(default_factory=Options)
    input_seed: int = 0
    #: generator seed that produced the case (None for hand-written ones)
    seed: Optional[int] = None

    def to_json(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "schema": SCHEMA_VERSION,
            "program": self.program.to_json(),
            "options": options_to_json(self.options),
            "input_seed": self.input_seed,
        }
        if self.seed is not None:
            doc["seed"] = self.seed
        return doc

    @staticmethod
    def from_json(doc: Dict[str, object]) -> "FuzzCase":
        schema = int(doc.get("schema", 0))
        if schema != SCHEMA_VERSION:
            raise FuzzError(
                f"unsupported fuzz-case schema {schema} "
                f"(this build reads {SCHEMA_VERSION})")
        return FuzzCase(
            program=FuzzProgram.from_json(dict(doc["program"])),
            options=options_from_json(dict(doc.get("options", {}))),
            input_seed=int(doc.get("input_seed", 0)),
            seed=(int(doc["seed"]) if doc.get("seed") is not None else None))

    def dumps(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"

    @staticmethod
    def loads(text: str) -> "FuzzCase":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FuzzError(f"malformed fuzz-case JSON: {exc}")
        if not isinstance(doc, dict):
            raise FuzzError("fuzz case must be a JSON object")
        return FuzzCase.from_json(doc)
