"""Differential fuzzing of the whole generation pipeline.

The paper's premise is that a program generator must be trusted across
an *open-ended* space of LA programs, operand properties, and codegen
variants -- not just the nine registry workloads.  This package opens
that space:

* :mod:`.generate` -- seeded random sampling of LA programs (the full
  grammar: operand kinds/properties, multi-statement bodies, all six
  HLAC templates, loops) and of generator options (the joint Stage-1 x
  codegen space, including pinned ``stage1_variants``).
* :mod:`.oracle` -- the differential oracle: run each (program, options)
  through the pipeline, execute on every backend
  (interpreter / NumPy-unrolled / NumPy-vectorized / compiled C), check
  agreement, and check against an independent LA-level NumPy/SciPy
  reference.
* :mod:`.shrink` -- greedy failure minimization preserving the failure
  signature.
* :mod:`.corpus` -- the committed corpus of minimized repros
  (``tests/fuzz_corpus/``), replayed by CI and the tier-1 suite.

CLI: ``python -m repro.fuzz run | replay | corpus`` (see
:mod:`.__main__`).
"""

from .corpus import (CorpusEntry, DEFAULT_CORPUS_DIR, entry_id,
                     entry_passes, load_corpus, load_entry, replay_entry,
                     save_entry)
from .generate import sample_case, sample_options, sample_program
from .oracle import (CaseResult, DEFAULT_REF_TOL, DEFAULT_TOL, make_inputs,
                     reference_outputs, resolve_backends, run_case)
from .shrink import ShrinkOutcome, shrink_case
from .spec import (FuzzCase, FuzzDecl, FuzzProgram, options_from_json,
                   options_to_json)

__all__ = [
    "FuzzCase", "FuzzDecl", "FuzzProgram",
    "options_from_json", "options_to_json",
    "sample_case", "sample_options", "sample_program",
    "CaseResult", "DEFAULT_TOL", "DEFAULT_REF_TOL",
    "make_inputs", "reference_outputs", "resolve_backends", "run_case",
    "ShrinkOutcome", "shrink_case",
    "CorpusEntry", "DEFAULT_CORPUS_DIR", "entry_id", "entry_passes",
    "load_corpus", "load_entry", "replay_entry", "save_entry",
]
