"""Command-line front-end of the differential fuzzer.

Usage (``PYTHONPATH=src python -m repro.fuzz <command>``)::

    run [--budget N] [--seed S] [--backends B[,B...]] [--tol T]
        [--ref-tol T] [--no-reference] [--max-statements N]
        [--max-size N] [--no-shrink] [--shrink-budget N] [--save DIR]
        [--json FILE] [--verified] [--verify-budget N] [--verbose]
        Sample N random (program, options) cases from the given seed and
        run each through the differential oracle.  Failures are shrunk
        to minimized repros and printed (and saved under --save as
        corpus-style JSON).  Exits 1 if any case crashed or diverged --
        this is the budgeted fixed-seed job CI runs.  --json additionally
        writes a machine-readable summary (cases, per-status and
        per-backend counts, seed) so CI asserts "zero divergences"
        structurally instead of grepping text.  --verified runs a small
        CEGIS pass per executable case first and fuzzes with the accepted
        rewrites applied -- the whole-grammar proof that the verified
        tier preserves the oracle's zero-divergence bar.

    replay [FILE ...] [--corpus DIR] [--backends ...] [--tol T]
        [--ref-tol T]
        Re-run saved repro files (default: every entry of the committed
        corpus, tests/fuzz_corpus/).  An entry documents a *fixed* bug
        (must come back ok) or, with an ``expect`` signature, a witness
        (must still fail the documented way); exits 1 otherwise.

    corpus [--corpus DIR]
        List the committed corpus: id, status when found, note.

Seeds are deterministic: the same ``--seed``/``--budget`` always fuzzes
the same cases, so a red run reproduces locally byte-for-byte.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..cli import EXIT_FAILURE, EXIT_OK, add_json_flag, fail, print_json
from ..errors import ReproError
from . import corpus as corpus_mod
from .generate import sample_case
from .oracle import DEFAULT_REF_TOL, DEFAULT_TOL, resolve_backends, run_case
from .shrink import shrink_case

#: Version of the ``run --json`` summary document; bump on any
#: incompatible change.  The document is ``{"schema": N, "seed": int,
#: "budget": int, "backends": [str...], "verified": bool, "counts":
#: {"ok"|"reject"|"crash"|"divergence": int}, "verified_rewrites":
#: {rewrite_id: int}, "failures": [{"seed", "status", "stage",
#: "describe"}...]}``.
RUN_SCHEMA_VERSION = 1


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differentially fuzz the LA -> C pipeline with random "
                    "programs and options.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="fuzz N random cases; shrink and report failures")
    run.add_argument("--budget", type=int, default=100, metavar="N",
                     help="number of random cases to run (default 100)")
    run.add_argument("--seed", type=int, default=0,
                     help="base seed; case i uses seed+i (default 0)")
    run.add_argument("--backends", default="auto",
                     help="comma-separated backend list, or 'auto' "
                          "(interpreter,numpy,numpy-vectorized + compiled "
                          "when $CC resolves)")
    run.add_argument("--tol", type=float, default=DEFAULT_TOL,
                     help=f"cross-backend tolerance "
                          f"(default {DEFAULT_TOL:g})")
    run.add_argument("--ref-tol", type=float, default=DEFAULT_REF_TOL,
                     help=f"tolerance against the LA-level NumPy/SciPy "
                          f"reference (default {DEFAULT_REF_TOL:g})")
    run.add_argument("--no-reference", action="store_true",
                     help="skip the LA-level reference check")
    run.add_argument("--max-statements", type=int, default=5, metavar="N",
                     help="statement budget per sampled program (default 5)")
    run.add_argument("--max-size", type=int, default=8, metavar="N",
                     help="largest operand dimension sampled (default 8)")
    run.add_argument("--no-shrink", action="store_true",
                     help="report raw failing cases without minimizing")
    run.add_argument("--shrink-budget", type=int, default=300, metavar="N",
                     help="oracle runs the shrinker may spend per failure "
                          "(default 300)")
    run.add_argument("--save", metavar="DIR",
                     help="write minimized failures as corpus-style JSON "
                          "entries into DIR")
    run.add_argument("--json", metavar="FILE", dest="json_path",
                     help="write a machine-readable run summary to FILE "
                          "('-' for stdout); see RUN_SCHEMA_VERSION")
    run.add_argument("--verified", action="store_true",
                     help="CEGIS-verify each case first and fuzz with the "
                          "accepted rewrites applied")
    run.add_argument("--verify-budget", type=int, default=2, metavar="N",
                     help="input draws per candidate rewrite under "
                          "--verified (default 2)")
    run.add_argument("--verbose", action="store_true",
                     help="print a line per case, not only failures")

    replay = sub.add_parser(
        "replay", help="re-run saved repros; every entry must pass")
    replay.add_argument("paths", nargs="*", metavar="FILE",
                        help="repro files (default: the committed corpus)")
    replay.add_argument("--corpus", default=corpus_mod.DEFAULT_CORPUS_DIR,
                        metavar="DIR",
                        help="corpus directory used when no FILE is given "
                             f"(default: {corpus_mod.DEFAULT_CORPUS_DIR})")
    replay.add_argument("--backends", default="auto",
                        help="comma-separated backend list or 'auto'")
    replay.add_argument("--tol", type=float, default=DEFAULT_TOL)
    replay.add_argument("--ref-tol", type=float, default=DEFAULT_REF_TOL)
    add_json_flag(replay)

    listing = sub.add_parser("corpus", help="list the committed corpus")
    listing.add_argument("--corpus", default=corpus_mod.DEFAULT_CORPUS_DIR,
                         metavar="DIR",
                         help="corpus directory "
                              f"(default: {corpus_mod.DEFAULT_CORPUS_DIR})")
    add_json_flag(listing)
    return parser


def _verify_case(case, args: argparse.Namespace):
    """Run a small CEGIS pass on one sampled case; returns the case with
    the accepted rewrites enabled (or unchanged when the case is not
    verifiable -- rejected programs stay rejects)."""
    import dataclasses

    from ..cegis.loop import optimize_program
    try:
        program = case.program.parse()
        outcome = optimize_program(
            program, case.options, budget=args.verify_budget,
            seed=case.input_seed, backends=args.backends,
            tol=args.tol, ref_tol=args.ref_tol)
    except ReproError:
        return case, ()
    if not outcome.accepted:
        return case, ()
    options = dataclasses.replace(
        case.options, verified_rewrites=tuple(outcome.accepted))
    return dataclasses.replace(case, options=options), tuple(outcome.accepted)


def _cmd_run(args: argparse.Namespace) -> int:
    counts = {"ok": 0, "reject": 0, "crash": 0, "divergence": 0}
    failures = 0
    failure_docs = []
    applied: dict = {}
    reference = not args.no_reference
    for index in range(args.budget):
        seed = args.seed + index
        case = sample_case(seed, max_statements=args.max_statements,
                           max_size=args.max_size)
        if args.verified:
            case, accepted = _verify_case(case, args)
            for rewrite_id in accepted:
                applied[rewrite_id] = applied.get(rewrite_id, 0) + 1
        result = run_case(case, backends=args.backends, tol=args.tol,
                          reference=reference, ref_tol=args.ref_tol)
        counts[result.status] += 1
        if result.failed:
            failure_docs.append({"seed": seed, "status": result.status,
                                 "stage": result.stage,
                                 "describe": result.describe()})
        if args.verbose or result.failed:
            print(f"seed {seed:8d}  {result.describe()}")
        if not result.failed:
            continue
        failures += 1
        if not args.no_shrink:
            shrunk = shrink_case(case, result, backends=args.backends,
                                 tol=args.tol, reference=reference,
                                 ref_tol=args.ref_tol,
                                 budget=args.shrink_budget)
            case, result = shrunk.case, shrunk.result
            print(f"  shrunk to {len(case.program.statements)} stmt(s), "
                  f"{len(case.program.decls)} operand(s) "
                  f"in {shrunk.attempts} attempts: {result.describe()}")
        if args.save:
            path = corpus_mod.save_entry(
                case, result, note=f"found by run --seed {args.seed} "
                                   f"(case seed {seed})",
                directory=args.save)
            print(f"  saved {path}")
        else:
            print("  repro:")
            for line in case.dumps().rstrip().splitlines():
                print(f"    {line}")
    total = args.budget
    print(f"{total} cases: {counts['ok']} ok, {counts['reject']} rejected, "
          f"{counts['crash']} crashed, {counts['divergence']} diverged")
    if args.json_path:
        import json

        summary = {
            "schema": RUN_SCHEMA_VERSION,
            "seed": args.seed,
            "budget": args.budget,
            "backends": resolve_backends(args.backends),
            "verified": bool(args.verified),
            "counts": dict(counts),
            "verified_rewrites": dict(sorted(applied.items())),
            "failures": failure_docs,
        }
        text = json.dumps(summary, indent=2, sort_keys=True)
        if args.json_path == "-":
            print(text)
        else:
            with open(args.json_path, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(f"summary written to {args.json_path}")
    if failures:
        print(f"{failures} unresolved failure(s)", file=sys.stderr)
        return 1
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    if args.paths:
        entries = [corpus_mod.load_entry(path) for path in args.paths]
    else:
        entries = corpus_mod.load_corpus(args.corpus)
    if not entries:
        if args.as_json:
            print_json({"entries": [], "failures": 0})
        else:
            print("no corpus entries found")
        return EXIT_OK
    failures = 0
    docs = []
    for entry in entries:
        result = corpus_mod.replay_entry(entry, backends=args.backends,
                                         tol=args.tol, ref_tol=args.ref_tol)
        passed = corpus_mod.entry_passes(entry, result)
        if entry.expects_failure:
            status = "witness" if passed else "FAIL"
        else:
            status = "ok" if passed else "FAIL"
        if not passed:
            failures += 1
        if args.as_json:
            docs.append({"id": entry.entry_id, "passed": passed,
                         "status": status, "was": entry.found_status,
                         "now": result.describe(), "note": entry.note})
            continue
        note = f"  ({entry.note})" if entry.note else ""
        print(f"{entry.entry_id}  {status:7s} "
              f"was:{entry.found_status:10s} now:{result.describe()}{note}")
    if args.as_json:
        print_json({"entries": docs, "failures": failures})
        return EXIT_FAILURE if failures else EXIT_OK
    if failures:
        print(f"{failures} of {len(entries)} corpus entries fail",
              file=sys.stderr)
        return EXIT_FAILURE
    print(f"all {len(entries)} corpus entries replay ok")
    return EXIT_OK


def _cmd_corpus(args: argparse.Namespace) -> int:
    entries = corpus_mod.load_corpus(args.corpus)
    if args.as_json:
        print_json({"entries": [
            {"id": entry.entry_id, "was": entry.found_status,
             "statements": len(entry.case.program.statements),
             "note": entry.note}
            for entry in entries]})
        return EXIT_OK
    if not entries:
        print("no corpus entries found")
        return EXIT_OK
    for entry in entries:
        statements = len(entry.case.program.statements)
        print(f"{entry.entry_id}  was:{entry.found_status:10s} "
              f"{statements} stmt(s)  {entry.note}")
    print(f"{len(entries)} entries")
    return EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "replay":
            return _cmd_replay(args)
        return _cmd_corpus(args)
    except ReproError as exc:
        return fail(exc)


if __name__ == "__main__":
    sys.exit(main())
