"""Greedy minimization of failing fuzz cases.

A raw failing case is noisy: five statements, three dimensions, a dozen
operands, and a fully populated option set, of which usually one
statement and one option matter.  The shrinker repeatedly tries
reductions -- dropping statements (with dead declarations and dimensions
pruned), shrinking dimension bindings, relaxing operand properties,
removing ``ow`` overlays, and resetting options to their defaults -- and
keeps every reduction that still fails *with the same signature*
(crash with the same exception type, or the same kind of divergence), so
the minimized repro reproduces the original bug rather than a different
one uncovered along the way.

Each accepted or rejected candidate costs one full differential run;
``budget`` caps the total.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from ..slingen.options import Options
from .oracle import (DEFAULT_REF_TOL, DEFAULT_TOL, CaseResult, run_case)
from .spec import FuzzCase, FuzzProgram


@dataclass
class ShrinkOutcome:
    """The minimized case plus bookkeeping."""

    case: FuzzCase
    result: CaseResult
    attempts: int


def _clone(case: FuzzCase) -> FuzzCase:
    return FuzzCase.from_json(case.to_json())


def _prune_program(program: FuzzProgram) -> None:
    """Drop declarations (and dimension bindings) nothing references.

    A declaration stays when a statement mentions it or when a surviving
    declaration overlays it via ``ow``; iterate to a fixpoint because
    removing an overlayer can orphan its target.
    """
    while True:
        referenced = program.referenced_names()
        needed = set(referenced)
        for decl in program.decls:
            if decl.name in needed and decl.overwrites:
                needed.add(decl.overwrites)
        kept = [d for d in program.decls if d.name in needed]
        if len(kept) == len(program.decls):
            break
        program.decls = kept
    used_dims = {d.rows for d in program.decls} \
        | {d.cols for d in program.decls}
    program.dims = {name: value for name, value in program.dims.items()
                    if name in used_dims}


def shrink_case(case: FuzzCase, original: Optional[CaseResult] = None,
                backends: str = "auto", tol: float = DEFAULT_TOL,
                reference: bool = True, ref_tol: float = DEFAULT_REF_TOL,
                budget: int = 300) -> ShrinkOutcome:
    """Minimize a failing case, preserving its failure signature."""
    if original is None:
        original = run_case(case, backends=backends, tol=tol,
                            reference=reference, ref_tol=ref_tol)
    if not original.failed:
        return ShrinkOutcome(case=case, result=original, attempts=0)
    signature = original.signature()
    attempts = 0
    best_result = original

    def still_fails(candidate: FuzzCase) -> bool:
        nonlocal attempts, best_result
        if attempts >= budget:
            return False
        attempts += 1
        outcome = run_case(candidate, backends=backends, tol=tol,
                           reference=reference, ref_tol=ref_tol)
        if outcome.signature() == signature:
            best_result = outcome
            return True
        return False

    current = case
    changed = True
    while changed and attempts < budget:
        changed = False

        # 1. drop whole statements (last first: later statements depend
        # on earlier ones, never the reverse)
        index = len(current.program.statements) - 1
        while index >= 0 and attempts < budget:
            candidate = _clone(current)
            del candidate.program.statements[index]
            _prune_program(candidate.program)
            if candidate.program.statements and still_fails(candidate):
                current = candidate
                changed = True
            index -= 1

        # 2. shrink dimension bindings (candidates deduplicated: each
        # attempt costs a full differential run from the budget)
        for dim in sorted(current.program.dims):
            value = current.program.dims[dim]
            for smaller in sorted({s for s in (1, 2, value // 2, value - 1)
                                   if 1 <= s < value}):
                candidate = _clone(current)
                candidate.program.dims[dim] = smaller
                if still_fails(candidate):
                    current = candidate
                    changed = True
                    break

        # 3. relax operand properties / remove ow overlays
        for position in range(len(current.program.decls)):
            decl = current.program.decls[position]
            if decl.annotations:
                candidates = [_drop_annotations(current, position, None)]
                candidates += [
                    _drop_annotations(current, position, single)
                    for single in decl.annotations]
                for candidate in candidates:
                    if attempts >= budget:
                        break
                    if still_fails(candidate):
                        current = candidate
                        changed = True
                        break
            decl = current.program.decls[position]
            if decl.overwrites:
                candidate = _clone(current)
                candidate.program.decls[position].overwrites = None
                if still_fails(candidate):
                    current = candidate
                    changed = True

        # 4. reset options to their defaults, one field at a time
        defaults = Options()
        for field in dataclasses.fields(Options):
            if getattr(current.options, field.name) == \
                    getattr(defaults, field.name):
                continue
            candidate = _clone(current)
            setattr(candidate.options, field.name,
                    getattr(defaults, field.name))
            if still_fails(candidate):
                current = candidate
                changed = True

    return ShrinkOutcome(case=current, result=best_result, attempts=attempts)


def _drop_annotations(case: FuzzCase, position: int,
                      single: Optional[str]) -> FuzzCase:
    """A clone with all (``single=None``) or one annotation removed from
    the declaration at ``position``."""
    candidate = _clone(case)
    decl = candidate.program.decls[position]
    if single is None:
        decl.annotations = []
    else:
        decl.annotations = [a for a in decl.annotations if a != single]
    return candidate
