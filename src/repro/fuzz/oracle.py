"""The differential oracle: one fuzz case through the whole pipeline.

``run_case`` parses the sampled LA program, generates code with the
sampled options, executes the generated kernel on every available
backend (C-IR interpreter, NumPy unrolled, NumPy vectorized, compiled C
when ``$CC`` resolves) via :func:`repro.backend.make_executor`, and
compares all outputs element-wise.  It also evaluates the *LA program
itself* with NumPy/SciPy (an independent semantic reference that catches
wrong-code bugs all backends would faithfully execute) and checks the
kernels against it.

Outcome classification:

* ``ok`` -- everything agreed.
* ``reject`` -- the frontend refused the program (syntax/semantic/
  dimension errors) or the HLAC surface does not cover it
  (:class:`~repro.errors.UnsupportedHLACError`) or the options were
  invalid.  Rejects are *documented refusals*, not failures.
* ``crash`` -- any other exception anywhere in the pipeline.  Once the
  frontend accepted a program, the pipeline must compile and run it.
* ``divergence`` -- backends disagreed beyond tolerance, or the kernels
  disagree with the LA-level reference.

Numeric comparison is relative-aware (``|a-b| <= tol * max(1, |a|,
|b|)``) with NaN == NaN, because C's ``sqrt`` of a negative value is NaN
on every backend by design.

The reference evaluator models the pipeline's documented storage
semantics: sBLAC statements read and write full buffers; HLAC expansions
read triangular coefficients from their stored triangle, mirror
symmetric operands from their stored half, and write triangular unknowns
only inside their triangle (so ``ow(...)`` leftovers outside it survive,
exactly like the generated code behaves).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..backend import make_executor, resolve_backends
from ..cl1ck.operations import recognize
from ..errors import (ConfigurationError, DimensionError, LASemanticError,
                      LASyntaxError, ReproError, UnsupportedHLACError)
from ..ir.operands import View
from ..ir.program import Assign, Program
from ..ir.properties import StorageHalf, Structure
from ..kernels import reference as ref
from ..slingen.generator import SLinGen
from .spec import FuzzCase

#: Differential tolerance between execution backends: they run the same
#: operation sequence, so they agree to accumulation noise.
DEFAULT_TOL = 1e-9

#: Tolerance against the LA-level NumPy/SciPy reference, which computes
#: with *different* algorithms (LAPACK solves vs. synthesized loops).
DEFAULT_REF_TOL = 1e-6

#: Frontend errors that mean "program refused", not "pipeline broken".
_REJECT_PARSE = (LASyntaxError, LASemanticError, DimensionError)
_REJECT_GENERATE = (UnsupportedHLACError, ConfigurationError)


class ReferenceSkip(Exception):
    """The LA-level reference is not computable for these values (e.g. a
    Cholesky right-hand side that is not numerically positive definite);
    the differential backend comparison still stands."""


@dataclass
class CaseResult:
    """Outcome of one differential run."""

    status: str                   # ok | reject | crash | divergence
    stage: str = ""               # parse | generate | analysis | execute | compare | reference
    error_type: str = ""
    error: str = ""
    backend: str = ""             # backend that crashed (execute stage)
    backends: List[str] = field(default_factory=list)
    worst_delta: float = 0.0
    worst_pair: str = ""
    divergent: List[str] = field(default_factory=list)
    reference_checked: bool = False
    reference_skip: str = ""

    @property
    def failed(self) -> bool:
        return self.status in ("crash", "divergence")

    def signature(self) -> Tuple[str, ...]:
        """What kind of failure this is -- the shrinker only accepts
        reductions that preserve it."""
        if self.status == "crash":
            return ("crash", self.error_type)
        if self.status == "divergence":
            kind = "reference" if "reference" in self.worst_pair \
                else "backend"
            return ("divergence", kind)
        return (self.status,)

    def describe(self) -> str:
        if self.status == "ok":
            extra = f" (reference skipped: {self.reference_skip})" \
                if self.reference_skip else ""
            return f"ok delta={self.worst_delta:.2e}{extra}"
        if self.status == "reject":
            return f"reject[{self.stage}] {self.error_type}: {self.error}"
        if self.status == "crash":
            where = f"{self.stage}:{self.backend}" if self.backend \
                else self.stage
            return f"crash[{where}] {self.error_type}: {self.error}"
        return (f"divergence {self.worst_pair} delta={self.worst_delta:.3e} "
                f"outputs={','.join(self.divergent)}")


# ---------------------------------------------------------------------------
# Inputs
# ---------------------------------------------------------------------------


def make_inputs(program: Program, seed: int) -> Dict[str, np.ndarray]:
    """Well-conditioned random inputs honouring declared properties.

    Structured operands get values consistent with their annotation
    (symmetric matrices symmetric, triangular matrices with exact zeros
    outside the triangle, SPD matrices genuinely positive definite,
    non-singular triangles with a dominant diagonal, unit diagonals
    exactly 1) so solves stay well-conditioned and structure-exploiting
    algorithms see the values they were promised.
    """
    rng = np.random.default_rng(seed)
    inputs: Dict[str, np.ndarray] = {}
    for operand in program.operands.values():
        if not operand.is_input:
            continue
        rows, cols = operand.rows, operand.cols
        props = operand.properties
        if rows == 1 and cols == 1:
            sign = 1.0 if rng.random() < 0.5 else -1.0
            inputs[operand.name] = np.array([[sign * rng.uniform(0.5, 1.5)]])
            continue
        if cols == 1 or rows == 1:
            inputs[operand.name] = rng.standard_normal((rows, cols))
            continue
        scale = 1.0 / np.sqrt(max(rows, cols))
        if rows == cols and props.positive_definite:
            value = ref.random_spd(rows, rng)
        elif rows == cols and props.structure is Structure.SYMMETRIC:
            raw = rng.standard_normal((rows, rows)) * scale
            value = (raw + raw.T) / 2.0
        elif rows == cols and props.structure is Structure.LOWER_TRIANGULAR:
            value = np.tril(rng.standard_normal((rows, rows)) * scale)
            if props.non_singular:
                np.fill_diagonal(value, 1.0 + np.abs(rng.standard_normal(rows)))
            if props.unit_diagonal:
                np.fill_diagonal(value, 1.0)
        elif rows == cols and props.structure is Structure.UPPER_TRIANGULAR:
            value = np.triu(rng.standard_normal((rows, rows)) * scale)
            if props.non_singular:
                np.fill_diagonal(value, 1.0 + np.abs(rng.standard_normal(rows)))
            if props.unit_diagonal:
                np.fill_diagonal(value, 1.0)
        else:
            value = rng.standard_normal((rows, cols)) * scale
        inputs[operand.name] = value
    return inputs


# ---------------------------------------------------------------------------
# LA-level reference evaluation
# ---------------------------------------------------------------------------


def _tri_read(value: np.ndarray, structure: Structure) -> np.ndarray:
    if structure is Structure.LOWER_TRIANGULAR:
        return np.tril(value)
    if structure is Structure.UPPER_TRIANGULAR:
        return np.triu(value)
    return value


def _struct_read(view: View, value: np.ndarray) -> np.ndarray:
    """Read an HLAC operand the way the synthesized algorithm does."""
    props = view.operand.properties
    if props.structure in (Structure.LOWER_TRIANGULAR,
                           Structure.UPPER_TRIANGULAR):
        return _tri_read(value, props.structure)
    if props.structure is Structure.SYMMETRIC:
        if props.storage is StorageHalf.LOWER:
            low = np.tril(value)
            return low + np.tril(value, -1).T
        up = np.triu(value)
        return up + np.triu(value, 1).T
    return value


def _region_write(region: str, old: np.ndarray,
                  solution: np.ndarray) -> np.ndarray:
    """Write an HLAC unknown the way the synthesized algorithm does.

    ``region`` is determined by the *operation* (a Cholesky factor is
    written triangle-only whatever the operand declaration says), so
    anything else in the buffer -- zeros or ``ow`` leftovers -- survives
    exactly like in the generated code."""
    if region == "lower":
        out = old.copy()
        mask = np.tril(np.ones_like(old, dtype=bool))
        out[mask] = solution[mask]
        return out
    if region == "upper":
        out = old.copy()
        mask = np.triu(np.ones_like(old, dtype=bool))
        out[mask] = solution[mask]
        return out
    return solution.copy()


class _ReferenceEvaluator:
    """Evaluates an LA program on NumPy arrays, modelling the pipeline's
    storage-group (``ow``) aliasing."""

    def __init__(self, program: Program, inputs: Dict[str, np.ndarray]):
        self.program = program
        self.leaders = program.storage_groups()
        self.env: Dict[str, np.ndarray] = {}
        for leader in sorted(set(self.leaders.values())):
            operand = program.operands[leader]
            if operand.is_input:
                value = np.asarray(inputs[leader], dtype=np.float64)
                self.env[leader] = value.reshape(operand.rows,
                                                 operand.cols).copy()
            else:
                self.env[leader] = np.zeros((operand.rows, operand.cols))

    def _value(self, name: str) -> np.ndarray:
        return self.env[self.leaders[name]]

    def run(self) -> Dict[str, np.ndarray]:
        import scipy.linalg
        self._scipy = scipy.linalg
        # non-finite values propagate like in the kernels, silently
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            for statement in self.program.unrolled_statements():
                if statement.is_hlac():
                    self._eval_hlac(statement)
                elif isinstance(statement, Assign):
                    value = self._eval_expr(statement.rhs)
                    leader = self.leaders[statement.lhs.operand.name]
                    self.env[leader] = np.asarray(
                        value, dtype=np.float64).reshape(
                            statement.lhs.rows, statement.lhs.cols).copy()
                else:
                    raise ReferenceSkip(
                        f"reference cannot evaluate "
                        f"{type(statement).__name__}")
        outputs: Dict[str, np.ndarray] = {}
        groups: Dict[str, List[str]] = {}
        for name, leader in self.leaders.items():
            groups.setdefault(leader, []).append(name)
        for leader, members in groups.items():
            if any(self.program.operands[m].is_output for m in members):
                outputs[leader] = self.env[leader]
        return outputs

    # -- expressions --------------------------------------------------------

    def _eval_expr(self, expr) -> np.ndarray:
        from ..ir.expr import (Add, Const, Div, Mul, Neg, Ref, Sqrt, Sub,
                               Transpose)
        if isinstance(expr, Const):
            return np.array([[float(expr.value)]])
        if isinstance(expr, Ref):
            return self._value(expr.view.operand.name)
        if isinstance(expr, Transpose):
            return self._eval_expr(expr.child).T
        if isinstance(expr, Neg):
            return -self._eval_expr(expr.child)
        if isinstance(expr, Sqrt):
            with np.errstate(invalid="ignore"):
                return np.sqrt(self._eval_expr(expr.child))
        if isinstance(expr, Add):
            return self._eval_expr(expr.left) + self._eval_expr(expr.right)
        if isinstance(expr, Sub):
            return self._eval_expr(expr.left) - self._eval_expr(expr.right)
        if isinstance(expr, Mul):
            left = self._eval_expr(expr.left)
            right = self._eval_expr(expr.right)
            if left.shape == (1, 1):
                return float(left[0, 0]) * right
            if right.shape == (1, 1):
                return left * float(right[0, 0])
            return left @ right
        if isinstance(expr, Div):
            left = self._eval_expr(expr.left)
            right = self._eval_expr(expr.right)
            with np.errstate(divide="ignore", invalid="ignore"):
                return left / float(right[0, 0])
        raise ReferenceSkip(
            f"reference cannot evaluate expression {type(expr).__name__}")

    # -- HLACs --------------------------------------------------------------

    def _read(self, view: View) -> np.ndarray:
        return _struct_read(view, self._value(view.operand.name))

    def _write(self, view: View, solution: np.ndarray,
               region: str = "full") -> None:
        leader = self.leaders[view.operand.name]
        self.env[leader] = _region_write(region, self.env[leader], solution)

    def _eval_hlac(self, statement) -> None:
        scipy_linalg = self._scipy
        operation = recognize(statement)
        views = operation.views
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                if operation.kind == "cholesky_upper":
                    # like LAPACK dpotrf('U'), the expansion reads only
                    # the triangle it factors (observable under ow
                    # aliasing), not the operand's declared storage half
                    rhs = self._value(views["rhs"].operand.name)
                    mirrored = np.triu(rhs) + np.triu(rhs, 1).T
                    solution = scipy_linalg.cholesky(mirrored, lower=False)
                    self._write(views["factor"], solution, region="upper")
                elif operation.kind == "cholesky_lower":
                    rhs = self._value(views["rhs"].operand.name)
                    mirrored = np.tril(rhs) + np.tril(rhs, -1).T
                    solution = scipy_linalg.cholesky(mirrored, lower=True)
                    self._write(views["factor"], solution, region="lower")
                elif operation.kind == "trsm":
                    coeff_view = views["coefficient"]
                    lower = (coeff_view.operand.properties.structure
                             is Structure.LOWER_TRIANGULAR)
                    trans = "T" if operation.flags.get("transposed") else "N"
                    solution = scipy_linalg.solve_triangular(
                        self._read(coeff_view),
                        self._value(views["rhs"].operand.name),
                        lower=lower, trans=trans)
                    self._write(views["unknown"], solution)
                elif operation.kind == "trtri":
                    coeff_view = views["coefficient"]
                    lower = (coeff_view.operand.properties.structure
                             is Structure.LOWER_TRIANGULAR)
                    trans = "T" if operation.flags.get("transposed") else "N"
                    eye = np.eye(coeff_view.rows)
                    solution = scipy_linalg.solve_triangular(
                        self._read(coeff_view), eye, lower=lower, trans=trans)
                    # the result triangle is op(T)'s triangle
                    self._write(views["unknown"], solution,
                                region=str(operation.flags.get("uplo",
                                                               "full")))
                elif operation.kind == "trsyl":
                    solution = scipy_linalg.solve_sylvester(
                        self._read(views["coefficient_left"]),
                        self._read(views["coefficient_right"]),
                        self._value(views["rhs"].operand.name))
                    self._write(views["unknown"], solution)
                elif operation.kind == "trlya":
                    coeff = self._read(views["coefficient"])
                    # the expansion computes X[i, j] for i >= j from
                    # S[i, j] and mirrors, i.e. it reads the *lower*
                    # half of the right-hand side buffer (observable
                    # when ow aliasing desynchronized the halves)
                    rhs = self._value(views["rhs"].operand.name)
                    mirrored = np.tril(rhs) + np.tril(rhs, -1).T
                    solution = scipy_linalg.solve_sylvester(
                        coeff, coeff.T, mirrored)
                    self._write(views["unknown"], solution)
                else:
                    raise ReferenceSkip(
                        f"reference has no rule for HLAC {operation.kind!r}")
        except (ValueError, np.linalg.LinAlgError) as exc:
            raise ReferenceSkip(
                f"{operation.kind}: {type(exc).__name__}: {exc}")


def reference_outputs(program: Program,
                      inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """LA-level reference results per writable storage-group leader.

    Raises :class:`ReferenceSkip` when not computable for these values.
    """
    return _ReferenceEvaluator(program, inputs).run()


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------


def _mismatch_mask(a: np.ndarray, b: np.ndarray, tol: float) -> np.ndarray:
    """Elementwise disagreement beyond a relative-aware tolerance.

    NaN agrees with NaN (C sqrt semantics), equal infinities agree, and
    the tolerance scales with magnitude so amplified-but-identical
    computations do not alarm."""
    with np.errstate(invalid="ignore"):
        diff = np.abs(a - b)
        scale = np.maximum(1.0, np.maximum(np.abs(a), np.abs(b)))
        close = diff <= tol * scale
    equal = (a == b) | (np.isnan(a) & np.isnan(b))
    return ~(equal | close)


#: Public name of the elementwise comparison, for reuse outside the
#: fuzzer (the CEGIS verifier judges candidates with the same predicate
#: the oracle judges backends with).
mismatch_mask = _mismatch_mask


def divergent_buffers(a: Dict[str, np.ndarray], b: Dict[str, np.ndarray],
                      tol: float) -> List[str]:
    """Names of buffers present in both dicts that disagree beyond
    ``tol`` (in ``a``'s iteration order, so callers report the first
    divergence deterministically)."""
    return [buf for buf in a
            if buf in b and _mismatch_mask(a[buf], b[buf], tol).any()]


def max_deviation(a: Dict[str, np.ndarray],
                  b: Dict[str, np.ndarray]) -> float:
    """Largest |delta| between two output dicts (inf on NaN mismatch)."""
    worst = 0.0
    for name in a:
        mask = _mismatch_mask(a[name], b[name], tol=np.inf)
        if mask.any():
            return float("inf")
        with np.errstate(invalid="ignore"):
            diff = np.abs(a[name] - b[name])
        finite = diff[np.isfinite(diff)]
        if finite.size:
            worst = max(worst, float(finite.max()))
    return worst


# ---------------------------------------------------------------------------
# The oracle
# ---------------------------------------------------------------------------


def run_case(case: FuzzCase, backends: str = "auto",
             tol: float = DEFAULT_TOL, reference: bool = True,
             ref_tol: float = DEFAULT_REF_TOL,
             phase_cache: "object | None" = None) -> CaseResult:
    """Run one fuzz case differentially and classify the outcome.

    ``phase_cache`` (a :class:`~repro.pipeline.cache.PhaseCache`;
    ``None`` = the shared process-wide one) memoizes pipeline artifacts
    across cases, so campaigns that revisit the same program under
    different codegen options skip Stage 1 after the first build.
    """
    names = resolve_backends(backends)

    try:
        program = case.program.parse()
    except _REJECT_PARSE as exc:
        return CaseResult(status="reject", stage="parse",
                          error_type=type(exc).__name__, error=str(exc))
    except Exception as exc:   # noqa: BLE001 - classifying, not handling
        return CaseResult(status="crash", stage="parse",
                          error_type=type(exc).__name__, error=str(exc))

    try:
        result = SLinGen(case.options,
                         phase_cache=phase_cache).generate_result(program)
    except _REJECT_GENERATE as exc:
        return CaseResult(status="reject", stage="generate",
                          error_type=type(exc).__name__, error=str(exc))
    except Exception as exc:   # noqa: BLE001
        return CaseResult(status="crash", stage="generate",
                          error_type=type(exc).__name__, error=str(exc))

    # Static verification before any backend spends execution work: an
    # artifact the verifier rejects is a pipeline bug even if every
    # backend happens to agree on it (e.g. all reading the same
    # out-of-bounds garbage or the same structural zero).
    from ..analysis import verify_function, verify_program
    report = verify_function(result.function)
    if result.basic_program is not None:
        report = report.merged_with(verify_program(result.basic_program))
    if not report.ok:
        return CaseResult(
            status="crash", stage="analysis", backends=names,
            error_type="AnalysisError",
            error="; ".join(d.describe() for d in report.errors[:8]))

    inputs = make_inputs(program, case.input_seed)

    outputs: Dict[str, Dict[str, np.ndarray]] = {}
    for name in names:
        try:
            kernel = make_executor(result.function, backend=name,
                                   c_code=result.c_code)
            outputs[name] = kernel.run(inputs)
        except Exception as exc:   # noqa: BLE001
            return CaseResult(status="crash", stage="execute", backend=name,
                              backends=names,
                              error_type=type(exc).__name__, error=str(exc))

    outcome = CaseResult(status="ok", backends=names)
    for i, first in enumerate(names):
        for second in names[i + 1:]:
            divergent = divergent_buffers(outputs[first], outputs[second],
                                          tol)
            delta = max_deviation(outputs[first], outputs[second])
            if delta > outcome.worst_delta and not divergent:
                outcome.worst_delta = delta
                outcome.worst_pair = f"{first} vs {second}"
            if divergent:
                return CaseResult(
                    status="divergence", stage="compare", backends=names,
                    worst_delta=delta, worst_pair=f"{first} vs {second}",
                    divergent=divergent)

    if reference:
        base = names[0]
        try:
            expected = reference_outputs(program, inputs)
            outcome.reference_checked = True
            divergent = divergent_buffers(expected, outputs[base], ref_tol)
            if divergent:
                delta = max_deviation(
                    {b: outputs[base][b] for b in expected}, expected)
                return CaseResult(
                    status="divergence", stage="reference", backends=names,
                    worst_delta=delta,
                    worst_pair=f"{base} vs reference",
                    divergent=divergent)
        except ReferenceSkip as exc:
            outcome.reference_skip = str(exc)
        except ReproError as exc:
            # the pipeline accepted what our evaluator cannot model --
            # that is an oracle gap worth surfacing, not an agreement
            return CaseResult(status="crash", stage="reference",
                              backends=names,
                              error_type=type(exc).__name__, error=str(exc))
    return outcome
