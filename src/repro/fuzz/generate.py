"""Seeded random sampling of LA programs and generator options.

The program sampler walks the same grammar the parser accepts (paper
Fig. 4): random operand declarations over every kind and property the
language knows (general / symmetric / triangular matrices, vectors,
scalars, ``ow(...)`` storage overlays), multi-statement bodies mixing
sBLAC expressions (sums, products, scalings, divisions, transposes,
inner/outer products, ``sqrt``), the six supported HLAC templates
(Cholesky both ways, triangular solve/inverse, Sylvester, Lyapunov), and
fixed-trip-count ``for`` loops.  Statements chain: later statements may
read anything already computed, InOut operands accumulate in place, and
outputs may overwrite other operands.

The options sampler draws from the joint Stage-1 x codegen space --
vectorization and vector width, blocking, unrolling thresholds, the
individual Stage-3 passes, rewrite rules, autotuning budgets, and pinned
``stage1_variants`` (discovered per program via
:func:`~repro.slingen.stage1.find_hlac_sites`).

Everything is a pure function of the seed: ``sample_case(seed)`` always
returns the same case, which CI relies on (fixed-seed budgeted runs) and
tests assert.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..errors import ReproError
from ..slingen.options import Options
from .spec import FuzzCase, FuzzDecl, FuzzProgram

#: symbolic shape: (rows-dim-name, cols-dim-name), "1" for unit
Shape = Tuple[str, str]

_SCALAR: Shape = ("1", "1")

#: size distribution for dimension bindings (biased small: generation
#: cost grows fast with size and most structure bugs show at n <= 8)
_SIZE_POOL = (1, 2, 2, 3, 3, 4, 4, 4, 5, 5, 6, 6, 7, 8)

_CONST_POOL = ("1", "2", "3", "0.5", "1.5", "0.25", "4", "0.75")


class _ProgramBuilder:
    """Mutable state while sampling one program."""

    def __init__(self, rng: random.Random, name: str, max_size: int,
                 max_depth: int = 3):
        self.rng = rng
        self.max_depth = max_depth
        self.program = FuzzProgram(name=name)
        self.written: set = set()
        self._counters: Dict[str, int] = {}
        ndims = rng.randint(1, 3)
        for _ in range(ndims):
            self._fresh_dim(max_size)

    # -- naming / dims -------------------------------------------------------

    def _fresh_name(self, prefix: str) -> str:
        count = self._counters.get(prefix, 0)
        self._counters[prefix] = count + 1
        return f"{prefix}{count}"

    def _fresh_dim(self, max_size: int) -> str:
        name = self._fresh_name("n")
        self.program.dims[name] = min(self.rng.choice(_SIZE_POOL), max_size)
        return name

    def pick_dim(self) -> str:
        return self.rng.choice(sorted(self.program.dims))

    # -- operand pool --------------------------------------------------------

    def shape_of(self, decl: FuzzDecl) -> Shape:
        if decl.kind == "Sca":
            return _SCALAR
        if decl.kind == "Vec":
            return (decl.rows, "1")
        return (decl.rows, decl.cols)

    def readable(self, decl: FuzzDecl) -> bool:
        return decl.io in ("In", "InOut") or decl.name in self.written

    def readables(self, shape: Shape) -> List[FuzzDecl]:
        return [d for d in self.program.decls
                if self.readable(d) and self.shape_of(d) == shape]

    def declare(self, kind: str, shape: Shape, io: str,
                annotations: Optional[List[str]] = None,
                overwrites: Optional[str] = None) -> FuzzDecl:
        prefix = {"Mat": "A", "Vec": "x", "Sca": "s"}[kind]
        decl = FuzzDecl(kind=kind, name=self._fresh_name(prefix),
                        rows=shape[0], cols=shape[1], io=io,
                        annotations=list(annotations or []),
                        overwrites=overwrites)
        self.program.decls.append(decl)
        return decl

    def _kind_for(self, shape: Shape) -> str:
        if shape == _SCALAR:
            return "Sca"
        if shape[1] == "1":
            return "Vec"
        return "Mat"

    def _random_input_annotations(self, shape: Shape) -> List[str]:
        """Structure properties for a fresh input operand."""
        if self._kind_for(shape) != "Mat" or shape[0] != shape[1]:
            return []
        roll = self.rng.random()
        if roll < 0.50:
            return []
        if roll < 0.62:
            return ["UpSym"]
        if roll < 0.68:
            return ["LoSym"]
        if roll < 0.76:
            return ["UpSym", "PD"]
        annotations = ["LoTri"] if roll < 0.88 else ["UpTri"]
        if self.rng.random() < 0.6:
            annotations.append("NS")
        if self.rng.random() < 0.15:
            annotations.append("UnitDiag")
        return annotations

    def fresh_input(self, shape: Shape) -> FuzzDecl:
        return self.declare(self._kind_for(shape), shape, "In",
                            self._random_input_annotations(shape))

    def operand(self, shape: Shape) -> FuzzDecl:
        """A readable operand of the given shape (reused or fresh)."""
        pool = self.readables(shape)
        if pool and self.rng.random() < 0.65:
            return self.rng.choice(pool)
        return self.fresh_input(shape)

    # -- expressions ---------------------------------------------------------

    def expr(self, shape: Shape, depth: int = 0) -> str:
        """Random LA expression text of the given symbolic shape."""
        rng = self.rng
        scalar = shape == _SCALAR
        if depth >= self.max_depth \
                or rng.random() < 0.30 + 0.22 * depth:
            return self.leaf(shape)
        ops = ["add", "sub", "mul", "scale", "neg", "div"]
        if scalar:
            ops.append("sqrt")
        elif shape[0] != shape[1] or shape[0] != "1":
            ops.append("transpose")
        op = rng.choice(ops)
        if op in ("add", "sub"):
            glue = "+" if op == "add" else "-"
            return (f"({self.expr(shape, depth + 1)} {glue} "
                    f"{self.expr(shape, depth + 1)})")
        if op == "mul":
            inner = rng.choice(sorted(self.program.dims) + ["1"])
            left = self.expr((shape[0], inner), depth + 1)
            right = self.expr((inner, shape[1]), depth + 1)
            return f"({left} * {right})"
        if op == "scale":
            factor = self.expr(_SCALAR, depth + 1)
            body = self.expr(shape, depth + 1)
            if rng.random() < 0.5:
                return f"({factor} * {body})"
            return f"({body} * {factor})"
        if op == "div":
            # divisor biased to a leaf (scalar input or constant): inputs
            # are drawn away from zero, so quotients stay well-scaled
            divisor = self.expr(_SCALAR, depth + 2)
            return f"({self.expr(shape, depth + 1)} / {divisor})"
        if op == "neg":
            return f"(-{self.expr(shape, depth + 1)})"
        if op == "sqrt":
            return f"sqrt({self.expr(shape, depth + 1)})"
        if op == "transpose":
            return f"({self.expr((shape[1], shape[0]), depth + 1)})'"
        raise AssertionError(op)

    def leaf(self, shape: Shape) -> str:
        rng = self.rng
        if shape == _SCALAR and rng.random() < 0.22:
            return rng.choice(_CONST_POOL)
        transposable = [d for d in self.program.decls
                        if self.readable(d)
                        and self.shape_of(d) == (shape[1], shape[0])
                        and d.kind == "Mat"]
        if shape != _SCALAR and transposable and rng.random() < 0.25:
            return f"{rng.choice(transposable).name}'"
        return self.operand(shape).name

    # -- statements ----------------------------------------------------------

    def _maybe_overwrite_target(self, shape: Shape) -> Optional[str]:
        """An In/InOut operand a fresh output may overlay via ``ow``."""
        overwritten = {d.overwrites for d in self.program.decls
                       if d.overwrites}
        pool = [d for d in self.program.decls
                if d.io in ("In", "InOut") and self.shape_of(d) == shape
                and d.name not in overwritten and d.overwrites is None]
        if pool and self.rng.random() < 0.10:
            return self.rng.choice(pool).name
        return None

    def _pick_dest(self) -> FuzzDecl:
        rng = self.rng
        inouts = [d for d in self.program.decls if d.io == "InOut"]
        if inouts and rng.random() < 0.25:
            return rng.choice(inouts)
        written_outs = [d for d in self.program.decls
                        if d.io == "Out" and d.name in self.written]
        if written_outs and rng.random() < 0.12:
            return rng.choice(written_outs)
        roll = rng.random()
        if roll < 0.20:
            shape: Shape = _SCALAR
        elif roll < 0.45:
            shape = (self.pick_dim(), "1")
        elif roll < 0.80:
            dim = self.pick_dim()
            shape = (dim, dim)
        else:
            shape = (self.pick_dim(), self.pick_dim())
        io = "InOut" if rng.random() < 0.18 else "Out"
        annotations: List[str] = []
        if (self._kind_for(shape) == "Mat" and shape[0] == shape[1]
                and io == "Out" and rng.random() < 0.08):
            annotations = ["UpSym"]
        overwrites = None
        if io == "Out":
            overwrites = self._maybe_overwrite_target(shape)
        return self.declare(self._kind_for(shape), shape, io, annotations,
                            overwrites)

    def add_sblac(self) -> None:
        dest = self._pick_dest()
        text = f"{dest.name} = {self.expr(self.shape_of(dest))};"
        self.program.statements.append(text)
        self.written.add(dest.name)

    def _tri_coefficient(self, dim: str, lower: bool) -> FuzzDecl:
        """A readable, non-singular triangular coefficient operand."""
        want = "LoTri" if lower else "UpTri"
        pool = [d for d in self.program.decls
                if self.readable(d) and d.is_square and d.rows == dim
                and want in d.annotations and "NS" in d.annotations]
        if pool and self.rng.random() < 0.4:
            return self.rng.choice(pool)
        annotations = [want, "NS"]
        if self.rng.random() < 0.12:
            annotations.append("UnitDiag")
        return self.declare("Mat", (dim, dim), "In", annotations)

    def _spd_operand(self, dim: str) -> FuzzDecl:
        pool = [d for d in self.program.decls
                if d.io in ("In", "InOut") and d.is_square and d.rows == dim
                and "PD" in d.annotations]
        if pool and self.rng.random() < 0.4:
            return self.rng.choice(pool)
        return self.declare("Mat", (dim, dim), "In", ["UpSym", "PD"])

    def add_hlac(self) -> None:
        rng = self.rng
        dim = self.pick_dim()
        kind = rng.choice(["cholesky_upper", "cholesky_lower", "trsm",
                           "trsm", "trtri", "trsyl", "trlya"])
        if kind in ("cholesky_upper", "cholesky_lower"):
            rhs = self._spd_operand(dim)
            upper = kind == "cholesky_upper"
            annotations = ["UpTri" if upper else "LoTri", "NS"]
            overwrites = rhs.name if (rhs.io == "In"
                                      and rng.random() < 0.2) else None
            factor = self.declare("Mat", (dim, dim), "Out", annotations,
                                  overwrites)
            if upper:
                text = f"{factor.name}' * {factor.name} = {rhs.name};"
            else:
                text = f"{factor.name} * {factor.name}' = {rhs.name};"
            self.written.add(factor.name)
        elif kind == "trsm":
            lower = rng.random() < 0.5
            transposed = rng.random() < 0.3
            coeff = self._tri_coefficient(dim, lower)
            if rng.random() < 0.4:
                x_shape: Shape = (dim, "1")
            elif rng.random() < 0.6:
                x_shape = (dim, dim)
            else:
                x_shape = (dim, self.pick_dim())
            rhs = self.operand(x_shape)
            unknown = self.declare(self._kind_for(x_shape), x_shape, "Out")
            op = f"{coeff.name}'" if transposed else coeff.name
            text = f"{op} * {unknown.name} = {rhs.name};"
            self.written.add(unknown.name)
        elif kind == "trtri":
            lower = rng.random() < 0.5
            transposed = rng.random() < 0.25
            coeff = self._tri_coefficient(dim, lower)
            result_lower = lower != transposed
            unknown = self.declare(
                "Mat", (dim, dim), "Out",
                ["LoTri" if result_lower else "UpTri", "NS"])
            op = f"{coeff.name}'" if transposed else coeff.name
            text = f"{unknown.name} = inv({op});"
            self.written.add(unknown.name)
        elif kind == "trsyl":
            left = self._tri_coefficient(dim, lower=True)
            right = self._tri_coefficient(dim, lower=False)
            rhs = self.operand((dim, dim))
            unknown = self.declare("Mat", (dim, dim), "Out")
            text = (f"{left.name} * {unknown.name} + {unknown.name} * "
                    f"{right.name} = {rhs.name};")
            self.written.add(unknown.name)
        else:                                    # trlya
            coeff = self._tri_coefficient(dim, lower=True)
            # the synthesized algorithm may exploit the declared symmetry
            # of the right-hand side, so its *values* must be symmetric:
            # always a fresh (or reused) symmetric input
            pool = [d for d in self.program.decls
                    if d.io == "In" and d.is_square and d.rows == dim
                    and d.annotations[:1] == ["UpSym"]]
            rhs = (self.rng.choice(pool)
                   if pool and rng.random() < 0.4
                   else self.declare("Mat", (dim, dim), "In", ["UpSym"]))
            unknown = self.declare("Mat", (dim, dim), "Out", ["UpSym"])
            text = (f"{coeff.name} * {unknown.name} + {unknown.name} * "
                    f"{coeff.name}' = {rhs.name};")
            self.written.add(unknown.name)
        self.program.statements.append(text)

    def add_forloop(self) -> None:
        rng = self.rng
        inouts = [d for d in self.program.decls if d.io == "InOut"]
        if inouts and rng.random() < 0.5:
            dest = rng.choice(inouts)
        else:
            dim = self.pick_dim()
            shape: Shape = (dim, dim) if rng.random() < 0.5 else (dim, "1")
            dest = self.declare(self._kind_for(shape), shape, "InOut")
        trip = rng.randint(2, 3)
        body = f"{dest.name} = {self.expr(self.shape_of(dest), depth=1)};"
        if rng.random() < 0.2:
            header = f"for (i = 0:{trip}:{2 * trip})"
        else:
            header = f"for (i = 0:{trip})"
        self.program.statements.append(f"{header} {{ {body} }}")
        self.written.add(dest.name)


def sample_program(rng: random.Random, name: str = "fuzz",
                   max_statements: int = 5, max_size: int = 8
                   ) -> FuzzProgram:
    """Sample one random LA program (pure function of the rng state)."""
    builder = _ProgramBuilder(rng, name, max_size)
    for _ in range(rng.randint(1, max_statements)):
        roll = rng.random()
        if roll < 0.60:
            builder.add_sblac()
        elif roll < 0.88:
            builder.add_hlac()
        else:
            builder.add_forloop()
    return builder.program


def sample_options(rng: random.Random,
                   program: Optional[FuzzProgram] = None) -> Options:
    """Sample one point of the joint Stage-1 x codegen option space."""
    autotune = rng.random() < 0.35
    options = Options(
        vectorize=rng.random() < 0.75,
        # width 3 is invalid on purpose (rarely): the pipeline must
        # refuse it cleanly, and the oracle classifies that as a reject
        vector_width=rng.choice([2, 2, 4, 4, 4, 4, 4, 3]),
        block_size=(None if rng.random() < 0.5
                    else rng.randint(1, 8)),
        autotune=autotune,
        max_variants=rng.randint(1, 8) if autotune else 12,
        unroll=rng.random() < 0.85,
        unroll_trip_count=rng.choice([1, 2, 4, 8, 16]),
        unroll_body_limit=rng.choice([4, 16, 64, 128]),
        load_store_analysis=rng.random() < 0.8,
        scalar_replacement=rng.random() < 0.8,
        rewrite_rules=rng.random() < 0.8,
        use_shuffle_transpose=rng.random() < 0.8,
        annotate_code=rng.random() < 0.1,
    )
    if program is not None and rng.random() < 0.3:
        variants = _sample_stage1_variants(rng, program, options)
        if variants:
            options.stage1_variants = variants
    return options


def _sample_stage1_variants(rng: random.Random, program: FuzzProgram,
                            options: Options) -> Optional[Dict[int, str]]:
    """Pin random Cl1ck variants for the program's HLAC sites (when the
    program has any and Stage-1 site discovery succeeds -- a failure here
    will resurface in the oracle's generate step, correctly classified)."""
    from ..slingen.stage1 import find_hlac_sites
    try:
        sites = find_hlac_sites(program.parse(),
                                options.effective_block_size)
    except ReproError:
        return None
    chosen: Dict[int, str] = {}
    for site in sites:
        if len(site.variants) > 1 and rng.random() < 0.7:
            chosen[site.index] = rng.choice(site.variants)
    return chosen or None


def sample_case(seed: int, max_statements: int = 5, max_size: int = 8
                ) -> FuzzCase:
    """The fuzz case for one seed (deterministic)."""
    rng = random.Random(seed)
    program = sample_program(rng, name=f"fuzz_{seed}",
                             max_statements=max_statements,
                             max_size=max_size)
    options = sample_options(rng, program)
    input_seed = rng.randrange(2 ** 31)
    return FuzzCase(program=program, options=options,
                    input_seed=input_seed, seed=seed)
