"""Models of the paper's competitor implementations (MKL, Eigen, icc, ...)."""

from .models import (BaselineResult, KernelModel, baseline_names, cl1ck_mkl,
                     clang_polly, eigen, evaluate_baseline, icc, mkl, recsy,
                     relapack)

__all__ = [
    "BaselineResult", "KernelModel", "baseline_names", "cl1ck_mkl",
    "clang_polly", "eigen", "evaluate_baseline", "icc", "mkl", "recsy",
    "relapack",
]
