"""Performance models of the paper's competitors (Sec. 4 baselines).

The paper compares SLinGen-generated code against Intel MKL, ReLAPACK,
RECSY, Eigen, straightforward C compiled with icc, clang+Polly, and Cl1ck
algorithms implemented on top of MKL.  Those binaries are not available
here (and would not be meaningful inside an analytic machine model), so each
baseline is represented by a *performance model* of its implementation
strategy, evaluated on the same machine description as the generated code:

* **library-call baselines** (MKL, ReLAPACK, RECSY, Cl1ck+MKL): the
  computation is a sequence of BLAS/LAPACK calls.  Each call pays a fixed
  overhead (argument checking, dispatch); each kernel sustains a fraction of
  peak that grows with the operand size (the classic ``eff(n) = peak * n /
  (n + n_half)`` saturation curve of library kernels on small operands).
  Blocked/recursive strategies differ in the number of calls they make.
* **Eigen**: expression templates fuse element-wise statements and vectorize,
  but factorizations/solvers are only lightly optimized and there is no
  cross-statement optimization.
* **icc / clang+Polly**: straightforward scalar loop nests; Polly recovers a
  little vectorization.  Both are additionally throttled at small sizes by
  the division/square-root latency, like all other implementations.

The `peak`/`n_half` parameters below are calibrated so the absolute f/c
levels are in the range the paper reports on Sandy Bridge; the *shape* of
every curve (who wins, how gaps evolve with n) is produced by the model
structure, not hand-drawn.  See DESIGN.md ("Substitutions").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..applications.cases import BenchmarkCase
from ..machine.microarch import MicroArchitecture, default_machine


@dataclass
class BaselineResult:
    """Modeled performance of one baseline on one benchmark case."""

    name: str
    cycles: float
    flops: float
    calls: int = 0

    @property
    def flops_per_cycle(self) -> float:
        return self.flops / self.cycles if self.cycles > 0 else 0.0


@dataclass(frozen=True)
class KernelModel:
    """Saturating efficiency curve of a library kernel family."""

    peak: float        # asymptotic flops/cycle
    n_half: float      # size at which half the peak is reached

    def flops_per_cycle(self, n: int) -> float:
        return self.peak * n / (n + self.n_half)

    def cycles(self, flops: float, n: int) -> float:
        return flops / max(self.flops_per_cycle(n), 1e-9)


# Calibrated kernel families (double precision, Sandy Bridge-class core).
_MKL_BLAS3 = KernelModel(peak=6.0, n_half=110.0)       # dgemm-like
_MKL_LAPACK = KernelModel(peak=4.0, n_half=230.0)      # dpotrf/dtrtri/dtrsm
_MKL_SYLVESTER = KernelModel(peak=1.4, n_half=110.0)   # dtrsyl (scalar-ish)
_RELAPACK = KernelModel(peak=3.8, n_half=280.0)
_RECSY = KernelModel(peak=0.30, n_half=30.0)
_EIGEN_BLAS3 = KernelModel(peak=3.0, n_half=140.0)
_EIGEN_SOLVER = KernelModel(peak=1.1, n_half=70.0)
_SCALAR_C = KernelModel(peak=0.85, n_half=28.0)         # icc -O3, no SIMD
_POLLY = KernelModel(peak=1.0, n_half=60.0)             # clang + Polly


def _div_sqrt_count(case: BenchmarkCase) -> float:
    """Approximate number of (sequential) divisions/square roots."""
    n = case.size
    per_kind = {
        "potrf": 2.0 * n,
        "trtri": 2.0 * n,
        "trsyl": float(n * n),
        "trlya": float(n * (n + 1) / 2),
        "kf": 4.0 * n,
        "kf-28": 4.0 * n,
        "gpr": 4.0 * n,
        "l1a": 0.0,
    }
    return per_kind.get(case.name, float(n))


def _latency_floor(case: BenchmarkCase,
                   machine: MicroArchitecture) -> float:
    """Cycles spent in the dependent division/sqrt chain (affects everyone)."""
    return _div_sqrt_count(case) * machine.div_issue_cycles


def _library_result(name: str, case: BenchmarkCase, kernel: KernelModel,
                    calls: int, machine: MicroArchitecture) -> BaselineResult:
    compute = kernel.cycles(case.nominal_flops, max(case.size, 1))
    cycles = max(compute, _latency_floor(case, machine)) \
        + calls * machine.call_overhead_cycles
    return BaselineResult(name=name, cycles=cycles,
                          flops=case.nominal_flops, calls=calls)


def _statement_count(case: BenchmarkCase) -> int:
    return max(1, len(case.program.statements))


# ---------------------------------------------------------------------------
# Individual baselines
# ---------------------------------------------------------------------------


def mkl(case: BenchmarkCase,
        machine: Optional[MicroArchitecture] = None) -> BaselineResult:
    """Intel-MKL-style implementation: one BLAS/LAPACK call per statement."""
    machine = machine or default_machine()
    kernel = {
        "potrf": _MKL_LAPACK, "trtri": _MKL_LAPACK, "trsyl": _MKL_SYLVESTER,
        "trlya": _MKL_SYLVESTER,
    }.get(case.name, _MKL_BLAS3)
    calls = _statement_count(case) if case.kind == "application" else 1
    return _library_result("mkl", case, kernel, calls, machine)


def relapack(case: BenchmarkCase,
             machine: Optional[MicroArchitecture] = None) -> BaselineResult:
    """ReLAPACK: recursive LAPACK-level algorithms on top of BLAS."""
    machine = machine or default_machine()
    # Recursive splitting down to a base case of 24 produces ~2 * n/24 calls.
    calls = max(1, 2 * case.size // 24)
    return _library_result("relapack", case, _RELAPACK, calls, machine)


def recsy(case: BenchmarkCase,
          machine: Optional[MicroArchitecture] = None) -> BaselineResult:
    """RECSY recursive Sylvester solvers (paper compares it on trsyl only)."""
    machine = machine or default_machine()
    calls = max(1, 2 * case.size // 16)
    return _library_result("recsy", case, _RECSY, calls, machine)


def eigen(case: BenchmarkCase,
          machine: Optional[MicroArchitecture] = None) -> BaselineResult:
    """Eigen expression templates: vectorized, fused, no call overhead."""
    machine = machine or default_machine()
    kernel = _EIGEN_SOLVER if case.name in ("potrf", "trtri", "trsyl",
                                            "trlya", "gpr") else _EIGEN_BLAS3
    compute = kernel.cycles(case.nominal_flops, max(case.size, 1))
    cycles = max(compute, _latency_floor(case, machine))
    return BaselineResult("eigen", cycles, case.nominal_flops, calls=0)


def icc(case: BenchmarkCase,
        machine: Optional[MicroArchitecture] = None) -> BaselineResult:
    """Straightforward handwritten C with hardcoded sizes, icc -O3."""
    machine = machine or default_machine()
    compute = _SCALAR_C.cycles(case.nominal_flops, max(case.size, 1))
    cycles = max(compute, _latency_floor(case, machine))
    return BaselineResult("icc", cycles, case.nominal_flops, calls=0)


def clang_polly(case: BenchmarkCase,
                machine: Optional[MicroArchitecture] = None) -> BaselineResult:
    """The same straightforward C through clang with the Polly optimizer."""
    machine = machine or default_machine()
    compute = _POLLY.cycles(case.nominal_flops, max(case.size, 1))
    cycles = max(compute, _latency_floor(case, machine))
    return BaselineResult("clang-polly", cycles, case.nominal_flops, calls=0)


def cl1ck_mkl(case: BenchmarkCase, block_size: Optional[int] = None,
              machine: Optional[MicroArchitecture] = None) -> BaselineResult:
    """Cl1ck-generated blocked algorithms implemented with MKL calls.

    ``block_size`` of None means nb = n (one unblocked call); the paper
    evaluates nb in {4, n/2, n}.
    """
    machine = machine or default_machine()
    n = max(case.size, 1)
    nb = n if block_size is None else max(1, min(block_size, n))
    iterations = max(1, (n + nb - 1) // nb)
    # Each blocked iteration issues roughly three BLAS/LAPACK calls
    # (factor/solve the diagonal block, panel solve, trailing update).
    calls = 3 * iterations
    kernel = _MKL_LAPACK if nb >= max(8, n // 2) else \
        KernelModel(peak=_MKL_BLAS3.peak, n_half=_MKL_BLAS3.n_half + 4 * nb)
    name = f"cl1ck-mkl-nb{'n' if block_size is None else block_size}"
    compute = kernel.cycles(case.nominal_flops, n)
    cycles = max(compute, _latency_floor(case, machine)) \
        + calls * machine.call_overhead_cycles
    return BaselineResult(name, cycles, case.nominal_flops, calls=calls)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


def baseline_names(case_name: str) -> List[str]:
    """Baselines the paper plots for a given benchmark."""
    if case_name in ("potrf", "trtri", "trlya"):
        return ["mkl", "relapack", "eigen", "icc", "clang-polly",
                "cl1ck-mkl-nb4", "cl1ck-mkl-nbhalf", "cl1ck-mkl-nbn"]
    if case_name == "trsyl":
        return ["mkl", "relapack", "recsy", "eigen", "icc", "clang-polly",
                "cl1ck-mkl-nb4", "cl1ck-mkl-nbhalf", "cl1ck-mkl-nbn"]
    if case_name == "gpr":
        return ["mkl", "icc", "eigen"]
    return ["mkl", "eigen", "icc"]


def evaluate_baseline(name: str, case: BenchmarkCase,
                      machine: Optional[MicroArchitecture] = None
                      ) -> BaselineResult:
    """Evaluate one baseline by name on a benchmark case."""
    machine = machine or default_machine()
    if name == "mkl":
        return mkl(case, machine)
    if name == "relapack":
        return relapack(case, machine)
    if name == "recsy":
        return recsy(case, machine)
    if name == "eigen":
        return eigen(case, machine)
    if name == "icc":
        return icc(case, machine)
    if name == "clang-polly":
        return clang_polly(case, machine)
    if name == "cl1ck-mkl-nb4":
        return cl1ck_mkl(case, 4, machine)
    if name == "cl1ck-mkl-nbhalf":
        return cl1ck_mkl(case, max(case.size // 2, 1), machine)
    if name == "cl1ck-mkl-nbn":
        return cl1ck_mkl(case, None, machine)
    raise KeyError(f"unknown baseline {name!r}")
