"""The one batched-timing protocol shared by every execution backend.

:class:`~repro.backend.compile.CompiledKernel`,
:class:`~repro.backend.numpy_backend.NumPyKernel`, and
:class:`~repro.cir.interpreter.InterpreterKernel` all expose
``time(inputs, repeats, warmup, inner)``; keeping the measurement loop in
one place guarantees their samples stay comparable -- the autotuner's
measurement backends and the bench harness rank kernels across backends,
so a protocol change (warmup handling, where the restore sits relative to
the timer) must apply to all of them at once.

Kept in a leaf module (like :mod:`repro.ioutil`) so both :mod:`repro.cir`
and :mod:`repro.backend` can share it without layering inversions.
"""

from __future__ import annotations

import statistics
import time
from typing import Callable, List, Tuple


def median_and_mad(samples: List[float]) -> Tuple[float, float]:
    """Median and median-absolute-deviation of timing samples.

    The summary every consumer of :func:`batched_time` reports (the
    bench harness, the perf runner's trajectory records): the median is
    robust to scheduler noise and the MAD is the matching robust spread
    -- the regression gate widens its threshold by it, so a noisy entry
    needs a proportionally larger slowdown to trip."""
    if not samples:
        raise ValueError("no timing samples")
    center = statistics.median(samples)
    spread = statistics.median(abs(s - center) for s in samples)
    return center, spread


def batched_time(invoke: Callable[[], None], restore: Callable[[], None],
                 repeats: int, warmup: int, inner: int) -> List[float]:
    """Time ``invoke``: ``repeats`` samples of seconds-per-call.

    Each sample times a batch of ``inner`` calls (tiny kernels finish well
    below the timer resolution) and reports the mean call time.
    ``restore`` runs before every call -- *inside* the timed region, so
    its (constant) cost is identical across candidate kernels and cancels
    in comparisons -- returning writable buffers to their pristine values,
    which keeps iterative kernels like factorizations numerically sane
    across calls.  The first ``warmup`` batches run untimed (icache,
    branch predictors, frequency ramp-up).
    """
    def run_batch() -> float:
        started = time.perf_counter()
        for _ in range(inner):
            restore()
            invoke()
        return (time.perf_counter() - started) / inner

    for _ in range(warmup):
        run_batch()
    return [run_batch() for _ in range(repeats)]
