"""The phase cache: in-process artifact memo + optional persistent layer.

:class:`PhaseCache` maps ``(phase, key)`` to a pipeline artifact.  The
hot layer is a per-phase LRU of canonical objects handed out *without
copying* -- copying a large unrolled C-IR function costs more than the
lowering it saves.  That makes immutability a hard contract: artifacts
(and the functions/programs inside results derived from them) are
read-only everywhere downstream, exactly like results shared out of the
``MemoryKernelStore``; the only two mutating stages in the pipeline
(``apply_rewrite_rules``, ``run_pipeline``) run inside phase drivers
that deep-copy their input first.  All map access is serialized by one
lock -- the cache is shared across the threaded service's
coalesced-miss path, the tuner, the fuzz oracle, and the CEGIS verifier.

The persistent layer (:class:`PersistentPhaseStore`) follows the
TuningDB idiom: one pickle per artifact under
``<root>/<phase>/<key[:2]>/<key>.pkl``, atomic writes, and corruption
tolerance (an unreadable entry is quarantined -- unlinked and counted --
and treated as a miss, never raised through).  It is opt-in: the shared
process-wide cache only persists when ``$REPRO_PHASE_CACHE`` names a
directory.  The layer is size-bounded: when the tree exceeds
``max_bytes`` (default :data:`DEFAULT_MAX_BYTES`;
``$REPRO_PHASE_CACHE_LIMIT`` overrides for the shared cache, ``0`` =
unbounded) a put triggers :meth:`~PersistentPhaseStore.gc`, evicting
oldest-modified entries first; :meth:`~PersistentPhaseStore.purge`
(also ``python -m repro.pipeline purge``) empties it outright.

Per-phase wall-clock accounting lives in :class:`PhaseTimings`; one
instance accumulates over a generation run and surfaces through
``GenerationResult.summary()`` and ``python -m repro.pipeline profile``.
"""

from __future__ import annotations

import os
import pickle
import threading
from typing import Dict, Optional

from ..ioutil import LruMap, atomic_write_bytes
from .keys import PHASES

#: Hot-layer capacity per phase (artifacts, not bytes).  Generous enough
#: for a full tuning sweep over every registry workload; bounded so a
#: long-lived service process cannot grow without limit.
DEFAULT_HOT_CAPACITY = 256

#: Environment variable enabling the persistent layer of the shared cache.
ENV_PHASE_CACHE = "REPRO_PHASE_CACHE"

#: Environment variable bounding the persistent layer's on-disk size for
#: the shared cache (bytes; ``K``/``M``/``G`` suffixes; ``0`` = unbounded).
ENV_PHASE_CACHE_LIMIT = "REPRO_PHASE_CACHE_LIMIT"

#: Default on-disk bound of the persistent layer (1 GiB -- two orders of
#: magnitude above a full registry sweep, small enough never to fill a
#: developer disk).
DEFAULT_MAX_BYTES = 1 << 30

#: GC evicts below this fraction of the bound so back-to-back puts near
#: the limit do not each pay a collection.
GC_LOW_WATER = 0.9


def parse_size(text: str) -> Optional[int]:
    """``"512M"`` -> bytes; ``"0"``/empty -> ``None`` (unbounded)."""
    text = text.strip()
    if not text:
        return None
    scale = 1
    suffixes = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30}
    if text[-1].upper() in suffixes:
        scale = suffixes[text[-1].upper()]
        text = text[:-1]
    try:
        value = int(text) * scale
    except ValueError:
        from ..errors import ConfigurationError
        raise ConfigurationError(f"invalid size {text!r} (use e.g. 512M)")
    return value if value > 0 else None


class PhaseTimings:
    """Per-phase call counts, cache hits, and wall-clock seconds."""

    def __init__(self) -> None:
        self.phases: Dict[str, Dict[str, float]] = {
            phase: {"calls": 0, "hits": 0, "seconds": 0.0}
            for phase in PHASES}

    def record(self, phase: str, seconds: float, hit: bool) -> None:
        entry = self.phases[phase]
        entry["calls"] += 1
        entry["hits"] += 1 if hit else 0
        entry["seconds"] += seconds

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """A plain JSON-able copy (what ``GenerationResult`` carries)."""
        return {phase: dict(entry) for phase, entry in self.phases.items()}

    @property
    def total_seconds(self) -> float:
        return sum(entry["seconds"] for entry in self.phases.values())


class PersistentPhaseStore:
    """Pickled artifacts on disk, sharded TuningDB-style, size-bounded.

    Thread-safe: one internal lock guards the counters and the size
    accounting (``PhaseCache.put`` deliberately calls :meth:`put`
    outside its own lock so disk writes do not serialize the hot layer).
    """

    def __init__(self, root: str, max_bytes: Optional[int] = DEFAULT_MAX_BYTES):
        self.root = os.path.expanduser(root)
        self.max_bytes = max_bytes
        self.reads = 0
        self.writes = 0
        self.disk_hits = 0
        self.corrupt_dropped = 0
        self.evictions = 0
        self._lock = threading.Lock()
        self._total_bytes: Optional[int] = None  # scanned lazily

    def _path(self, phase: str, key: str) -> str:
        return os.path.join(self.root, phase, key[:2], f"{key}.pkl")

    def _entries(self) -> "list[tuple[float, int, str]]":
        """Every entry as ``(mtime, size, path)`` (unsorted)."""
        found = []
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if not name.endswith(".pkl"):
                    continue
                path = os.path.join(dirpath, name)
                try:
                    info = os.stat(path)
                except OSError:
                    continue
                found.append((info.st_mtime, info.st_size, path))
        return found

    def _scan_locked(self) -> int:
        if self._total_bytes is None:
            self._total_bytes = sum(size for _, size, _ in self._entries())
        return self._total_bytes

    def get(self, phase: str, key: str) -> Optional[object]:
        path = self._path(phase, key)
        with self._lock:
            self.reads += 1
        try:
            with open(path, "rb") as handle:
                artifact = pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            # Torn write, foreign pickle, schema drift: quarantine the
            # entry and miss -- the cache must never take generation down.
            try:
                size = os.path.getsize(path)
                os.unlink(path)
            except OSError:
                size = 0
            with self._lock:
                self.corrupt_dropped += 1
                if self._total_bytes is not None:
                    self._total_bytes = max(0, self._total_bytes - size)
            return None
        with self._lock:
            self.disk_hits += 1
        return artifact

    def put(self, phase: str, key: str, artifact: object) -> None:
        path = self._path(phase, key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        blob = pickle.dumps(artifact)
        try:
            replaced = os.path.getsize(path)
        except OSError:
            replaced = 0
        atomic_write_bytes(path, blob)
        with self._lock:
            self.writes += 1
            total = self._scan_locked() + len(blob) - replaced
            self._total_bytes = max(0, total)
            over = (self.max_bytes is not None
                    and self._total_bytes > self.max_bytes)
        if over:
            self.gc()

    def gc(self, target_bytes: Optional[int] = None) -> int:
        """Evict oldest-modified entries until the tree fits.

        ``target_bytes`` defaults to :data:`GC_LOW_WATER` of
        ``max_bytes`` (or no-op when unbounded).  Returns the number of
        entries removed.  Safe against concurrent writers: a file that
        disappears mid-collection is simply skipped.
        """
        if target_bytes is None:
            if self.max_bytes is None:
                return 0
            target_bytes = int(self.max_bytes * GC_LOW_WATER)
        with self._lock:
            entries = sorted(self._entries())
            total = sum(size for _, size, _ in entries)
            removed = 0
            while entries and total > target_bytes:
                _mtime, size, path = entries.pop(0)
                try:
                    os.unlink(path)
                except OSError:
                    continue
                total -= size
                removed += 1
            self._total_bytes = total
            self.evictions += removed
        return removed

    def purge(self) -> int:
        """Remove every entry; returns how many were removed."""
        with self._lock:
            removed = 0
            for _mtime, _size, path in self._entries():
                try:
                    os.unlink(path)
                    removed += 1
                except OSError:
                    pass
            self._total_bytes = 0
            self.evictions += removed
        return removed

    def total_bytes(self) -> int:
        """Current on-disk size of the layer (scans once, then tracks)."""
        with self._lock:
            return self._scan_locked()

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {"root": self.root, "reads": self.reads,
                    "writes": self.writes, "disk_hits": self.disk_hits,
                    "corrupt_dropped": self.corrupt_dropped,
                    "evictions": self.evictions,
                    "max_bytes": self.max_bytes,
                    "total_bytes": self._scan_locked()}


class PhaseCache:
    """Thread-safe content-addressed store of pipeline artifacts."""

    def __init__(self, persistent: Optional[PersistentPhaseStore] = None,
                 hot_capacity: int = DEFAULT_HOT_CAPACITY):
        self.persistent = persistent
        self._lock = threading.Lock()
        self._maps: Dict[str, LruMap] = {
            phase: LruMap(hot_capacity) for phase in PHASES}
        self._counters: Dict[str, Dict[str, int]] = {}
        self.reset_stats()

    # -- access --------------------------------------------------------------

    def get(self, phase: str, key: str) -> Optional[object]:
        """The canonical artifact at ``(phase, key)``, or ``None``.

        The returned object is shared: treat it (and everything
        reachable from it) as immutable.  Phase drivers copy before
        running any mutating stage.
        """
        with self._lock:
            artifact = self._maps[phase].get(key)
            if artifact is None and self.persistent is not None:
                artifact = self.persistent.get(phase, key)
                if artifact is not None:
                    self._maps[phase].insert(key, artifact)
            counter = self._counters[phase]
            counter["hits" if artifact is not None else "misses"] += 1
        return artifact

    def put(self, phase: str, key: str, artifact: object) -> None:
        """Adopt ``artifact`` as the canonical entry for ``(phase, key)``.

        The cache takes shared ownership: the caller may keep using the
        object but must never mutate it afterwards.
        """
        with self._lock:
            self._maps[phase].insert(key, artifact)
            self._counters[phase]["puts"] += 1
        if self.persistent is not None:
            self.persistent.put(phase, key, artifact)

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        with self._lock:
            phases = {phase: dict(counter)
                      for phase, counter in self._counters.items()}
            sizes = {phase: len(self._maps[phase]) for phase in PHASES}
        doc: Dict[str, object] = {
            "phases": phases,
            "entries": sizes,
            "hits": sum(c["hits"] for c in phases.values()),
            "misses": sum(c["misses"] for c in phases.values()),
            "persistent": (self.persistent.stats()
                           if self.persistent is not None else None),
        }
        return doc

    def reset_stats(self) -> None:
        with self._lock:
            self._counters = {
                phase: {"hits": 0, "misses": 0, "puts": 0}
                for phase in PHASES}

    def clear(self) -> None:
        """Drop every hot entry (the persistent layer is untouched)."""
        with self._lock:
            for lru in self._maps.values():
                lru.clear()


# ---------------------------------------------------------------------------
# The shared process-wide cache
# ---------------------------------------------------------------------------

_shared_lock = threading.Lock()
_shared: Optional[PhaseCache] = None


def shared_phase_cache() -> PhaseCache:
    """The process-wide cache every generator uses by default.

    Sharing one cache is what makes repeated fuzz/CEGIS verifications of
    the same program reuse lowering, and the tuner's codegen sweeps hit
    the Stage-1 memo, with no plumbing at the call sites.  Artifacts are
    pure functions of their keys, so sharing cannot change any result --
    only how fast it is produced.  Persistence is enabled exactly when
    ``$REPRO_PHASE_CACHE`` names a directory.
    """
    global _shared
    with _shared_lock:
        if _shared is None:
            root = os.environ.get(ENV_PHASE_CACHE, "").strip()
            persistent = None
            if root:
                limit = os.environ.get(ENV_PHASE_CACHE_LIMIT)
                max_bytes = (parse_size(limit) if limit is not None
                             else DEFAULT_MAX_BYTES)
                persistent = PersistentPhaseStore(root, max_bytes=max_bytes)
            _shared = PhaseCache(persistent=persistent)
        return _shared


def reset_shared_phase_cache() -> None:
    """Drop the shared cache (tests; also re-reads the environment)."""
    global _shared
    with _shared_lock:
        _shared = None
