"""The phase cache: in-process artifact memo + optional persistent layer.

:class:`PhaseCache` maps ``(phase, key)`` to a pipeline artifact.  The
hot layer is a per-phase LRU of canonical objects handed out *without
copying* -- copying a large unrolled C-IR function costs more than the
lowering it saves.  That makes immutability a hard contract: artifacts
(and the functions/programs inside results derived from them) are
read-only everywhere downstream, exactly like results shared out of the
``MemoryKernelStore``; the only two mutating stages in the pipeline
(``apply_rewrite_rules``, ``run_pipeline``) run inside phase drivers
that deep-copy their input first.  All map access is serialized by one
lock -- the cache is shared across the threaded service's
coalesced-miss path, the tuner, the fuzz oracle, and the CEGIS verifier.

The persistent layer (:class:`PersistentPhaseStore`) follows the
TuningDB idiom: one pickle per artifact under
``<root>/<phase>/<key[:2]>/<key>.pkl``, atomic writes, and corruption
tolerance (an unreadable entry is quarantined -- unlinked and counted --
and treated as a miss, never raised through).  It is opt-in: the shared
process-wide cache only persists when ``$REPRO_PHASE_CACHE`` names a
directory.

Per-phase wall-clock accounting lives in :class:`PhaseTimings`; one
instance accumulates over a generation run and surfaces through
``GenerationResult.summary()`` and ``python -m repro.pipeline profile``.
"""

from __future__ import annotations

import os
import pickle
import threading
from typing import Dict, Optional

from ..ioutil import LruMap, atomic_write_bytes
from .keys import PHASES

#: Hot-layer capacity per phase (artifacts, not bytes).  Generous enough
#: for a full tuning sweep over every registry workload; bounded so a
#: long-lived service process cannot grow without limit.
DEFAULT_HOT_CAPACITY = 256

#: Environment variable enabling the persistent layer of the shared cache.
ENV_PHASE_CACHE = "REPRO_PHASE_CACHE"


class PhaseTimings:
    """Per-phase call counts, cache hits, and wall-clock seconds."""

    def __init__(self) -> None:
        self.phases: Dict[str, Dict[str, float]] = {
            phase: {"calls": 0, "hits": 0, "seconds": 0.0}
            for phase in PHASES}

    def record(self, phase: str, seconds: float, hit: bool) -> None:
        entry = self.phases[phase]
        entry["calls"] += 1
        entry["hits"] += 1 if hit else 0
        entry["seconds"] += seconds

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """A plain JSON-able copy (what ``GenerationResult`` carries)."""
        return {phase: dict(entry) for phase, entry in self.phases.items()}

    @property
    def total_seconds(self) -> float:
        return sum(entry["seconds"] for entry in self.phases.values())


class PersistentPhaseStore:
    """Pickled artifacts on disk, sharded TuningDB-style."""

    def __init__(self, root: str):
        self.root = os.path.expanduser(root)
        self.reads = 0
        self.writes = 0
        self.disk_hits = 0
        self.corrupt_dropped = 0

    def _path(self, phase: str, key: str) -> str:
        return os.path.join(self.root, phase, key[:2], f"{key}.pkl")

    def get(self, phase: str, key: str) -> Optional[object]:
        path = self._path(phase, key)
        self.reads += 1
        try:
            with open(path, "rb") as handle:
                artifact = pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            # Torn write, foreign pickle, schema drift: quarantine the
            # entry and miss -- the cache must never take generation down.
            try:
                os.unlink(path)
            except OSError:
                pass
            self.corrupt_dropped += 1
            return None
        self.disk_hits += 1
        return artifact

    def put(self, phase: str, key: str, artifact: object) -> None:
        path = self._path(phase, key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        atomic_write_bytes(path, pickle.dumps(artifact))
        self.writes += 1

    def stats(self) -> Dict[str, object]:
        return {"root": self.root, "reads": self.reads,
                "writes": self.writes, "disk_hits": self.disk_hits,
                "corrupt_dropped": self.corrupt_dropped}


class PhaseCache:
    """Thread-safe content-addressed store of pipeline artifacts."""

    def __init__(self, persistent: Optional[PersistentPhaseStore] = None,
                 hot_capacity: int = DEFAULT_HOT_CAPACITY):
        self.persistent = persistent
        self._lock = threading.Lock()
        self._maps: Dict[str, LruMap] = {
            phase: LruMap(hot_capacity) for phase in PHASES}
        self._counters: Dict[str, Dict[str, int]] = {}
        self.reset_stats()

    # -- access --------------------------------------------------------------

    def get(self, phase: str, key: str) -> Optional[object]:
        """The canonical artifact at ``(phase, key)``, or ``None``.

        The returned object is shared: treat it (and everything
        reachable from it) as immutable.  Phase drivers copy before
        running any mutating stage.
        """
        with self._lock:
            artifact = self._maps[phase].get(key)
            if artifact is None and self.persistent is not None:
                artifact = self.persistent.get(phase, key)
                if artifact is not None:
                    self._maps[phase].insert(key, artifact)
            counter = self._counters[phase]
            counter["hits" if artifact is not None else "misses"] += 1
        return artifact

    def put(self, phase: str, key: str, artifact: object) -> None:
        """Adopt ``artifact`` as the canonical entry for ``(phase, key)``.

        The cache takes shared ownership: the caller may keep using the
        object but must never mutate it afterwards.
        """
        with self._lock:
            self._maps[phase].insert(key, artifact)
            self._counters[phase]["puts"] += 1
        if self.persistent is not None:
            self.persistent.put(phase, key, artifact)

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        with self._lock:
            phases = {phase: dict(counter)
                      for phase, counter in self._counters.items()}
            sizes = {phase: len(self._maps[phase]) for phase in PHASES}
        doc: Dict[str, object] = {
            "phases": phases,
            "entries": sizes,
            "hits": sum(c["hits"] for c in phases.values()),
            "misses": sum(c["misses"] for c in phases.values()),
            "persistent": (self.persistent.stats()
                           if self.persistent is not None else None),
        }
        return doc

    def reset_stats(self) -> None:
        with self._lock:
            self._counters = {
                phase: {"hits": 0, "misses": 0, "puts": 0}
                for phase in PHASES}

    def clear(self) -> None:
        """Drop every hot entry (the persistent layer is untouched)."""
        with self._lock:
            for lru in self._maps.values():
                lru.clear()


# ---------------------------------------------------------------------------
# The shared process-wide cache
# ---------------------------------------------------------------------------

_shared_lock = threading.Lock()
_shared: Optional[PhaseCache] = None


def shared_phase_cache() -> PhaseCache:
    """The process-wide cache every generator uses by default.

    Sharing one cache is what makes repeated fuzz/CEGIS verifications of
    the same program reuse lowering, and the tuner's codegen sweeps hit
    the Stage-1 memo, with no plumbing at the call sites.  Artifacts are
    pure functions of their keys, so sharing cannot change any result --
    only how fast it is produced.  Persistence is enabled exactly when
    ``$REPRO_PHASE_CACHE`` names a directory.
    """
    global _shared
    with _shared_lock:
        if _shared is None:
            root = os.environ.get(ENV_PHASE_CACHE, "").strip()
            persistent = PersistentPhaseStore(root) if root else None
            _shared = PhaseCache(persistent=persistent)
        return _shared


def reset_shared_phase_cache() -> None:
    """Drop the shared cache (tests; also re-reads the environment)."""
    global _shared
    with _shared_lock:
        _shared = None
