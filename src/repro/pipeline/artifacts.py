"""Typed artifacts of the staged generation pipeline.

Each artifact is the pure output of one phase, stamped with its own
content key and the key of the artifact it was derived from, so a chain
``Stage1Artifact -> RewrittenProgram -> LoweredFunction ->
OptimizedFunction`` is self-describing and every link can be cached and
reused independently.  The final link, the fully built
:class:`~repro.slingen.generator.Candidate`, stays in the generator: it
binds an optimized function to a machine-model estimate, which is
recomputed per request rather than cached.

Artifacts are plain picklable dataclasses (the persistent
``REPRO_PHASE_CACHE`` layer stores them as pickles).  They are
immutable by contract: the :class:`~repro.pipeline.cache.PhaseCache`
hands out the canonical shared object, and phase drivers deep-copy
before running any mutating stage (`apply_rewrite_rules` and
`run_pipeline` both mutate in place).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..cir.nodes import Function
from ..cir.passes import PassReport
from ..ir.program import Program
from ..lgen.compiler import CompileStats
from ..slingen.rewrite import RewriteReport
from ..slingen.stage1 import Stage1Result


@dataclass
class Stage1Artifact:
    """One Stage-1 synthesis: the basic program plus provenance.

    Built with a *fresh* algorithm database so the artifact (temp names
    included) is a pure function of its key; ``database_stats`` records
    that database's hit/synthesis counts for result metadata.
    """

    key: str
    result: Stage1Result
    database_stats: Dict[str, int] = field(default_factory=dict)


@dataclass
class RewrittenProgram:
    """The basic program after sound R0/R1 and CEGIS-verified rewrites."""

    key: str
    stage1_key: str
    program: Program
    report: RewriteReport = field(default_factory=RewriteReport)


@dataclass
class LoweredFunction:
    """The C-IR function straight out of lowering, before Stage-3 passes."""

    key: str
    rewrite_key: str
    function: Function
    stats: CompileStats = field(default_factory=CompileStats)


@dataclass
class OptimizedFunction:
    """The C-IR function after the Stage-3 pass pipeline."""

    key: str
    lower_key: str
    function: Function
    pass_report: PassReport = field(default_factory=PassReport)
