"""Phase keys: which option axis feeds which generation phase.

The staged pipeline memoizes one artifact per phase -- Stage-1 synthesis,
LA-level rewriting, lowering to C-IR, and the Stage-3 pass pipeline --
each under a content hash of the *resolved inputs that phase actually
consumes*.  The partition below is the correctness contract of the whole
cache: an option axis assigned to a phase participates in that phase's
key (and, through key chaining, in every later phase's key); an axis
leaking *out* of its phase key would let two requests that generate
different code collide on one cached artifact -- a wrong-code bug.
``tests/test_pipeline.py`` asserts the partition covers every
:class:`~repro.slingen.options.Options` field exactly once.

Resolution notes (why the raw field lives where it does):

* ``block_size`` keys Stage 1 as the *resolved* integer
  (``codegen.block_size or options.effective_block_size``), so codegen
  variants that differ only in codegen axes share one Stage-1 build
  while explicit block-size variants correctly rebuild.
* ``vectorize`` / ``vector_width`` are consumed by lowering (as the
  resolved width the codegen variant carries).  They also feed the
  *default* of ``effective_block_size`` -- that influence is captured
  because the Stage-1 key stores the resolved block-size integer, not
  the raw fields.
* ``scalar_replacement`` / ``load_store_analysis`` key the optimize
  phase as the effective conjunction ``options.<axis> and
  codegen.<axis>``, exactly what :class:`~repro.cir.passes.PassOptions`
  receives.
* The search-control axes (``autotune``, ``max_variants``,
  ``stage1_variants``) decide *which* phase calls happen, never what any
  one phase computes: ``stage1_variants`` resolves into the
  ``variant_choices`` dict that already keys Stage 1.

The machine model and ``nominal_flops`` feed only the roofline estimate,
which is recomputed per candidate (it is cheap and not an Options axis).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, Mapping, Sequence, Tuple

from ..errors import ConfigurationError
from ..ir.program import Program
from ..slingen.options import Options

#: Bump whenever a phase's semantics change such that an old artifact is
#: no longer what the phase would compute today (pass pipeline changes,
#: rewrite tiers, canonicalization, artifact shape).
PHASE_SCHEMA_VERSION = 1

#: The phases, in dataflow order.
PHASES: Tuple[str, ...] = ("stage1", "rewrite", "lower", "optimize")

#: Which Options field is consumed by which phase key.  See module docs
#: for how raw fields map to the resolved values the keys actually hash.
PHASE_AXES: Dict[str, Tuple[str, ...]] = {
    "stage1": ("block_size",),
    "rewrite": ("rewrite_rules", "verified_rewrites"),
    "lower": ("vectorize", "vector_width", "use_shuffle_transpose",
              "function_name", "annotate_code"),
    "optimize": ("unroll", "unroll_trip_count", "unroll_body_limit",
                 "scalar_replacement", "load_store_analysis"),
}

#: Options fields that steer the variant *search*, not any single phase.
SEARCH_AXES: Tuple[str, ...] = ("autotune", "max_variants",
                                "stage1_variants")

#: Options fields that gate artifacts without changing them.  The static
#: verifier (:mod:`repro.analysis`) observes each phase's output and
#: either records diagnostics or refuses to cache it -- identical
#: artifacts are produced under every mode, so these axes feed no phase
#: key (and :func:`repro.service.keys.canonical_options` drops them from
#: the kernel-store key for the same reason).
GATE_AXES: Tuple[str, ...] = ("analysis",)


def partition() -> Dict[str, Tuple[str, ...]]:
    """The full axis partition: phases plus the search-control and
    artifact-gate buckets."""
    table = dict(PHASE_AXES)
    table["search"] = SEARCH_AXES
    table["gate"] = GATE_AXES
    return table


def assert_partition_complete() -> None:
    """Verify the partition against the live ``Options`` dataclass.

    Every field must be assigned to exactly one phase (or be
    search-control); raises :class:`ConfigurationError` on any field
    that is missing, duplicated, or unknown.  A new Options axis makes
    this fail until it is deliberately placed -- which is the point.
    """
    declared = [name for axes in partition().values() for name in axes]
    seen: Dict[str, int] = {}
    for name in declared:
        seen[name] = seen.get(name, 0) + 1
    duplicated = sorted(name for name, count in seen.items() if count > 1)
    option_fields = {f.name for f in dataclasses.fields(Options)}
    missing = sorted(option_fields - set(declared))
    unknown = sorted(set(declared) - option_fields)
    problems = []
    if missing:
        problems.append(f"unassigned Options fields: {', '.join(missing)}")
    if duplicated:
        problems.append(f"fields in more than one phase: "
                        f"{', '.join(duplicated)}")
    if unknown:
        problems.append(f"axes naming no Options field: "
                        f"{', '.join(unknown)}")
    if problems:
        raise ConfigurationError(
            "phase-key partition is not an exact partition of Options: "
            + "; ".join(problems))


def _digest(doc: Dict[str, object]) -> str:
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def stage1_key(program: Program, block_size: int,
               variant_choices: Mapping[int, str]) -> str:
    """Key of one Stage-1 synthesis: (program, resolved block size,
    algorithmic variant choices)."""
    from ..service.keys import canonical_program
    return _digest({
        "schema": PHASE_SCHEMA_VERSION,
        "phase": "stage1",
        "program": canonical_program(program),
        "block_size": int(block_size),
        "variant_choices": sorted(
            (int(index), str(variant))
            for index, variant in variant_choices.items()),
    })


def rewrite_key(stage1: str, rewrite_rules: bool,
                verified_rewrites: Sequence[str]) -> str:
    """Key of the LA-level rewrite phase (sound R0/R1 + CEGIS-verified)."""
    return _digest({
        "schema": PHASE_SCHEMA_VERSION,
        "phase": "rewrite",
        "stage1": stage1,
        "rewrite_rules": bool(rewrite_rules),
        "verified_rewrites": [str(r) for r in verified_rewrites],
    })


def lower_key(rewrite: str, vector_width: int, use_shuffle_transpose: bool,
              function_name: str, annotate: bool) -> str:
    """Key of lowering to C-IR (resolved vector width and emission axes)."""
    return _digest({
        "schema": PHASE_SCHEMA_VERSION,
        "phase": "lower",
        "rewrite": rewrite,
        "vector_width": int(vector_width),
        "use_shuffle_transpose": bool(use_shuffle_transpose),
        "function_name": str(function_name),
        "annotate": bool(annotate),
    })


def optimize_key(lower: str, unroll: bool, unroll_trip_count: int,
                 unroll_body_limit: int, scalar_replacement: bool,
                 load_store_analysis: bool) -> str:
    """Key of the Stage-3 pass pipeline (effective pass toggles)."""
    return _digest({
        "schema": PHASE_SCHEMA_VERSION,
        "phase": "optimize",
        "lower": lower,
        "unroll": bool(unroll),
        "unroll_trip_count": int(unroll_trip_count),
        "unroll_body_limit": int(unroll_body_limit),
        "scalar_replacement": bool(scalar_replacement),
        "load_store_analysis": bool(load_store_analysis),
    })
