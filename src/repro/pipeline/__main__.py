"""Command-line front-end of the staged generation pipeline.

Usage (``PYTHONPATH=src python -m repro.pipeline <command>``)::

    profile [SPEC ...] [--scalar] [--no-autotune] [--max-variants N]
            [--phase-cache DIR] [--json]
        Generate each workload twice against one fresh phase cache -- a
        cold pass that builds every artifact and a warm pass that must
        be served entirely from the cache -- and print the per-phase
        call/hit/seconds table for both.  Exits 1 when the warm pass
        misses any phase (the cache keys stopped covering an option
        axis: a bug).  This is the pipeline's self-check; CI runs it
        on potrf:8.

    axes [--json]
        Print the phase -> option-axis partition (which Options fields
        feed which pipeline phase, plus the search-level axes that feed
        none).  The partition is asserted complete against the Options
        dataclass on import, so this listing cannot go stale.

    purge [--phase-cache DIR] [--gc] [--yes] [--json]
        Empty the persistent phase-cache layer (or, with ``--gc``, only
        evict oldest-modified entries until it fits its size bound).
        The target directory comes from ``--phase-cache`` or
        ``$REPRO_PHASE_CACHE``; purging prompts unless ``--yes``.

A SPEC is ``name:size`` (``potrf:8``) or ``name:sizexk`` (``kf:8x4``) --
the same workload addresses the kernel service uses.  ``--phase-cache``
adds a persistent artifact layer under DIR (also: the
``REPRO_PHASE_CACHE`` environment variable); by default the profile runs
against a fresh in-memory cache so the cold pass is honestly cold.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional

from ..cli import EXIT_FAILURE, EXIT_OK, add_json_flag, fail, print_json
from ..errors import ReproError
from ..slingen.options import Options
from .cache import PersistentPhaseStore, PhaseCache
from .keys import GATE_AXES, PHASE_AXES, PHASES, SEARCH_AXES

#: Version of the ``profile --json`` document; bump on any incompatible
#: change.  The document is ``{"schema": N, "workloads": [{"spec",
#: "cold_seconds", "warm_seconds", "speedup", "cold_phases",
#: "warm_phases", "warm_misses"}...], "cache": <PhaseCache.stats()>,
#: "ok": bool}``.
PROFILE_SCHEMA_VERSION = 1


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.pipeline",
        description="Profile the staged generation pipeline and inspect "
                    "its phase/option-axis partition.")
    sub = parser.add_subparsers(dest="command", required=True)

    profile = sub.add_parser(
        "profile", help="generate workloads cold then warm against one "
                        "phase cache; fail on any warm-pass miss")
    profile.add_argument("specs", nargs="*", metavar="SPEC",
                         default=["potrf:8"],
                         help="workloads to profile (default: potrf:8)")
    profile.add_argument("--scalar", action="store_true",
                         help="profile scalar (non-vectorized) generation")
    profile.add_argument("--no-autotune", action="store_true",
                         help="skip the autotuning search")
    profile.add_argument("--max-variants", type=int, default=6)
    profile.add_argument("--phase-cache", default=None, metavar="DIR",
                         help="persistent artifact layer root (default: "
                              "none -- in-memory only; also "
                              "$REPRO_PHASE_CACHE)")
    add_json_flag(profile)

    axes = sub.add_parser(
        "axes", help="print the phase -> option-axis partition")
    add_json_flag(axes)

    purge = sub.add_parser(
        "purge", help="empty (or, with --gc, size-bound) the persistent "
                      "phase-cache layer")
    purge.add_argument("--phase-cache", default=None, metavar="DIR",
                       help="persistent layer root (default: "
                            "$REPRO_PHASE_CACHE)")
    purge.add_argument("--gc", action="store_true", dest="only_gc",
                       help="evict oldest entries down to the size bound "
                            "($REPRO_PHASE_CACHE_LIMIT) instead of "
                            "removing everything")
    purge.add_argument("--yes", action="store_true",
                       help="skip the confirmation prompt")
    add_json_flag(purge)
    return parser


def _phase_line(phase: str, entry: Dict[str, float]) -> str:
    return (f"    {phase:10s} {int(entry['calls']):4d} calls  "
            f"{int(entry['hits']):4d} hits  "
            f"{entry['seconds'] * 1e3:9.2f} ms")


def _profile_one(spec_text: str, options: Options,
                 cache: PhaseCache) -> Dict[str, object]:
    from ..service.registry import build_case, parse_spec
    from ..slingen.generator import SLinGen

    case = build_case(parse_spec(spec_text))
    generator = SLinGen(options, phase_cache=cache)

    started = time.perf_counter()
    cold = generator.generate_result(case.program,
                                     nominal_flops=case.nominal_flops)
    cold_seconds = time.perf_counter() - started

    started = time.perf_counter()
    warm = generator.generate_result(case.program,
                                     nominal_flops=case.nominal_flops)
    warm_seconds = time.perf_counter() - started

    if warm.c_code != cold.c_code:
        raise ReproError(
            f"{spec_text}: warm-cache C differs from cold (the phase "
            f"cache changed generated code -- keys are broken)")
    warm_phases = warm.phase_stats or {}
    warm_misses = {
        phase: int(entry["calls"] - entry["hits"])
        for phase, entry in warm_phases.items()
        if entry["calls"] > entry["hits"]}
    return {
        "spec": spec_text,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": (cold_seconds / warm_seconds
                    if warm_seconds > 0 else float("inf")),
        "cold_phases": cold.phase_stats or {},
        "warm_phases": warm_phases,
        "warm_misses": warm_misses,
    }


def _cmd_profile(args: argparse.Namespace) -> int:
    options = Options(vectorize=not args.scalar,
                      autotune=not args.no_autotune,
                      max_variants=args.max_variants,
                      annotate_code=False)
    persistent = (PersistentPhaseStore(args.phase_cache)
                  if args.phase_cache else None)
    cache = PhaseCache(persistent=persistent)
    workloads = [_profile_one(text, options, cache) for text in args.specs]
    ok = all(not doc["warm_misses"] for doc in workloads)

    if args.as_json:
        print_json({
            "schema": PROFILE_SCHEMA_VERSION,
            "workloads": workloads,
            "cache": cache.stats(),
            "ok": ok,
        })
        return EXIT_OK if ok else EXIT_FAILURE

    for doc in workloads:
        print(f"{doc['spec']}: cold {doc['cold_seconds'] * 1e3:.1f} ms, "
              f"warm {doc['warm_seconds'] * 1e3:.2f} ms "
              f"(x{doc['speedup']:.1f})")
        print("  cold:")
        for phase in PHASES:
            if phase in doc["cold_phases"]:
                print(_phase_line(phase, doc["cold_phases"][phase]))
        print("  warm:")
        for phase in PHASES:
            if phase in doc["warm_phases"]:
                print(_phase_line(phase, doc["warm_phases"][phase]))
        if doc["warm_misses"]:
            print(f"  WARM MISSES: {doc['warm_misses']} -- the phase "
                  f"keys fail to cover some option axis")
    if not ok:
        print("warm pass missed the phase cache", file=sys.stderr)
        return EXIT_FAILURE
    print(f"all {len(workloads)} workload(s) served warm entirely from "
          f"the phase cache")
    return EXIT_OK


def _cmd_axes(args: argparse.Namespace) -> int:
    if args.as_json:
        print_json({
            "phases": {phase: list(PHASE_AXES[phase]) for phase in PHASES},
            "search": list(SEARCH_AXES),
            "gate": list(GATE_AXES),
        })
        return EXIT_OK
    for phase in PHASES:
        print(f"{phase:10s} {', '.join(PHASE_AXES[phase])}")
    print(f"{'(search)':10s} {', '.join(SEARCH_AXES)}")
    print(f"{'(gate)':10s} {', '.join(GATE_AXES)}")
    return EXIT_OK


def _cmd_purge(args: argparse.Namespace) -> int:
    import os

    from ..cli import confirm
    from .cache import ENV_PHASE_CACHE, ENV_PHASE_CACHE_LIMIT, parse_size

    root = args.phase_cache or os.environ.get(ENV_PHASE_CACHE, "").strip()
    if not root:
        raise ReproError("no persistent phase cache configured: pass "
                         "--phase-cache DIR or set $REPRO_PHASE_CACHE")
    limit = os.environ.get(ENV_PHASE_CACHE_LIMIT)
    store = PersistentPhaseStore(
        root, max_bytes=parse_size(limit) if limit is not None else None)
    before = store.total_bytes()

    if args.only_gc:
        if store.max_bytes is None:
            raise ReproError("--gc needs a size bound: set "
                             "$REPRO_PHASE_CACHE_LIMIT (e.g. 512M)")
        removed = store.gc()
    else:
        if not confirm(f"purge the persistent phase cache at {store.root}?",
                       assume_yes=args.yes):
            print("aborted")
            return EXIT_FAILURE
        removed = store.purge()

    after = store.total_bytes()
    if args.as_json:
        print_json({"root": store.root, "removed": removed,
                    "bytes_before": before, "bytes_after": after,
                    "gc": args.only_gc})
        return EXIT_OK
    action = "evicted" if args.only_gc else "purged"
    print(f"{action} {removed} entr{'y' if removed == 1 else 'ies'} "
          f"({before - after} bytes) from {store.root}")
    return EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "profile":
            return _cmd_profile(args)
        if args.command == "purge":
            return _cmd_purge(args)
        return _cmd_axes(args)
    except ReproError as exc:
        return fail(exc)


if __name__ == "__main__":
    sys.exit(main())
