"""Phase drivers: the Stage 1-3 pipeline as four memoizable steps.

Each driver computes its artifact's content key, consults the
:class:`~repro.pipeline.cache.PhaseCache` (when given one), and builds
the artifact only on a miss -- recording wall-clock and hit/miss into a
:class:`~repro.pipeline.cache.PhaseTimings`.  The drivers are *pure*:
the artifact a driver returns is fully determined by its key.  Two
details make that true:

* Stage 1 synthesizes with a **fresh** algorithm database per call, so
  temporary naming never depends on what other variants were built
  first (the old shared-database builder numbered temps across
  candidates in build order -- order-dependent output that a
  content-addressed cache cannot tolerate).
* Mutating stages run on private copies: ``apply_rewrite_rules`` and
  ``run_pipeline`` both mutate in place, so the rewrite and optimize
  drivers deep-copy their input artifact's program/function first.

Every driver takes an ``analysis`` gate mode (``Options.analysis``):
on a cache miss the freshly built artifact is handed to
:func:`repro.analysis.gate_artifact` *before* ``cache.put``, so under
``strict`` an ill-formed program/function raises
:class:`~repro.errors.AnalysisError` and never reaches the phase cache,
the kernel store, or a client.  Cache hits are not re-verified: an
artifact in the cache either passed the gate or was admitted with the
gate off.

``build_candidate`` in :mod:`repro.slingen.generator` chains the four
drivers and is the only intended caller; the drivers are exposed for
tests and the ``python -m repro.pipeline profile`` CLI.
"""

from __future__ import annotations

import copy
import time
from typing import Dict, Mapping, Optional, Sequence

from ..cir.passes import PassOptions, run_pipeline
from ..cl1ck.database import AlgorithmDatabase
from ..ir.program import Program
from ..lgen.compiler import lower_program_with_stats
from ..lgen.lowering import LoweringOptions
from ..slingen.rewrite import RewriteReport, apply_rewrite_rules
from ..slingen.stage1 import synthesize_basic_program
from .artifacts import (LoweredFunction, OptimizedFunction,
                        RewrittenProgram, Stage1Artifact)
from .cache import PhaseCache, PhaseTimings
from .keys import lower_key, optimize_key, rewrite_key, stage1_key


def _finish(timings: Optional[PhaseTimings], phase: str, started: float,
            hit: bool) -> None:
    if timings is not None:
        timings.record(phase, time.perf_counter() - started, hit)


def _gate(phase: str, artifact, analysis: str) -> None:
    if analysis != "off":
        from ..analysis import gate_artifact
        gate_artifact(phase, artifact, analysis)


def stage1(program: Program, block_size: int,
           variant_choices: Mapping[int, str],
           cache: Optional[PhaseCache] = None,
           timings: Optional[PhaseTimings] = None,
           analysis: str = "off") -> Stage1Artifact:
    """Synthesize (or recall) the basic program for one variant choice."""
    started = time.perf_counter()
    key = stage1_key(program, block_size, variant_choices)
    artifact = cache.get("stage1", key) if cache is not None else None
    if artifact is not None:
        _finish(timings, "stage1", started, hit=True)
        return artifact
    database = AlgorithmDatabase()
    result = synthesize_basic_program(
        program, block_size, dict(variant_choices), database,
        label=f"v{len(variant_choices)}")
    artifact = Stage1Artifact(key=key, result=result,
                              database_stats=database.stats())
    _gate("stage1", result.program, analysis)
    if cache is not None:
        cache.put("stage1", key, artifact)
    _finish(timings, "stage1", started, hit=False)
    return artifact


def rewrite(stage1_artifact: Stage1Artifact, rewrite_rules: bool,
            verified_rewrites: Sequence[str],
            cache: Optional[PhaseCache] = None,
            timings: Optional[PhaseTimings] = None,
            analysis: str = "off") -> RewrittenProgram:
    """Apply the sound R0/R1 tier and any CEGIS-verified rewrites."""
    started = time.perf_counter()
    key = rewrite_key(stage1_artifact.key, rewrite_rules, verified_rewrites)
    artifact = cache.get("rewrite", key) if cache is not None else None
    if artifact is not None:
        _finish(timings, "rewrite", started, hit=True)
        return artifact
    program = copy.deepcopy(stage1_artifact.result.program)
    report = RewriteReport()
    if rewrite_rules:
        report = apply_rewrite_rules(program)
    if verified_rewrites:
        # CEGIS-verified unsound rewrites run after the sound R0/R1
        # tier, on the same basic program every later stage consumes.
        from ..cegis.rewrites import apply_sequence
        program = apply_sequence(verified_rewrites, program)
    artifact = RewrittenProgram(key=key, stage1_key=stage1_artifact.key,
                                program=program, report=report)
    _gate("rewrite", program, analysis)
    if cache is not None:
        cache.put("rewrite", key, artifact)
    _finish(timings, "rewrite", started, hit=False)
    return artifact


def lower(rewritten: RewrittenProgram, vector_width: int,
          use_shuffle_transpose: bool, function_name: str, annotate: bool,
          cache: Optional[PhaseCache] = None,
          timings: Optional[PhaseTimings] = None,
          analysis: str = "off") -> LoweredFunction:
    """Lower the rewritten basic program to a C-IR function."""
    started = time.perf_counter()
    key = lower_key(rewritten.key, vector_width, use_shuffle_transpose,
                    function_name, annotate)
    artifact = cache.get("lower", key) if cache is not None else None
    if artifact is not None:
        _finish(timings, "lower", started, hit=True)
        return artifact
    options = LoweringOptions(vector_width=vector_width,
                              use_shuffle_transpose=use_shuffle_transpose)
    function, stats = lower_program_with_stats(
        rewritten.program, options, function_name=function_name,
        annotate=annotate)
    artifact = LoweredFunction(key=key, rewrite_key=rewritten.key,
                               function=function, stats=stats)
    _gate("lower", function, analysis)
    if cache is not None:
        cache.put("lower", key, artifact)
    _finish(timings, "lower", started, hit=False)
    return artifact


def optimize(lowered: LoweredFunction, pass_options: PassOptions,
             cache: Optional[PhaseCache] = None,
             timings: Optional[PhaseTimings] = None,
             analysis: str = "off") -> OptimizedFunction:
    """Run the Stage-3 pass pipeline on a private copy of the function."""
    started = time.perf_counter()
    key = optimize_key(lowered.key, pass_options.unroll,
                       pass_options.max_unroll_trip_count,
                       pass_options.max_unroll_body,
                       pass_options.scalar_replacement,
                       pass_options.load_store_analysis)
    artifact = cache.get("optimize", key) if cache is not None else None
    if artifact is not None:
        _finish(timings, "optimize", started, hit=True)
        return artifact
    function = copy.deepcopy(lowered.function)
    report = run_pipeline(function, pass_options)
    artifact = OptimizedFunction(key=key, lower_key=lowered.key,
                                 function=function, pass_report=report)
    _gate("optimize", function, analysis)
    if cache is not None:
        cache.put("optimize", key, artifact)
    _finish(timings, "optimize", started, hit=False)
    return artifact


def aggregate_database_stats(
        per_stage1: Mapping[str, Mapping[str, int]]) -> Dict[str, int]:
    """Combine per-Stage-1-artifact algorithm-database stats.

    The staged pipeline gives every Stage-1 synthesis its own database
    (purity requires it); result metadata still wants one roll-up, and
    summing over *distinct* Stage-1 artifacts keeps the roll-up a pure
    function of which artifacts a generation consumed -- identical on
    cold and warm runs.
    """
    total: Dict[str, int] = {"signatures": 0, "cached_expansions": 0,
                             "hits": 0, "syntheses": 0}
    for stats in per_stage1.values():
        for name in total:
            total[name] += int(stats.get(name, 0))
    return total
