"""The staged generation pipeline: phase artifacts + content-addressed reuse.

The paper's Stage 1/2/3 decomposition is the natural memoization seam:
a tuning sweep varies codegen axes while Stage 1 is unchanged, and a
fuzz or CEGIS campaign re-verifies one program under many option sets.
This package makes each phase an explicitly keyed, cacheable step:

``stage1``  Cl1ck synthesis of the basic program
            (keyed by program, resolved block size, variant choices)
``rewrite`` sound R0/R1 + CEGIS-verified rewrites
            (+ rewrite_rules, verified_rewrites)
``lower``   lowering to C-IR
            (+ resolved vector width, shuffle transpose, name, annotate)
``optimize`` the Stage-3 pass pipeline
            (+ unroll axes, effective scalar-replacement / load-store)

:mod:`repro.pipeline.keys` owns the option-axis partition (asserted
complete against ``Options`` in tests), :mod:`repro.pipeline.cache` the
thread-safe :class:`PhaseCache` with its optional ``REPRO_PHASE_CACHE``
persistent layer, and :mod:`repro.pipeline.phases` the drivers that
``build_candidate`` chains.  ``python -m repro.pipeline profile`` times
a cold-vs-warm generation and fails on any warm-pass miss.
"""

from .artifacts import (LoweredFunction, OptimizedFunction,
                        RewrittenProgram, Stage1Artifact)
from .cache import (ENV_PHASE_CACHE, PersistentPhaseStore, PhaseCache,
                    PhaseTimings, reset_shared_phase_cache,
                    shared_phase_cache)
from .keys import (PHASE_AXES, PHASE_SCHEMA_VERSION, PHASES, SEARCH_AXES,
                   assert_partition_complete, lower_key, optimize_key,
                   partition, rewrite_key, stage1_key)

__all__ = [
    "ENV_PHASE_CACHE",
    "LoweredFunction",
    "OptimizedFunction",
    "PersistentPhaseStore",
    "PhaseCache",
    "PhaseTimings",
    "PHASE_AXES",
    "PHASE_SCHEMA_VERSION",
    "PHASES",
    "RewrittenProgram",
    "SEARCH_AXES",
    "Stage1Artifact",
    "assert_partition_complete",
    "lower_key",
    "optimize_key",
    "partition",
    "rewrite_key",
    "reset_shared_phase_cache",
    "shared_phase_cache",
    "stage1_key",
]
