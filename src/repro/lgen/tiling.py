"""Tiling/code-generation decisions explored by the autotuner.

LGen explores different tiling decisions for each sBLAC (paper Fig. 2,
"performance evaluation and search").  In this reproduction the searchable
code-generation knobs are collected in :class:`CodegenVariant`: the vector
width (scalar vs. AVX), the unrolling thresholds applied by the Stage-3
passes, whether the shuffle-based transpose codelet is used, whether the
load/store analysis and scalar replacement run, and the Stage-1 blocking
factor.  :func:`candidate_variants` enumerates the space searched by the
autotuner; its order is deterministic (a pure function of its arguments),
which the tuning database relies on for reproducible records.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class CodegenVariant:
    """One point of the code-generation search space.

    ``block_size=None`` means "use the generator options' default blocking
    factor"; an integer overrides it for Stage-1 synthesis.  The boolean
    toggles compose with the corresponding :class:`Options` flags by
    conjunction, so a variant can only switch an optimization *off* relative
    to the requested configuration, never force one the user disabled.
    """

    vector_width: int = 4
    unroll_trip_count: int = 8
    unroll_body_limit: int = 64
    use_shuffle_transpose: bool = True
    load_store_analysis: bool = True
    block_size: Optional[int] = None
    scalar_replacement: bool = True

    @property
    def label(self) -> str:
        kind = "avx" if self.vector_width > 1 else "scalar"
        return (f"{kind}-u{self.unroll_trip_count}"
                f"{'-lsa' if self.load_store_analysis else ''}"
                f"{'' if self.use_shuffle_transpose else '-noshuf'}"
                f"{f'-b{self.block_size}' if self.block_size else ''}"
                f"{'' if self.scalar_replacement else '-nosr'}")

    def differing_fields(self, other: "CodegenVariant") -> int:
        """Number of knobs on which two variants disagree (the structural
        distance used by the hill-climbing neighborhood)."""
        return sum(1 for f in fields(self)
                   if getattr(self, f.name) != getattr(other, f.name))


#: Stage-1 blocking factors explored by the widened search (the options
#: default -- ``None`` -- is always the first point of the space).
DEFAULT_BLOCK_SIZES: Sequence[int] = (2, 8)


def candidate_variants(vectorize: bool = True,
                       search_unrolling: bool = True,
                       search_block_sizes: bool = True,
                       search_scalar_replacement: bool = True,
                       block_sizes: Optional[Sequence[int]] = None
                       ) -> List[CodegenVariant]:
    """Enumerate code-generation variants for the autotuner.

    The space is intentionally small (each point costs a full kernel
    generation): the dominant decisions at this scale are vectorization,
    unrolling, the Stage-1 blocking factor, and scalar replacement.  The
    enumeration order is deterministic -- the default configuration first,
    then one axis varied at a time -- so tuning records that store variant
    indices or labels reproduce across runs.
    """
    base = CodegenVariant(vector_width=4 if vectorize else 1)
    variants = [base]
    if search_unrolling:
        variants.append(replace(base, unroll_trip_count=4,
                                unroll_body_limit=32))
        variants.append(replace(base, unroll_trip_count=16,
                                unroll_body_limit=128))
    if vectorize:
        variants.append(replace(base, use_shuffle_transpose=False))
    if search_block_sizes:
        for block in (block_sizes if block_sizes is not None
                      else DEFAULT_BLOCK_SIZES):
            variants.append(replace(base, block_size=int(block)))
    if search_scalar_replacement:
        variants.append(replace(base, scalar_replacement=False))
    seen = set()
    unique: List[CodegenVariant] = []
    for variant in variants:
        if variant not in seen:
            unique.append(variant)
            seen.add(variant)
    return unique


def dedupe_resolved(variants: Sequence[CodegenVariant],
                    default_block_size: int) -> List[CodegenVariant]:
    """Drop variants that are redundant once ``block_size=None`` resolves.

    A variant with an explicit ``block_size`` equal to the configuration's
    effective default builds the exact same kernel as its ``None``
    counterpart; evaluating both wastes search budget and pollutes the
    trial log with duplicate points.  Order-stable (first occurrence wins),
    so enumeration stays deterministic.
    """
    seen = set()
    unique: List[CodegenVariant] = []
    for variant in variants:
        resolved = replace(
            variant, block_size=variant.block_size or default_block_size)
        if resolved not in seen:
            unique.append(variant)
            seen.add(resolved)
    return unique
