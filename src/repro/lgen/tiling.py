"""Tiling/code-generation decisions explored by the autotuner.

LGen explores different tiling decisions for each sBLAC (paper Fig. 2,
"performance evaluation and search").  In this reproduction the searchable
code-generation knobs are collected in :class:`CodegenVariant`: the vector
width (scalar vs. AVX), the unrolling thresholds applied by the Stage-3
passes, whether the shuffle-based transpose codelet is used, and whether the
load/store analysis runs.  :func:`candidate_variants` enumerates the space
searched by the autotuner.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, List


@dataclass(frozen=True)
class CodegenVariant:
    """One point of the code-generation search space."""

    vector_width: int = 4
    unroll_trip_count: int = 8
    unroll_body_limit: int = 64
    use_shuffle_transpose: bool = True
    load_store_analysis: bool = True

    @property
    def label(self) -> str:
        kind = "avx" if self.vector_width > 1 else "scalar"
        return (f"{kind}-u{self.unroll_trip_count}"
                f"{'-lsa' if self.load_store_analysis else ''}"
                f"{'' if self.use_shuffle_transpose else '-noshuf'}")


def candidate_variants(vectorize: bool = True,
                       search_unrolling: bool = True) -> List[CodegenVariant]:
    """Enumerate code-generation variants for the autotuner.

    The default space is intentionally small (a handful of points): the
    dominant performance decisions at this scale are vectorization and
    unrolling, and each candidate requires generating and evaluating a full
    kernel.
    """
    base = CodegenVariant(vector_width=4 if vectorize else 1)
    variants = [base]
    if search_unrolling:
        variants.append(replace(base, unroll_trip_count=4,
                                unroll_body_limit=32))
        variants.append(replace(base, unroll_trip_count=16,
                                unroll_body_limit=128))
    if vectorize:
        variants.append(replace(base, use_shuffle_transpose=False))
    seen = set()
    unique: List[CodegenVariant] = []
    for variant in variants:
        if variant not in seen:
            unique.append(variant)
            seen.add(variant)
    return unique
