"""The nu-BLACs: vector-size building blocks of LGen/SLinGen.

The LGen approach (paper Sec. 2.1) pre-implements, once per vector ISA, the
18 single operations on nu x nu matrices and nu-vectors ("nu-BLACs"); sBLACs
are tiled down to these.  This module provides

* :data:`NU_BLACS` -- the catalogue of the 18 operations (used by the
  documentation, by tests, and to label generated code), and
* the innermost C-IR emitters the tiled lowering uses for a vector-length
  unit of work: broadcast multiply-accumulate along a row, vector
  dot-product accumulation, the shuffle-based 4x4 in-register transpose, and
  scaled row copies.

Only the AVX double-precision instantiation (nu = 4) of the shuffle-based
transpose is provided, matching the paper's evaluation platform; all other
emitters are width-generic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..cir.builder import CIRBuilder
from ..cir.nodes import (Affine, Assign, CStmt, FloatConst, ScalarVar, VBinOp,
                         VBlend, VecVar, VLoad, VPermute2f128, VStore, VUnpack,
                         VZero)
from ..ir.operands import View


@dataclass(frozen=True)
class NuBlac:
    """Descriptor of one nu-BLAC (a single operation on nu-sized operands)."""

    name: str
    signature: str
    description: str


#: The 18 nu-BLACs of LGen: all single operations (+, *, scalar *, ^T) on
#: nu x nu matrices and nu-vectors (paper Sec. 2.1).
NU_BLACS: Tuple[NuBlac, ...] = (
    NuBlac("mm_add", "C = A + B", "nu x nu matrix addition"),
    NuBlac("vv_add", "z = x + y", "nu-vector addition"),
    NuBlac("tv_add", "z^T = x^T + y^T", "transposed-vector addition"),
    NuBlac("ss_add", "gamma = alpha + beta", "scalar addition"),
    NuBlac("mm_mul", "C = A * B", "nu x nu matrix multiplication"),
    NuBlac("mv_mul", "y = A * x", "matrix times column vector"),
    NuBlac("vm_mul", "y^T = x^T * A", "row vector times matrix"),
    NuBlac("vv_outer", "A = x * y^T", "outer product"),
    NuBlac("vv_inner", "alpha = x^T * y", "inner (dot) product"),
    NuBlac("sm_mul", "B = alpha * A", "scalar times matrix"),
    NuBlac("sv_mul", "y = alpha * x", "scalar times vector"),
    NuBlac("st_mul", "y^T = alpha * x^T", "scalar times transposed vector"),
    NuBlac("ss_mul", "gamma = alpha * beta", "scalar multiplication"),
    NuBlac("m_trans", "B = A^T", "nu x nu matrix transposition"),
    NuBlac("v_trans", "y^T = x^T (re-layout)", "vector transposition"),
    NuBlac("mm_sub", "C = A - B", "nu x nu matrix subtraction"),
    NuBlac("vv_sub", "z = x - y", "nu-vector subtraction"),
    NuBlac("ss_sub", "gamma = alpha - beta", "scalar subtraction"),
)


def find_nu_blac(name: str) -> Optional[NuBlac]:
    """Look up a nu-BLAC descriptor by name."""
    for blac in NU_BLACS:
        if blac.name == name:
            return blac
    return None


# ---------------------------------------------------------------------------
# Innermost emitters
# ---------------------------------------------------------------------------


def leftover_mask(count: int, width: int) -> Optional[Tuple[bool, ...]]:
    """Mask loading/storing the first ``count`` of ``width`` lanes.

    Returns ``None`` (no mask needed) when ``count == width``.
    """
    if count >= width:
        return None
    return tuple(lane < count for lane in range(width))


def emit_axpy_row(builder: CIRBuilder, acc: VecVar, scale: VecVar,
                  src_view: View, row, col, width: int,
                  mask: Optional[Tuple[bool, ...]],
                  stmts: List[CStmt]) -> VecVar:
    """Emit ``acc += scale * src[row, col:col+width]`` and return the new
    accumulator register."""
    buffer, index = builder.address(src_view, row, col)
    loaded = VLoad(buffer, index, width, mask)
    new_acc = builder.vector(width, "acc")
    stmts.append(Assign(new_acc, VBinOp("add", acc,
                                        VBinOp("mul", scale, loaded, width),
                                        width)))
    return new_acc


def emit_dot_step(builder: CIRBuilder, acc: VecVar, a_view: View, a_row, a_col,
                  b_view: View, b_row, b_col, width: int,
                  mask: Optional[Tuple[bool, ...]],
                  stmts: List[CStmt]) -> VecVar:
    """Emit one vector step of a dot product: ``acc += a[...] * b[...]``."""
    a_buf, a_idx = builder.address(a_view, a_row, a_col)
    b_buf, b_idx = builder.address(b_view, b_row, b_col)
    product = VBinOp("mul", VLoad(a_buf, a_idx, width, mask),
                     VLoad(b_buf, b_idx, width, mask), width)
    new_acc = builder.vector(width, "acc")
    stmts.append(Assign(new_acc, VBinOp("add", acc, product, width)))
    return new_acc


def emit_transpose_4x4(builder: CIRBuilder, dest_view: View, dest_row: int,
                       dest_col: int, src_view: View, src_row: int,
                       src_col: int, stmts: List[CStmt]) -> None:
    """Transpose a full 4x4 tile in registers using AVX shuffles.

    This is the classic unpack/permute sequence: 4 loads, 4 unpacks,
    4 permute2f128, 4 stores -- no scalar memory traffic.  It implements the
    ``m_trans`` nu-BLAC for the AVX double-precision ISA (nu = 4).
    """
    rows = []
    for r in range(4):
        buffer, index = builder.address(src_view, src_row + r, src_col)
        reg = builder.vector(4, "tr")
        stmts.append(Assign(reg, VLoad(buffer, index, 4)))
        rows.append(reg)

    lo01 = builder.vector(4, "tr")
    hi01 = builder.vector(4, "tr")
    lo23 = builder.vector(4, "tr")
    hi23 = builder.vector(4, "tr")
    stmts.append(Assign(lo01, VUnpack(rows[0], rows[1], high=False)))
    stmts.append(Assign(hi01, VUnpack(rows[0], rows[1], high=True)))
    stmts.append(Assign(lo23, VUnpack(rows[2], rows[3], high=False)))
    stmts.append(Assign(hi23, VUnpack(rows[2], rows[3], high=True)))

    out = [builder.vector(4, "tr") for _ in range(4)]
    stmts.append(Assign(out[0], VPermute2f128(lo01, lo23, 0x20)))
    stmts.append(Assign(out[1], VPermute2f128(hi01, hi23, 0x20)))
    stmts.append(Assign(out[2], VPermute2f128(lo01, lo23, 0x31)))
    stmts.append(Assign(out[3], VPermute2f128(hi01, hi23, 0x31)))

    for r in range(4):
        buffer, index = builder.address(dest_view, dest_row + r, dest_col)
        stmts.append(VStore(buffer, index, out[r], 4))


def emit_scaled_row_copy(builder: CIRBuilder, dest_view: View, dest_row,
                         dest_col, src_view: View, src_row, src_col,
                         width: int, mask: Optional[Tuple[bool, ...]],
                         scale: Optional[VecVar], accumulate: int,
                         stmts: List[CStmt]) -> None:
    """Emit ``dest[row, col:col+width] (acc)= scale * src[row, col:col+width]``.

    ``accumulate`` follows the canonical-op convention: 0 assign, +1 add,
    -1 subtract.  ``scale`` of ``None`` means a unit coefficient.
    """
    src_buf, src_idx = builder.address(src_view, src_row, src_col)
    value: VBinOp | VLoad = VLoad(src_buf, src_idx, width, mask)
    if scale is not None:
        value = VBinOp("mul", scale, value, width)
    dest_buf, dest_idx = builder.address(dest_view, dest_row, dest_col)
    if accumulate:
        existing = VLoad(dest_buf, dest_idx, width, mask)
        op = "add" if accumulate > 0 else "sub"
        value = VBinOp(op, existing, value, width)
    stmts.append(VStore(dest_buf, dest_idx, value, width, mask))
