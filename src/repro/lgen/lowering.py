"""Lowering of canonical sBLAC operations to C-IR (Stage 2 back half).

Every canonical operation produced by :mod:`repro.lgen.normalize` is turned
into C-IR loops whose innermost steps are nu-BLAC-style vector operations
(broadcast multiply-accumulate, dot-product reduction, shuffle-based 4x4
transposes) or scalar code when vectorization is disabled or the access
pattern is not unit-stride.

Strategy selection follows the memory layout: SLinGen/LGen store operands
row-major, so the logical column dimension of a (non-transposed) view is
contiguous.  A matrix product is vectorized

* along ``j`` (columns of the destination) with broadcasts of A's elements
  when ``op(B)`` is unit-stride along ``j``  ("broadcast kernel"),
* along ``k`` (the reduction dimension) with a horizontal reduction when
  both ``op(A)`` and ``op(B)`` are unit-stride along ``k`` ("dot kernel"),
* along ``i`` when the destination is a contiguous column vector
  ("column kernel"),
* otherwise with scalar loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from ..cir.builder import CIRBuilder
from ..cir.nodes import (Affine, Assign, BinOp, CExpr, CStmt, FloatConst, For,
                         Load, ScalarVar, Store, UnOp, VBinOp, VBroadcast,
                         VecVar, VLoad, VReduceAdd, VStore, VZero)
from ..errors import LoweringError
from ..ir.expr import (Add, Const, Div, Expr, Mul, Neg, Ref, Sqrt, Sub,
                       Transpose)
from ..ir.operands import View
from .normalize import (CanonicalOp, MatMulOp, ScalarAssignOp, ScalarCoeff,
                        ScaleCopyOp)
from .nu_blacs import emit_scaled_row_copy, emit_transpose_4x4, leftover_mask

Index = Union[Affine, int, str]


@dataclass
class LoweringOptions:
    """Controls how sBLACs are lowered to C-IR."""

    vector_width: int = 4          # 1 disables vectorization
    use_shuffle_transpose: bool = True
    min_vector_length: int = 2     # do not vectorize dimensions shorter than this


# ---------------------------------------------------------------------------
# Shape / layout helpers
# ---------------------------------------------------------------------------


def op_shape(view: View, trans: bool) -> Tuple[int, int]:
    """Shape of ``op(view)`` where ``op`` optionally transposes."""
    return (view.cols, view.rows) if trans else (view.rows, view.cols)


def op_element(view: View, trans: bool, i: Index, j: Index) -> Tuple[Index, Index]:
    """View-relative (row, col) of element (i, j) of ``op(view)``."""
    return (j, i) if trans else (i, j)


def _buffer_cols(builder: CIRBuilder, view: View) -> int:
    return builder.buffer_for(view.operand).cols


def stride_along_cols(builder: CIRBuilder, view: View, trans: bool) -> int:
    """Memory stride when the column index of ``op(view)`` increases by 1."""
    return _buffer_cols(builder, view) if trans else 1


def stride_along_rows(builder: CIRBuilder, view: View, trans: bool) -> int:
    """Memory stride when the row index of ``op(view)`` increases by 1."""
    return 1 if trans else _buffer_cols(builder, view)


class Lowerer:
    """Lowers canonical operations into a C-IR statement list."""

    def __init__(self, builder: CIRBuilder, options: Optional[LoweringOptions] = None):
        self.builder = builder
        self.options = options or LoweringOptions()

    # -- public API -------------------------------------------------------------

    def lower(self, op: CanonicalOp, stmts: List[CStmt]) -> None:
        self._ensure_buffers(op)
        if isinstance(op, MatMulOp):
            self._lower_matmul(op, stmts)
        elif isinstance(op, ScaleCopyOp):
            self._lower_scale_copy(op, stmts)
        elif isinstance(op, ScalarAssignOp):
            self._lower_scalar_assign(op, stmts)
        else:  # pragma: no cover - defensive
            raise LoweringError(f"unknown canonical op {op!r}")

    # -- common helpers -----------------------------------------------------------

    def _ensure_buffers(self, op: CanonicalOp) -> None:
        """Register temp operands introduced by normalization as buffers."""
        views: List[View] = []
        if isinstance(op, MatMulOp):
            views = [op.dest, op.a, op.b]
            views += [f for f, _ in op.alpha.factors if isinstance(f, View)]
        elif isinstance(op, ScaleCopyOp):
            views = [op.dest, op.src]
            views += [f for f, _ in op.alpha.factors if isinstance(f, View)]
        elif isinstance(op, ScalarAssignOp):
            views = [op.dest] + op.expr.views()
        for view in views:
            if view.operand.name not in self.builder.program.operands:
                self.builder.register_temp_operand(view.operand)

    def _emit_coeff(self, coeff: ScalarCoeff,
                    stmts: List[CStmt]) -> Optional[ScalarVar]:
        """Materialize a scalar coefficient into a register (None if unit)."""
        if coeff.is_one:
            return None
        value: Optional[CExpr] = None
        for factor, reciprocal in coeff.factors:
            if isinstance(factor, View):
                buffer, index = self.builder.address(factor, 0, 0)
                factor_expr: CExpr = Load(buffer, index)
            else:
                factor_expr = FloatConst(float(factor))
            if reciprocal:
                numerator = value if value is not None else FloatConst(1.0)
                value = BinOp("div", numerator, factor_expr)
            else:
                value = factor_expr if value is None else \
                    BinOp("mul", value, factor_expr)
        if value is None:
            value = FloatConst(1.0)
        if coeff.sign < 0:
            value = UnOp("neg", value)
        reg = self.builder.scalar("alpha")
        stmts.append(Assign(reg, value))
        return reg

    def _broadcast(self, scalar: Optional[ScalarVar], width: int,
                   stmts: List[CStmt]) -> Optional[VecVar]:
        if scalar is None:
            return None
        reg = self.builder.vector(width, "valpha")
        stmts.append(Assign(reg, VBroadcast(scalar, width)))
        return reg

    def _load(self, view: View, row: Index, col: Index) -> Load:
        buffer, index = self.builder.address(view, row, col)
        return Load(buffer, index)

    def _vload(self, view: View, row: Index, col: Index, width: int,
               mask=None) -> VLoad:
        buffer, index = self.builder.address(view, row, col)
        return VLoad(buffer, index, width, mask)

    def _store(self, view: View, row: Index, col: Index, value: CExpr) -> Store:
        buffer, index = self.builder.address(view, row, col)
        return Store(buffer, index, value)

    def _vstore(self, view: View, row: Index, col: Index, value: CExpr,
                width: int, mask=None) -> VStore:
        buffer, index = self.builder.address(view, row, col)
        return VStore(buffer, index, value, width, mask)

    # -- matrix multiplication ------------------------------------------------------

    def _lower_matmul(self, op: MatMulOp, stmts: List[CStmt]) -> None:
        m, ka = op_shape(op.a, op.trans_a)
        kb, n = op_shape(op.b, op.trans_b)
        dm, dn = op.dest.shape
        if ka != kb or (dm, dn) != (m, n):
            raise LoweringError(
                f"inconsistent matmul shapes: dest {op.dest.shape}, "
                f"A {op_shape(op.a, op.trans_a)}, "
                f"B {op_shape(op.b, op.trans_b)}")
        k = ka
        width = self.options.vector_width

        if width > 1:
            b_cols_contig = stride_along_cols(self.builder, op.b, op.trans_b) == 1
            a_k_contig = stride_along_cols(self.builder, op.a, op.trans_a) == 1
            b_k_contig = stride_along_rows(self.builder, op.b, op.trans_b) == 1
            dest_rows_contig = stride_along_rows(self.builder, op.dest, False) == 1
            a_rows_contig = stride_along_rows(self.builder, op.a, op.trans_a) == 1
            if n >= self.options.min_vector_length and b_cols_contig:
                self._matmul_broadcast_j(op, m, n, k, width, stmts)
                return
            if k >= self.options.min_vector_length and a_k_contig and b_k_contig:
                self._matmul_dot_k(op, m, n, k, width, stmts)
                return
            if (n == 1 and m >= self.options.min_vector_length
                    and dest_rows_contig and a_rows_contig):
                self._matmul_broadcast_i(op, m, k, width, stmts)
                return
            if b_cols_contig and n >= 1:
                self._matmul_broadcast_j(op, m, n, k, width, stmts)
                return
        self._matmul_scalar(op, m, n, k, stmts)

    def _matmul_broadcast_j(self, op: MatMulOp, m: int, n: int, k: int,
                            width: int, stmts: List[CStmt]) -> None:
        alpha = self._emit_coeff(op.alpha, stmts)
        valpha = self._broadcast(alpha, width, stmts)
        i_var = self.builder.index_var("i")
        n_full = (n // width) * width

        def emit_block(body: List[CStmt], i: Index, j: Index, count: int) -> None:
            mask = leftover_mask(count, width)
            acc = self.builder.vector(width, "acc")
            body.append(Assign(acc, VZero(width)))
            k_var = self.builder.index_var("k")
            k_body: List[CStmt] = []
            a_reg = self.builder.scalar("a")
            a_row, a_col = op_element(op.a, op.trans_a, i, k_var)
            k_body.append(Assign(a_reg, self._load(op.a, a_row, a_col)))
            b_row, b_col = op_element(op.b, op.trans_b, k_var, j)
            k_body.append(Assign(acc, VBinOp(
                "add", acc,
                VBinOp("mul", VBroadcast(a_reg, width),
                       self._vload(op.b, b_row, b_col, width, mask), width),
                width)))
            body.append(For(k_var, 0, k, 1, k_body))
            contrib: CExpr = acc
            if valpha is not None:
                contrib = VBinOp("mul", valpha, contrib, width)
            if op.accumulate:
                existing = self._vload(op.dest, i, j, width, mask)
                contrib = VBinOp("add" if op.accumulate > 0 else "sub",
                                 existing, contrib, width)
            body.append(self._vstore(op.dest, i, j, contrib, width, mask))

        i_body: List[CStmt] = []
        if n_full:
            j_var = self.builder.index_var("j")
            j_body: List[CStmt] = []
            emit_block(j_body, i_var, j_var, width)
            i_body.append(For(j_var, 0, n_full, width, j_body))
        if n % width:
            emit_block(i_body, i_var, n_full, n % width)
        stmts.append(For(i_var, 0, m, 1, i_body))

    def _matmul_dot_k(self, op: MatMulOp, m: int, n: int, k: int, width: int,
                      stmts: List[CStmt]) -> None:
        alpha = self._emit_coeff(op.alpha, stmts)
        i_var = self.builder.index_var("i")
        j_var = self.builder.index_var("j")
        k_full = (k // width) * width

        body: List[CStmt] = []
        acc = self.builder.vector(width, "acc")
        body.append(Assign(acc, VZero(width)))
        if k_full:
            k_var = self.builder.index_var("k")
            k_body: List[CStmt] = []
            a_row, a_col = op_element(op.a, op.trans_a, i_var, k_var)
            b_row, b_col = op_element(op.b, op.trans_b, k_var, j_var)
            k_body.append(Assign(acc, VBinOp(
                "add", acc,
                VBinOp("mul", self._vload(op.a, a_row, a_col, width),
                       self._vload(op.b, b_row, b_col, width), width),
                width)))
            body.append(For(k_var, 0, k_full, width, k_body))
        if k % width:
            mask = leftover_mask(k % width, width)
            a_row, a_col = op_element(op.a, op.trans_a, i_var, k_full)
            b_row, b_col = op_element(op.b, op.trans_b, k_full, j_var)
            body.append(Assign(acc, VBinOp(
                "add", acc,
                VBinOp("mul", self._vload(op.a, a_row, a_col, width, mask),
                       self._vload(op.b, b_row, b_col, width, mask), width),
                width)))
        total = self.builder.scalar("dot")
        body.append(Assign(total, VReduceAdd(acc)))
        contrib: CExpr = total
        if alpha is not None:
            contrib = BinOp("mul", alpha, contrib)
        if op.accumulate:
            existing = self._load(op.dest, i_var, j_var)
            contrib = BinOp("add" if op.accumulate > 0 else "sub", existing,
                            contrib)
        body.append(self._store(op.dest, i_var, j_var, contrib))

        j_loop = For(j_var, 0, n, 1, body)
        stmts.append(For(i_var, 0, m, 1, [j_loop]))

    def _matmul_broadcast_i(self, op: MatMulOp, m: int, k: int, width: int,
                            stmts: List[CStmt]) -> None:
        alpha = self._emit_coeff(op.alpha, stmts)
        valpha = self._broadcast(alpha, width, stmts)
        m_full = (m // width) * width

        def emit_block(body: List[CStmt], i: Index, count: int) -> None:
            mask = leftover_mask(count, width)
            acc = self.builder.vector(width, "acc")
            body.append(Assign(acc, VZero(width)))
            k_var = self.builder.index_var("k")
            k_body: List[CStmt] = []
            b_reg = self.builder.scalar("b")
            b_row, b_col = op_element(op.b, op.trans_b, k_var, 0)
            k_body.append(Assign(b_reg, self._load(op.b, b_row, b_col)))
            a_row, a_col = op_element(op.a, op.trans_a, i, k_var)
            k_body.append(Assign(acc, VBinOp(
                "add", acc,
                VBinOp("mul", self._vload(op.a, a_row, a_col, width, mask),
                       VBroadcast(b_reg, width), width),
                width)))
            body.append(For(k_var, 0, k, 1, k_body))
            contrib: CExpr = acc
            if valpha is not None:
                contrib = VBinOp("mul", valpha, contrib, width)
            if op.accumulate:
                existing = self._vload(op.dest, i, 0, width, mask)
                contrib = VBinOp("add" if op.accumulate > 0 else "sub",
                                 existing, contrib, width)
            body.append(self._vstore(op.dest, i, 0, contrib, width, mask))

        if m_full:
            i_var = self.builder.index_var("i")
            i_body: List[CStmt] = []
            emit_block(i_body, i_var, width)
            stmts.append(For(i_var, 0, m_full, width, i_body))
        if m % width:
            emit_block(stmts, m_full, m % width)

    def _matmul_scalar(self, op: MatMulOp, m: int, n: int, k: int,
                       stmts: List[CStmt]) -> None:
        alpha = self._emit_coeff(op.alpha, stmts)
        i_var = self.builder.index_var("i")
        j_var = self.builder.index_var("j")
        k_var = self.builder.index_var("k")

        acc = self.builder.scalar("acc")
        body: List[CStmt] = [Assign(acc, FloatConst(0.0))]
        a_row, a_col = op_element(op.a, op.trans_a, i_var, k_var)
        b_row, b_col = op_element(op.b, op.trans_b, k_var, j_var)
        k_body = [Assign(acc, BinOp("add", acc,
                                    BinOp("mul",
                                          self._load(op.a, a_row, a_col),
                                          self._load(op.b, b_row, b_col))))]
        body.append(For(k_var, 0, k, 1, k_body))
        contrib: CExpr = acc
        if alpha is not None:
            contrib = BinOp("mul", alpha, contrib)
        if op.accumulate:
            existing = self._load(op.dest, i_var, j_var)
            contrib = BinOp("add" if op.accumulate > 0 else "sub", existing,
                            contrib)
        body.append(self._store(op.dest, i_var, j_var, contrib))

        stmts.append(For(i_var, 0, m, 1, [For(j_var, 0, n, 1, body)]))

    # -- scaled copies ------------------------------------------------------------

    def _lower_scale_copy(self, op: ScaleCopyOp, stmts: List[CStmt]) -> None:
        sm, sn = op_shape(op.src, op.trans)
        if (sm, sn) != op.dest.shape:
            raise LoweringError(
                f"inconsistent copy shapes: dest {op.dest.shape}, "
                f"src {op_shape(op.src, op.trans)}")
        m, n = op.dest.shape
        width = self.options.vector_width

        if op.trans and width == 4 and self.options.use_shuffle_transpose \
                and op.alpha.is_one and op.accumulate == 0 and m >= 4 and n >= 4:
            self._transposed_copy_tiled(op, m, n, stmts)
            return

        if not op.trans and width > 1:
            src_cols_contig = stride_along_cols(self.builder, op.src, False) == 1
            dest_cols_contig = stride_along_cols(self.builder, op.dest, False) == 1
            if n >= self.options.min_vector_length and src_cols_contig \
                    and dest_cols_contig:
                self._copy_rowwise_vector(op, m, n, width, stmts)
                return
            src_rows_contig = stride_along_rows(self.builder, op.src, False) == 1
            dest_rows_contig = stride_along_rows(self.builder, op.dest, False) == 1
            if n == 1 and m >= self.options.min_vector_length \
                    and src_rows_contig and dest_rows_contig:
                self._copy_colwise_vector(op, m, width, stmts)
                return
        self._copy_scalar(op, m, n, stmts)

    def _copy_rowwise_vector(self, op: ScaleCopyOp, m: int, n: int, width: int,
                             stmts: List[CStmt]) -> None:
        alpha = self._emit_coeff(op.alpha, stmts)
        valpha = self._broadcast(alpha, width, stmts)
        i_var = self.builder.index_var("i")
        n_full = (n // width) * width
        i_body: List[CStmt] = []
        if n_full:
            j_var = self.builder.index_var("j")
            j_body: List[CStmt] = []
            emit_scaled_row_copy(self.builder, op.dest, i_var, j_var, op.src,
                                 i_var, j_var, width, None, valpha,
                                 op.accumulate, j_body)
            i_body.append(For(j_var, 0, n_full, width, j_body))
        if n % width:
            mask = leftover_mask(n % width, width)
            emit_scaled_row_copy(self.builder, op.dest, i_var, n_full, op.src,
                                 i_var, n_full, width, mask, valpha,
                                 op.accumulate, i_body)
        stmts.append(For(i_var, 0, m, 1, i_body))

    def _copy_colwise_vector(self, op: ScaleCopyOp, m: int, width: int,
                             stmts: List[CStmt]) -> None:
        alpha = self._emit_coeff(op.alpha, stmts)
        valpha = self._broadcast(alpha, width, stmts)
        m_full = (m // width) * width
        if m_full:
            i_var = self.builder.index_var("i")
            body: List[CStmt] = []
            emit_scaled_row_copy(self.builder, op.dest, i_var, 0, op.src,
                                 i_var, 0, width, None, valpha, op.accumulate,
                                 body)
            stmts.append(For(i_var, 0, m_full, width, body))
        if m % width:
            mask = leftover_mask(m % width, width)
            emit_scaled_row_copy(self.builder, op.dest, m_full, 0, op.src,
                                 m_full, 0, width, mask, valpha, op.accumulate,
                                 stmts)

    def _copy_scalar(self, op: ScaleCopyOp, m: int, n: int,
                     stmts: List[CStmt]) -> None:
        alpha = self._emit_coeff(op.alpha, stmts)
        i_var = self.builder.index_var("i")
        j_var = self.builder.index_var("j")
        src_row, src_col = op_element(op.src, op.trans, i_var, j_var)
        value: CExpr = self._load(op.src, src_row, src_col)
        if alpha is not None:
            value = BinOp("mul", alpha, value)
        if op.accumulate:
            existing = self._load(op.dest, i_var, j_var)
            value = BinOp("add" if op.accumulate > 0 else "sub", existing,
                          value)
        body = [self._store(op.dest, i_var, j_var, value)]
        if n == 1:
            stmts.append(For(i_var, 0, m, 1,
                             [For(j_var, 0, 1, 1, body)]))
        else:
            stmts.append(For(i_var, 0, m, 1, [For(j_var, 0, n, 1, body)]))

    def _transposed_copy_tiled(self, op: ScaleCopyOp, m: int, n: int,
                               stmts: List[CStmt]) -> None:
        """Transpose using the 4x4 shuffle codelet for full tiles."""
        tile = 4
        m_full = (m // tile) * tile
        n_full = (n // tile) * tile
        for r0 in range(0, m_full, tile):
            for c0 in range(0, n_full, tile):
                emit_transpose_4x4(self.builder, op.dest, r0, c0, op.src,
                                   c0, r0, stmts)
        # Leftover rows/columns fall back to scalar copies.
        for r in range(m):
            for c in range(n):
                if r < m_full and c < n_full:
                    continue
                stmts.append(self._store(op.dest, r, c,
                                         self._load(op.src, c, r)))

    # -- scalar statements ---------------------------------------------------------

    def _lower_scalar_assign(self, op: ScalarAssignOp, stmts: List[CStmt]) -> None:
        value = self._scalar_expr(op.expr, stmts)
        stmts.append(self._store(op.dest, 0, 0, value))

    def _scalar_expr(self, expr: Expr, stmts: List[CStmt]) -> CExpr:
        if isinstance(expr, Const):
            return FloatConst(float(expr.value))
        if isinstance(expr, Ref):
            if not expr.view.is_scalar:
                raise LoweringError(
                    f"non-scalar reference {expr!r} in scalar expression")
            return self._load(expr.view, 0, 0)
        if isinstance(expr, Transpose):
            return self._scalar_expr(expr.child, stmts)
        if isinstance(expr, Neg):
            return UnOp("neg", self._scalar_expr(expr.child, stmts))
        if isinstance(expr, Sqrt):
            return UnOp("sqrt", self._scalar_expr(expr.child, stmts))
        if isinstance(expr, Add):
            return BinOp("add", self._scalar_expr(expr.left, stmts),
                         self._scalar_expr(expr.right, stmts))
        if isinstance(expr, Sub):
            return BinOp("sub", self._scalar_expr(expr.left, stmts),
                         self._scalar_expr(expr.right, stmts))
        if isinstance(expr, Div):
            return BinOp("div", self._scalar_expr(expr.left, stmts),
                         self._scalar_expr(expr.right, stmts))
        if isinstance(expr, Mul):
            if expr.left.is_scalar and expr.right.is_scalar:
                return BinOp("mul", self._scalar_expr(expr.left, stmts),
                             self._scalar_expr(expr.right, stmts))
            return self._inline_dot(expr, stmts)
        raise LoweringError(f"unsupported scalar expression {expr!r}")

    def _vector_leaf(self, expr: Expr) -> Tuple[View, bool]:
        """Interpret an expression as a (possibly transposed) vector view."""
        if isinstance(expr, Ref):
            return expr.view, False
        if isinstance(expr, Transpose) and isinstance(expr.child, Ref):
            return expr.child.view, True
        raise LoweringError(
            f"expected a (transposed) vector reference, got {expr!r}")

    def _inline_dot(self, expr: Mul, stmts: List[CStmt]) -> CExpr:
        """Lower a scalar-valued product of two vectors (an inner product)."""
        if expr.left.cols == expr.right.rows and expr.left.rows == 1 \
                and expr.right.cols == 1:
            left_view, left_trans = self._vector_leaf(expr.left)
            right_view, right_trans = self._vector_leaf(expr.right)
        else:
            raise LoweringError(
                f"scalar expression contains a non-inner product {expr!r}")
        length = expr.left.cols
        width = self.options.vector_width

        def element(view: View, trans: bool, logical_is_row: bool,
                    idx: Index) -> Tuple[Index, Index]:
            # logical vector element `idx`; the view is 1 x k or k x 1
            if view.rows == 1:
                coords = (0, idx)
            else:
                coords = (idx, 0)
            return coords

        def contiguous(view: View) -> bool:
            if view.rows == 1:
                return True
            return _buffer_cols(self.builder, view) == 1

        if width > 1 and length >= width and contiguous(left_view) \
                and contiguous(right_view):
            acc = self.builder.vector(width, "acc")
            stmts.append(Assign(acc, VZero(width)))
            full = (length // width) * width
            if full:
                k_var = self.builder.index_var("k")
                lr, lc = element(left_view, left_trans, True, k_var)
                rr, rc = element(right_view, right_trans, False, k_var)
                body = [Assign(acc, VBinOp(
                    "add", acc,
                    VBinOp("mul", self._vload(left_view, lr, lc, width),
                           self._vload(right_view, rr, rc, width), width),
                    width))]
                stmts.append(For(k_var, 0, full, width, body))
            if length % width:
                mask = leftover_mask(length % width, width)
                lr, lc = element(left_view, left_trans, True, full)
                rr, rc = element(right_view, right_trans, False, full)
                stmts.append(Assign(acc, VBinOp(
                    "add", acc,
                    VBinOp("mul",
                           self._vload(left_view, lr, lc, width, mask),
                           self._vload(right_view, rr, rc, width, mask),
                           width),
                    width)))
            total = self.builder.scalar("dot")
            stmts.append(Assign(total, VReduceAdd(acc)))
            return total

        acc_s = self.builder.scalar("dot")
        stmts.append(Assign(acc_s, FloatConst(0.0)))
        k_var = self.builder.index_var("k")
        lr, lc = element(left_view, left_trans, True, k_var)
        rr, rc = element(right_view, right_trans, False, k_var)
        body = [Assign(acc_s, BinOp("add", acc_s,
                                    BinOp("mul",
                                          self._load(left_view, lr, lc),
                                          self._load(right_view, rr, rc))))]
        stmts.append(For(k_var, 0, length, 1, body))
        return acc_s
