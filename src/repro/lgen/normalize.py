"""Normalization of sBLAC statements into canonical operations.

LGen compiles *single* sBLACs; an LA statement like ``Y = F*P*F^T + Q`` first
has to be decomposed into a sequence of canonical operations (binary matrix
products, scaled copies, scalar assignments), introducing temporary operands
for intermediate results.  This module performs that decomposition:

* additive terms are split (``flatten_add``),
* transposes are pushed down to the leaves (``(A*B)^T -> B^T * A^T``),
* scalar factors (including reciprocals coming from rule R1) are collected
  into a symbolic coefficient,
* matrix product chains are associated with the classic matrix-chain dynamic
  program to minimize flops, and
* in-place updates (``C = C - A*B``) are detected so no temporary copy of the
  output is needed.

The result is a list of :class:`CanonicalOp` objects that the lowering in
:mod:`repro.lgen.lowering` knows how to turn into C-IR.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import LoweringError
from ..ir.expr import (Add, Const, Div, Expr, Inverse, Mul, Neg, Ref, Sqrt,
                       Sub, Transpose, flatten_add)
from ..ir.operands import IOType, Operand, View
from ..ir.program import Assign
from ..ir.properties import Properties

# ---------------------------------------------------------------------------
# Canonical operations
# ---------------------------------------------------------------------------


@dataclass
class ScalarCoeff:
    """A product of scalar factors ``sign * prod(factor or 1/factor)``.

    Factors are either floats or 1x1 views.  ``is_one`` lets the emitters
    skip the multiplication entirely for the common ``alpha = 1`` case.
    """

    sign: int = 1
    factors: List[Tuple[Union[View, float], bool]] = field(default_factory=list)

    def scaled_by(self, factor: Union[View, float],
                  reciprocal: bool = False) -> "ScalarCoeff":
        new = ScalarCoeff(self.sign, list(self.factors))
        new.factors.append((factor, reciprocal))
        return new

    def negated(self) -> "ScalarCoeff":
        return ScalarCoeff(-self.sign, list(self.factors))

    @property
    def is_one(self) -> bool:
        return self.sign == 1 and not self.factors

    @property
    def is_minus_one(self) -> bool:
        return self.sign == -1 and not self.factors

    @property
    def is_trivial(self) -> bool:
        return not self.factors

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = [] if self.sign == 1 else ["-1"]
        for factor, recip in self.factors:
            text = repr(factor) if isinstance(factor, View) else f"{factor:g}"
            parts.append(f"1/({text})" if recip else text)
        return " * ".join(parts) if parts else "1"


@dataclass
class MatMulOp:
    """``dest (accumulate)= alpha * op(A) * op(B)``."""

    dest: View
    accumulate: int              # 0: assign, +1: add into dest, -1: subtract
    a: View
    trans_a: bool
    b: View
    trans_b: bool
    alpha: ScalarCoeff = field(default_factory=ScalarCoeff)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        op = {0: "=", 1: "+=", -1: "-="}[self.accumulate]
        ta = "^T" if self.trans_a else ""
        tb = "^T" if self.trans_b else ""
        return (f"{self.dest!r} {op} {self.alpha!r} * {self.a!r}{ta} "
                f"* {self.b!r}{tb}")


@dataclass
class ScaleCopyOp:
    """``dest (accumulate)= alpha * op(src)`` (element-wise)."""

    dest: View
    accumulate: int
    src: View
    trans: bool
    alpha: ScalarCoeff = field(default_factory=ScalarCoeff)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        op = {0: "=", 1: "+=", -1: "-="}[self.accumulate]
        t = "^T" if self.trans else ""
        return f"{self.dest!r} {op} {self.alpha!r} * {self.src!r}{t}"


@dataclass
class ScalarAssignOp:
    """Assignment of an arbitrary scalar expression to a 1x1 view."""

    dest: View
    expr: Expr

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.dest!r} = {self.expr!r}"


CanonicalOp = Union[MatMulOp, ScaleCopyOp, ScalarAssignOp]


# ---------------------------------------------------------------------------
# Temporary operand allocation
# ---------------------------------------------------------------------------


class TempAllocator:
    """Allocates temporary operands introduced by the normalization."""

    def __init__(self, prefix: str = "lg_tmp"):
        self.prefix = prefix
        self.counter = itertools.count()
        self.operands: List[Operand] = []

    def fresh(self, rows: int, cols: int) -> Operand:
        operand = Operand(f"{self.prefix}{next(self.counter)}", rows, cols,
                          IOType.OUT, Properties())
        self.operands.append(operand)
        return operand


# ---------------------------------------------------------------------------
# Transpose push-down
# ---------------------------------------------------------------------------


def push_down_transposes(expr: Expr) -> Expr:
    """Rewrite the expression so transposes only wrap leaf references.

    Uses ``(A*B)^T = B^T A^T``, ``(A+B)^T = A^T + B^T``, ``(A^T)^T = A`` and
    leaves scalar subexpressions untouched.
    """
    if isinstance(expr, Transpose):
        child = push_down_transposes(expr.child)
        if isinstance(child, Transpose):
            return child.child
        if isinstance(child, Mul):
            return Mul(push_down_transposes(Transpose(child.right)),
                       push_down_transposes(Transpose(child.left)))
        if isinstance(child, Add):
            return Add(push_down_transposes(Transpose(child.left)),
                       push_down_transposes(Transpose(child.right)))
        if isinstance(child, Sub):
            return Sub(push_down_transposes(Transpose(child.left)),
                       push_down_transposes(Transpose(child.right)))
        if isinstance(child, Neg):
            return Neg(push_down_transposes(Transpose(child.child)))
        if isinstance(child, Div):
            # (A / s)^T = A^T / s -- the divisor is scalar by typing.
            # Without this rule a transposed quotient survives push-down
            # unchanged and used to send _materialize into infinite
            # recursion (a fuzzer-found crash).
            return Div(push_down_transposes(Transpose(child.left)),
                       push_down_transposes(child.right))
        if child.is_scalar:
            return child
        return Transpose(child)
    if isinstance(expr, Mul):
        return Mul(push_down_transposes(expr.left),
                   push_down_transposes(expr.right))
    if isinstance(expr, Add):
        return Add(push_down_transposes(expr.left),
                   push_down_transposes(expr.right))
    if isinstance(expr, Sub):
        return Sub(push_down_transposes(expr.left),
                   push_down_transposes(expr.right))
    if isinstance(expr, Neg):
        return Neg(push_down_transposes(expr.child))
    if isinstance(expr, Div):
        return Div(push_down_transposes(expr.left),
                   push_down_transposes(expr.right))
    if isinstance(expr, Sqrt):
        return Sqrt(push_down_transposes(expr.child))
    return expr


# ---------------------------------------------------------------------------
# Matrix chain ordering
# ---------------------------------------------------------------------------


def chain_order(dims: Sequence[int]) -> List[Tuple[int, int]]:
    """Optimal association order for a matrix chain with dimensions ``dims``.

    ``dims`` has length ``n+1`` for ``n`` factors.  Returns the list of merge
    steps as pairs of factor-list indices, in the order the products should
    be formed (classic O(n^3) dynamic program).
    """
    n = len(dims) - 1
    if n <= 1:
        return []
    cost = [[0.0] * n for _ in range(n)]
    split = [[0] * n for _ in range(n)]
    for length in range(2, n + 1):
        for i in range(0, n - length + 1):
            j = i + length - 1
            cost[i][j] = float("inf")
            for k in range(i, j):
                candidate = (cost[i][k] + cost[k + 1][j]
                             + dims[i] * dims[k + 1] * dims[j + 1])
                if candidate < cost[i][j]:
                    cost[i][j] = candidate
                    split[i][j] = k

    steps: List[Tuple[int, int]] = []

    def emit(i: int, j: int) -> None:
        if i == j:
            return
        k = split[i][j]
        emit(i, k)
        emit(k + 1, j)
        steps.append((i, j))

    emit(0, n - 1)
    return steps


# ---------------------------------------------------------------------------
# Term extraction
# ---------------------------------------------------------------------------


@dataclass
class _Term:
    """One additive term: a (possibly empty) product of matrix factors and a
    scalar coefficient."""

    coeff: ScalarCoeff
    factors: List[Tuple[View, bool]]   # (view, transposed)

    @property
    def is_pure_view(self) -> bool:
        return (self.coeff.is_one and len(self.factors) == 1
                and not self.factors[0][1])


class Normalizer:
    """Decomposes Assign statements into canonical operations."""

    def __init__(self, temp_allocator: Optional[TempAllocator] = None):
        self.temps = temp_allocator or TempAllocator()

    # -- public API -----------------------------------------------------------

    def normalize(self, statement: Assign) -> List[CanonicalOp]:
        """Normalize one sBLAC statement into canonical operations."""
        if statement.is_hlac():
            raise LoweringError(
                f"cannot normalize HLAC statement {statement!r}; run Stage 1 "
                f"first")
        if statement.lhs.is_scalar:
            ops: List[CanonicalOp] = []
            expr = self._prepare_scalar_expr(
                push_down_transposes(statement.rhs), ops)
            ops.append(ScalarAssignOp(statement.lhs, expr))
            return ops

        ops = []
        rhs = push_down_transposes(statement.rhs)
        terms = [self._extract_term(sign, term, ops)
                 for sign, term in flatten_add(rhs)]
        self._emit_terms(statement.lhs, terms, ops)
        return ops

    # -- term handling ---------------------------------------------------------

    def _mul_factors(self, expr: Expr) -> List[Expr]:
        """Flatten nested Mul, keeping scalar-valued subproducts atomic.

        A scalar-shaped product like ``x^T * y`` inside a larger product is
        a *coefficient* of the surrounding matrix chain, not two more chain
        factors: flattening through it would thread a bogus 1x1 "matrix"
        into the chain-order dims and emit inconsistent matmuls (a
        fuzzer-found crash on ``C = (x' * y) * A``).
        """
        factors: List[Expr] = []

        def visit(node: Expr) -> None:
            if isinstance(node, Mul) and not node.is_scalar:
                visit(node.left)
                visit(node.right)
            else:
                factors.append(node)

        visit(expr)
        return factors

    def _extract_term(self, sign: int, expr: Expr,
                      ops: List[CanonicalOp]) -> _Term:
        coeff = ScalarCoeff(sign)
        factors: List[Tuple[View, bool]] = []
        for factor in self._mul_factors(expr):
            coeff, factors = self._add_factor(factor, coeff, factors, ops)
        return _Term(coeff, factors)

    def _add_factor(self, factor: Expr, coeff: ScalarCoeff,
                    factors: List[Tuple[View, bool]],
                    ops: List[CanonicalOp]) -> Tuple[ScalarCoeff, list]:
        if isinstance(factor, Neg):
            coeff, factors = self._add_factor(factor.child, coeff, factors, ops)
            return coeff.negated(), factors
        if isinstance(factor, Const):
            return coeff.scaled_by(float(factor.value)), factors
        if isinstance(factor, Div):
            # scalar division: x / s  ->  coefficient 1/s (rule R1 territory)
            if not factor.right.is_scalar:
                raise LoweringError(f"non-scalar divisor in {factor!r}")
            coeff, factors = self._add_factor(factor.left, coeff, factors, ops)
            divisor = self._scalar_view(factor.right, ops)
            return coeff.scaled_by(divisor, reciprocal=True), factors
        if factor.is_scalar:
            view = self._scalar_view(factor, ops)
            return coeff.scaled_by(view), factors
        if isinstance(factor, Ref):
            factors = factors + [(factor.view, False)]
            return coeff, factors
        if isinstance(factor, Transpose):
            if isinstance(factor.child, Ref):
                factors = factors + [(factor.child.view, True)]
                return coeff, factors
            # A transposed compound: materialize the (strictly smaller)
            # untransposed child and transpose the reference, so the
            # recursion always terminates.
            view = self._materialize(factor.child, ops)
            factors = factors + [(view, True)]
            return coeff, factors
        if isinstance(factor, Inverse):
            raise LoweringError(
                "matrix inverses must be eliminated by Stage 1 before "
                "lowering")
        # Anything else (nested sums inside a product, transposed products not
        # reducible to leaves, ...) is materialized into a temporary.
        view = self._materialize(factor, ops)
        factors = factors + [(view, False)]
        return coeff, factors

    def _scalar_view(self, expr: Expr, ops: List[CanonicalOp]) -> Union[View, float]:
        """Return a 1x1 view (or a constant) holding the value of a scalar expr."""
        if isinstance(expr, Const):
            return float(expr.value)
        if isinstance(expr, Ref) and expr.view.is_scalar:
            return expr.view
        temp = self.temps.fresh(1, 1)
        dest = temp.full_view()
        ops.append(ScalarAssignOp(dest, self._prepare_scalar_expr(expr, ops)))
        return dest

    def _prepare_scalar_expr(self, expr: Expr,
                             ops: List[CanonicalOp]) -> Expr:
        """Rewrite a scalar expression so every inner product has leaf
        vector operands.

        The lowering inlines scalar-valued products as dot-product loops
        over *references*; a compound operand (``x^T * A`` in the quadratic
        form ``x^T * A * x``, or ``(x + y)^T`` in ``(x + y)^T * z``) is
        first evaluated into a temporary here (a fuzzer-found crash).
        Expects (and preserves) transposes already pushed down to leaves.
        """
        if isinstance(expr, Mul):
            if expr.left.is_scalar and expr.right.is_scalar:
                return Mul(self._prepare_scalar_expr(expr.left, ops),
                           self._prepare_scalar_expr(expr.right, ops))
            return Mul(self._vector_operand(expr.left, ops),
                       self._vector_operand(expr.right, ops))
        if isinstance(expr, Add):
            return Add(self._prepare_scalar_expr(expr.left, ops),
                       self._prepare_scalar_expr(expr.right, ops))
        if isinstance(expr, Sub):
            return Sub(self._prepare_scalar_expr(expr.left, ops),
                       self._prepare_scalar_expr(expr.right, ops))
        if isinstance(expr, Div):
            return Div(self._prepare_scalar_expr(expr.left, ops),
                       self._prepare_scalar_expr(expr.right, ops))
        if isinstance(expr, Neg):
            return Neg(self._prepare_scalar_expr(expr.child, ops))
        if isinstance(expr, Sqrt):
            return Sqrt(self._prepare_scalar_expr(expr.child, ops))
        if isinstance(expr, Transpose):
            return Transpose(self._prepare_scalar_expr(expr.child, ops))
        return expr

    def _vector_operand(self, expr: Expr, ops: List[CanonicalOp]) -> Expr:
        """An inner-product operand as a (possibly transposed) leaf
        reference, materializing compound expressions into temporaries."""
        if isinstance(expr, Ref):
            return expr
        if isinstance(expr, Transpose) and isinstance(expr.child, Ref):
            return expr
        return Ref(self._materialize(expr, ops))

    def _materialize(self, expr: Expr, ops: List[CanonicalOp]) -> View:
        """Evaluate a non-trivial subexpression into a fresh temporary."""
        temp = self.temps.fresh(expr.rows, expr.cols)
        dest = temp.full_view()
        terms = [self._extract_term(sign, term, ops)
                 for sign, term in flatten_add(push_down_transposes(expr))]
        self._emit_terms(dest, terms, ops)
        return dest

    # -- emission ---------------------------------------------------------------

    def _emit_terms(self, lhs: View, terms: List[_Term],
                    ops: List[CanonicalOp]) -> None:
        lhs_group = (lhs.operand.name, lhs.operand.overwrites)

        def references_lhs(term: _Term) -> bool:
            for view, _ in term.factors:
                if view.operand is lhs.operand or \
                        view.operand.overwrites == lhs.operand.name or \
                        lhs.operand.overwrites == view.operand.name:
                    if view.overlaps(lhs) or view.operand is not lhs.operand:
                        return True
            for factor, _ in term.coeff.factors:
                if isinstance(factor, View) and factor.operand is lhs.operand:
                    return True
            return False

        # In-place accumulation: "lhs = lhs +/- rest" keeps lhs as the
        # accumulator; otherwise, if lhs is read anywhere in the rhs, the
        # result is computed in a temporary first.
        identity_index = None
        for index, term in enumerate(terms):
            if (term.is_pure_view and term.factors[0][0] == lhs):
                identity_index = index
                break

        other_terms = [t for i, t in enumerate(terms) if i != identity_index]
        needs_temp = identity_index is None and any(
            references_lhs(t) for t in terms)
        if identity_index is not None and any(references_lhs(t)
                                              for t in other_terms):
            needs_temp = True
            other_terms = terms
            identity_index = None

        target = lhs
        if needs_temp:
            temp = self.temps.fresh(lhs.rows, lhs.cols)
            target = temp.full_view()
            identity_index = None
            other_terms = terms

        first = identity_index is None
        for term in other_terms:
            self._emit_single_term(target, term, assign=first, ops=ops)
            first = False
        if identity_index is not None and not other_terms:
            # statement was literally "lhs = lhs": emit a copy to keep
            # semantics (a no-op after simplification).
            ops.append(ScaleCopyOp(target, 0, lhs, False, ScalarCoeff()))

        if needs_temp:
            ops.append(ScaleCopyOp(lhs, 0, target, False, ScalarCoeff()))

    def _emit_single_term(self, dest: View, term: _Term, assign: bool,
                          ops: List[CanonicalOp]) -> None:
        accumulate = 0 if assign else (1 if term.coeff.sign > 0 else -1)
        coeff = term.coeff if assign else ScalarCoeff(1, list(term.coeff.factors))

        if not term.factors:
            raise LoweringError(
                f"additive term with no matrix factor writing {dest!r}; "
                f"shapes should have prevented this")

        if len(term.factors) == 1:
            view, trans = term.factors[0]
            ops.append(ScaleCopyOp(dest, accumulate, view, trans, coeff))
            return

        # Reduce a product chain of two or more factors.
        factors = list(term.factors)
        if len(factors) > 2:
            dims = [factors[0][0].cols if factors[0][1] else factors[0][0].rows]
            for view, trans in factors:
                dims.append(view.rows if trans else view.cols)
            steps = chain_order(dims)
        else:
            steps = [(0, 1)]

        # Apply merge steps; each merge of more than the final pair goes into
        # a temporary.
        entries: List[Optional[Tuple[View, bool]]] = list(factors)
        final_pair: Optional[Tuple[Tuple[View, bool], Tuple[View, bool]]] = None
        for step_index, (i, j) in enumerate(steps):
            left_idx = next(k for k in range(i, j + 1) if entries[k] is not None)
            right_idx = next(k for k in range(j, i - 1, -1)
                             if entries[k] is not None and k != left_idx)
            left = entries[left_idx]
            right = entries[right_idx]
            assert left is not None and right is not None
            is_last = step_index == len(steps) - 1
            if is_last:
                final_pair = (left, right)
                break
            rows = left[0].cols if left[1] else left[0].rows
            cols = right[0].rows if right[1] else right[0].cols
            temp = self.temps.fresh(rows, cols)
            ops.append(MatMulOp(temp.full_view(), 0, left[0], left[1],
                                right[0], right[1], ScalarCoeff()))
            entries[left_idx] = (temp.full_view(), False)
            entries[right_idx] = None

        assert final_pair is not None
        (a, trans_a), (b, trans_b) = final_pair
        ops.append(MatMulOp(dest, accumulate, a, trans_a, b, trans_b, coeff))
