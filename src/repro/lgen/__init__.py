"""LGen-style sBLAC compiler: normalization, nu-BLACs, tiling, lowering."""

from .compiler import CompileStats, lower_program, lower_program_with_stats
from .lowering import Lowerer, LoweringOptions
from .normalize import (CanonicalOp, MatMulOp, Normalizer, ScalarAssignOp,
                        ScalarCoeff, ScaleCopyOp, TempAllocator,
                        push_down_transposes)
from .nu_blacs import NU_BLACS, NuBlac, find_nu_blac
from .tiling import CodegenVariant, candidate_variants, dedupe_resolved

__all__ = [
    "CompileStats", "lower_program", "lower_program_with_stats",
    "Lowerer", "LoweringOptions",
    "CanonicalOp", "MatMulOp", "Normalizer", "ScalarAssignOp", "ScalarCoeff",
    "ScaleCopyOp", "TempAllocator", "push_down_transposes",
    "NU_BLACS", "NuBlac", "find_nu_blac",
    "CodegenVariant", "candidate_variants", "dedupe_resolved",
]
