"""The LGen-style compiler: basic LA programs -> C-IR functions.

This is the Stage-2 driver: it takes a *basic* linear algebra program (only
sBLACs and scalar auxiliary computations -- Stage 1 must already have
expanded every HLAC), normalizes each statement into canonical operations
and lowers them to C-IR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..cir.builder import CIRBuilder
from ..cir.nodes import Comment, CStmt, Function
from ..errors import LoweringError
from ..ir.program import Assign, Program
from .lowering import Lowerer, LoweringOptions
from .normalize import Normalizer, TempAllocator


@dataclass
class CompileStats:
    """Bookkeeping about one lowering run (used by tests and reports)."""

    statements: int = 0
    canonical_ops: int = 0
    temporaries: int = 0
    matmuls: int = 0
    copies: int = 0
    scalar_ops: int = 0


def lower_program(program: Program,
                  options: Optional[LoweringOptions] = None,
                  function_name: Optional[str] = None,
                  annotate: bool = True) -> Function:
    """Lower a basic LA program to a C-IR function.

    Raises :class:`~repro.errors.LoweringError` if the program still
    contains HLAC statements.
    """
    function, _ = lower_program_with_stats(program, options, function_name,
                                           annotate)
    return function


def lower_program_with_stats(program: Program,
                             options: Optional[LoweringOptions] = None,
                             function_name: Optional[str] = None,
                             annotate: bool = True):
    """Like :func:`lower_program` but also returns :class:`CompileStats`."""
    from .normalize import MatMulOp, ScalarAssignOp, ScaleCopyOp

    options = options or LoweringOptions()
    if not program.is_basic():
        raise LoweringError(
            f"program {program.name!r} still contains HLAC statements; "
            f"run Stage 1 first")

    builder = CIRBuilder(program, function_name,
                         vector_width=options.vector_width)
    normalizer = Normalizer(TempAllocator())
    lowerer = Lowerer(builder, options)
    stats = CompileStats()

    body: List[CStmt] = []
    for statement in program.unrolled_statements():
        if not isinstance(statement, Assign):
            raise LoweringError(
                f"unsupported statement kind {type(statement).__name__} in "
                f"basic program")
        stats.statements += 1
        if annotate:
            body.append(Comment(repr(statement)))
        for op in normalizer.normalize(statement):
            stats.canonical_ops += 1
            if isinstance(op, MatMulOp):
                stats.matmuls += 1
            elif isinstance(op, ScaleCopyOp):
                stats.copies += 1
            elif isinstance(op, ScalarAssignOp):
                stats.scalar_ops += 1
            lowerer.lower(op, body)
    stats.temporaries = len(normalizer.temps.operands)

    function = builder.finish(body)
    return function, stats
