"""Reference numpy/scipy kernels and cost formulas."""

from .reference import (cost_gpr, cost_kf, cost_l1a, cost_potrf, cost_trlya,
                        cost_trsm, cost_trsyl, cost_trtri,
                        gaussian_process_regression, kalman_filter_step,
                        l1_analysis_step, potrf_lower, potrf_upper,
                        random_lower_triangular, random_spd,
                        random_upper_triangular, trlya, trsm, trsyl, trtri)

__all__ = [
    "cost_gpr", "cost_kf", "cost_l1a", "cost_potrf", "cost_trlya",
    "cost_trsm", "cost_trsyl", "cost_trtri",
    "gaussian_process_regression", "kalman_filter_step", "l1_analysis_step",
    "potrf_lower", "potrf_upper", "random_lower_triangular", "random_spd",
    "random_upper_triangular", "trlya", "trsm", "trsyl", "trtri",
]
