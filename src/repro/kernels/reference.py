"""Reference (numpy/scipy) implementations of every computation we generate.

These are the ground truth against which generated kernels and baselines are
validated, and they double as the "algorithm specification" for the flop
counts used in the performance plots (paper's cost formulas, Figs. 14/15).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np
import scipy.linalg


# ---------------------------------------------------------------------------
# HLAC kernels (Table 3 of the paper)
# ---------------------------------------------------------------------------


def potrf_upper(matrix: np.ndarray) -> np.ndarray:
    """Upper Cholesky factor U with U^T U = A (A symmetric positive definite)."""
    return np.linalg.cholesky(matrix).T


def potrf_lower(matrix: np.ndarray) -> np.ndarray:
    """Lower Cholesky factor L with L L^T = A."""
    return np.linalg.cholesky(matrix)


def trsm(coefficient: np.ndarray, rhs: np.ndarray, lower: bool,
         transposed: bool = False) -> np.ndarray:
    """Solve ``op(T) X = B`` for X with T triangular."""
    return scipy.linalg.solve_triangular(coefficient, rhs, lower=lower,
                                         trans="T" if transposed else "N")


def trtri(coefficient: np.ndarray, lower: bool = True) -> np.ndarray:
    """Inverse of a triangular matrix (same triangle as the input)."""
    identity = np.eye(coefficient.shape[0])
    return scipy.linalg.solve_triangular(coefficient, identity, lower=lower)


def trsyl(lower_coeff: np.ndarray, upper_coeff: np.ndarray,
          rhs: np.ndarray) -> np.ndarray:
    """Solve the triangular Sylvester equation ``L X + X U = C``."""
    return scipy.linalg.solve_sylvester(lower_coeff, upper_coeff, rhs)


def trlya(lower_coeff: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve the triangular continuous-time Lyapunov equation
    ``L X + X L^T = S`` (X symmetric when S is)."""
    return scipy.linalg.solve_sylvester(lower_coeff, lower_coeff.T, rhs)


# ---------------------------------------------------------------------------
# Well-conditioned random inputs
# ---------------------------------------------------------------------------


def random_spd(n: int, rng: np.random.Generator) -> np.ndarray:
    """A well-conditioned symmetric positive definite matrix."""
    factor = rng.standard_normal((n, n)) / np.sqrt(n)
    return factor @ factor.T + np.eye(n) * (1.0 + 0.1 * n / max(n, 1))


def random_lower_triangular(n: int, rng: np.random.Generator) -> np.ndarray:
    """A well-conditioned lower-triangular matrix (positive diagonal)."""
    matrix = np.tril(rng.standard_normal((n, n)) / np.sqrt(n))
    np.fill_diagonal(matrix, 1.0 + np.abs(rng.standard_normal(n)))
    return matrix


def random_upper_triangular(n: int, rng: np.random.Generator) -> np.ndarray:
    return random_lower_triangular(n, rng).T


# ---------------------------------------------------------------------------
# Applications (paper Fig. 13)
# ---------------------------------------------------------------------------


def kalman_filter_step(inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """One Kalman-filter iteration in the form of the paper's LA program
    (Fig. 13a): prediction followed by update, inversion via Cholesky."""
    F, B, Q, H, R = (inputs[k] for k in ("F", "B", "Q", "H", "R"))
    P, u, x, z = (inputs[k] for k in ("P", "u", "x", "z"))

    y = F @ x + B @ u
    Y = F @ P @ F.T + Q
    v0 = z - H @ y
    M1 = H @ Y
    M2 = Y @ H.T
    M3 = M1 @ H.T + R
    U = potrf_upper(M3)
    v1 = scipy.linalg.solve_triangular(U, v0, lower=False, trans="T")
    v2 = scipy.linalg.solve_triangular(U, v1, lower=False)
    M4 = scipy.linalg.solve_triangular(U, M1, lower=False, trans="T")
    M5 = scipy.linalg.solve_triangular(U, M4, lower=False)
    x_new = y + M2 @ v2
    P_new = Y - M2 @ M5
    return {"x": x_new, "P": P_new, "y": y, "Y": Y, "U": U}


def gaussian_process_regression(inputs: Dict[str, np.ndarray]
                                ) -> Dict[str, float]:
    """Gaussian-process regression for one noise-free test point
    (paper Fig. 13b): predictive mean phi, variance psi, log-likelihood term
    lambda."""
    K, X, x, y = (inputs[k] for k in ("K", "X", "x", "y"))
    L = potrf_lower(K)
    t0 = scipy.linalg.solve_triangular(L, y, lower=True)
    t1 = scipy.linalg.solve_triangular(L.T, t0, lower=False)
    k_star = X @ x
    phi = float((k_star.T @ t1).item())
    v = scipy.linalg.solve_triangular(L, k_star, lower=True)
    psi = float((x.T @ x - v.T @ v).item())
    lam = float((y.T @ t1).item())
    return {"phi": phi, "psi": psi, "lambda": lam}


def l1_analysis_step(inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """One iteration of the L1-analysis convex solver (paper Fig. 13c)."""
    W, A, x0, y = (inputs[k] for k in ("W", "A", "x0", "y"))
    v1, z1, v2, z2 = (inputs[k] for k in ("v1", "z1", "v2", "z2"))
    alpha, beta, tau = (float(np.asarray(inputs[k]).reshape(-1)[0])
                        for k in ("alpha", "beta", "tau"))

    y1 = alpha * v1 + tau * z1
    y2 = alpha * v2 + tau * z2
    x1 = W.T @ y1 - A.T @ y2
    x = x0 + beta * x1
    z1_new = y1 - W @ x
    z2_new = y2 - (y - A @ x)
    v1_new = alpha * v1 + tau * z1_new
    v2_new = alpha * v2 + tau * z2_new
    return {"v1": v1_new, "z1": z1_new, "v2": v2_new, "z2": z2_new}


# ---------------------------------------------------------------------------
# Cost formulas (flop counts used on the y-axes of the paper's plots)
# ---------------------------------------------------------------------------


def cost_potrf(n: int) -> float:
    return n ** 3 / 3.0


def cost_gemm(n: int) -> float:
    return 2.0 * n ** 3


def cost_trsm(n: int, nrhs: int) -> float:
    return n * n * nrhs


def cost_trtri(n: int) -> float:
    return n ** 3 / 3.0


def cost_trsyl(n: int) -> float:
    return 2.0 * n ** 3


def cost_trlya(n: int) -> float:
    return float(n ** 3)


def cost_kf(n: int, k: int) -> float:
    """Kalman filter cost; for k == n this is about 11.3 n^3 (paper Fig. 15a)."""
    gemm = 2.0 * n * n * n            # F*P, (F*P)*F^T  etc. dominate
    cost = 0.0
    cost += 2 * n * n                  # F*x, B*u
    cost += 2 * gemm                   # Y = F*P*F^T
    cost += 2 * k * n                  # H*y
    cost += 2 * k * n * n              # M1 = H*Y
    cost += 2 * n * n * k              # M2 = Y*H^T
    cost += 2 * k * k * n              # M3 = M1*H^T
    cost += cost_potrf(k)              # Cholesky of M3
    cost += 2 * k * k                  # two triangular vector solves
    cost += 2 * k * k * n              # two triangular matrix solves
    cost += 2 * n * k                  # x update
    cost += 2 * n * n * k              # P update
    return cost


def cost_gpr(n: int) -> float:
    return cost_potrf(n) + 3 * n * n + 2 * n * n + 6 * n


def cost_l1a(n: int) -> float:
    return 8.0 * n * n


__all__ = [name for name in dir() if not name.startswith("_")]
