"""Shared command-line conventions for every ``python -m repro.*`` tool.

All eight entry points (service, tuning, cegis, backend, fuzz, perf,
pipeline, analysis -- plus the docs maintenance commands) follow one
contract,
implemented here so it cannot drift per subsystem:

**Exit codes.**

* :data:`EXIT_OK` (0) -- the command ran and whatever it checks holds
  (kernels agree, no regression, records present, docs current).
* :data:`EXIT_FAILURE` (1) -- the command ran but its check failed:
  a backend divergence, a timing regression, a missing tuning record,
  a stale generated file, an aborted confirmation prompt.  Scripts and
  CI branch on this.
* :data:`EXIT_USAGE` (2) -- the request itself was invalid and nothing
  was checked: argparse rejected the arguments, or the tool raised a
  :class:`~repro.errors.ReproError` (unknown workload spec, unknown
  backend, unparsable input).  Emitted via :func:`fail` so the message
  shape (``error: ...`` on stderr) is uniform.

**JSON output.**  Every subcommand accepts ``--json``.  Report-style
commands take it as a bare flag (:func:`add_json_flag`; the document
goes to stdout and replaces the human-readable table).  Long-running
run-style commands (``fuzz run``, ``perf run``) instead take
``--json FILE`` -- they stream human progress while running and write
the machine-readable summary to FILE (``-`` for stdout) at the end.
Documents are rendered by :func:`print_json` (two-space indent, sorted
keys, trailing newline) so diffs and golden files are stable.

**Store override names.**  The persistent-state override is spelled the
same way everywhere: ``--store`` for the kernel store (service),
``--db`` for record databases (tuning; cegis, where the historical
``--bank`` remains an alias), ``--trajectory`` for the perf history
file, and ``$REPRO_PHASE_CACHE``/``--phase-cache`` for the pipeline's
artifact cache.  Each tool also honors its ``REPRO_*`` environment
variable; the flag wins.
"""

from __future__ import annotations

import argparse
import json
import sys

#: The command ran and its check holds.
EXIT_OK = 0
#: The command ran but its check failed (regression, divergence, ...).
EXIT_FAILURE = 1
#: The request was invalid (argparse errors and :class:`ReproError`).
EXIT_USAGE = 2


def add_json_flag(parser: argparse.ArgumentParser,
                  help: str = "emit a machine-readable JSON document "
                              "instead of the human-readable output"
                  ) -> None:
    """The canonical bare ``--json`` flag (dest ``as_json``)."""
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help=help)


def print_json(doc: object) -> None:
    """Render one machine-readable document the canonical way."""
    print(json.dumps(doc, indent=2, sort_keys=True))


def fail(exc: BaseException) -> int:
    """Report an invalid request uniformly and return :data:`EXIT_USAGE`."""
    print(f"error: {exc}", file=sys.stderr)
    return EXIT_USAGE


def confirm(prompt: str, assume_yes: bool = False) -> bool:
    """The shared destructive-action gate (``purge --yes`` semantics).

    Returns True when the action may proceed.  Callers print
    ``aborted`` and return :data:`EXIT_FAILURE` on refusal.
    """
    if assume_yes:
        return True
    reply = input(f"{prompt} [y/N] ")
    return reply.strip().lower() in ("y", "yes")
