"""JSON codec for analysis fixtures: LA programs and C-IR functions.

The witness fixtures under ``tests/analysis_witnesses/`` are committed
JSON documents the CLI can sweep (``python -m repro.analysis check
tests/analysis_witnesses/*.json``) without importing test code.  The
codec is intentionally plain -- one dict per node, dispatch on a
``"kind"``/node-type tag -- and round-trips exactly the constructs the
two artifact levels use.  It is also handy for dumping a failing
artifact out of the gate for offline inspection.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Union

from ..cir import nodes as cir
from ..errors import AnalysisError
from ..ir import expr as la_expr
from ..ir.operands import IOType, Operand, View
from ..ir.program import Assign, Equation, ForLoop, Program, Statement
from ..ir.properties import Properties

FIXTURE_SCHEMA_VERSION = 1

Doc = Dict[str, Any]


# ---------------------------------------------------------------------------
# LA / Stage-1 programs
# ---------------------------------------------------------------------------


def _operand_doc(op: Operand) -> Doc:
    return {
        "name": op.name,
        "rows": op.rows,
        "cols": op.cols,
        "io": op.io.name,
        "properties": sorted(op.properties.annotation_names()),
        "overwrites": op.overwrites,
    }


def _operand_from(doc: Doc) -> Operand:
    return Operand(name=doc["name"], rows=int(doc["rows"]),
                   cols=int(doc["cols"]), io=IOType[doc["io"]],
                   properties=Properties.from_annotations(
                       doc.get("properties", [])),
                   overwrites=doc.get("overwrites"))


def _view_doc(view: View) -> Doc:
    return {"operand": view.operand.name, "row_off": view.row_off,
            "col_off": view.col_off, "rows": view.rows, "cols": view.cols}


def _view_from(doc: Doc, operands: Dict[str, Operand]) -> View:
    try:
        operand = operands[doc["operand"]]
    except KeyError:
        raise AnalysisError(f"fixture references undeclared operand "
                            f"{doc['operand']!r}")
    return View(operand=operand, row_off=int(doc["row_off"]),
                col_off=int(doc["col_off"]), rows=int(doc["rows"]),
                cols=int(doc["cols"]))


def _expr_doc(expr: la_expr.Expr) -> Doc:
    if isinstance(expr, la_expr.Ref):
        return {"node": "ref", "view": _view_doc(expr.view)}
    if isinstance(expr, la_expr.Const):
        return {"node": "const", "value": expr.value,
                "rows": expr.rows, "cols": expr.cols}
    if isinstance(expr, la_expr._Unary):
        return {"node": type(expr).__name__.lower(),
                "child": _expr_doc(expr.child)}
    if isinstance(expr, la_expr._Binary):
        return {"node": type(expr).__name__.lower(),
                "left": _expr_doc(expr.left),
                "right": _expr_doc(expr.right)}
    raise AnalysisError(f"cannot serialize expression {expr!r}")


_UNARY = {"transpose": la_expr.Transpose, "neg": la_expr.Neg,
          "sqrt": la_expr.Sqrt, "inverse": la_expr.Inverse}
_BINARY = {"add": la_expr.Add, "sub": la_expr.Sub, "mul": la_expr.Mul,
           "div": la_expr.Div}


def _expr_from(doc: Doc, operands: Dict[str, Operand]) -> la_expr.Expr:
    node = doc["node"]
    if node == "ref":
        return la_expr.Ref(_view_from(doc["view"], operands))
    if node == "const":
        return la_expr.Const(float(doc["value"]), int(doc.get("rows", 1)),
                             int(doc.get("cols", 1)))
    if node in _UNARY:
        return _UNARY[node](_expr_from(doc["child"], operands))
    if node in _BINARY:
        return _BINARY[node](_expr_from(doc["left"], operands),
                             _expr_from(doc["right"], operands))
    raise AnalysisError(f"unknown expression node {node!r} in fixture")


def _statement_doc(stmt: Statement) -> Doc:
    if isinstance(stmt, Assign):
        return {"node": "assign", "lhs": _view_doc(stmt.lhs),
                "rhs": _expr_doc(stmt.rhs)}
    if isinstance(stmt, Equation):
        return {"node": "equation", "lhs": _expr_doc(stmt.lhs),
                "rhs": _expr_doc(stmt.rhs)}
    if isinstance(stmt, ForLoop):
        return {"node": "for", "var": stmt.var, "start": stmt.start,
                "stop": stmt.stop, "step": stmt.step,
                "body": [_statement_doc(s) for s in stmt.body]}
    raise AnalysisError(f"cannot serialize statement {stmt!r}")


def _statement_from(doc: Doc, operands: Dict[str, Operand]) -> Statement:
    node = doc["node"]
    if node == "assign":
        return Assign(_view_from(doc["lhs"], operands),
                      _expr_from(doc["rhs"], operands))
    if node == "equation":
        return Equation(_expr_from(doc["lhs"], operands),
                        _expr_from(doc["rhs"], operands))
    if node == "for":
        return ForLoop(var=doc["var"], start=int(doc["start"]),
                       stop=int(doc["stop"]), step=int(doc["step"]),
                       body=[_statement_from(s, operands)
                             for s in doc["body"]])
    raise AnalysisError(f"unknown statement node {node!r} in fixture")


def program_to_doc(program: Program) -> Doc:
    return {
        "schema": FIXTURE_SCHEMA_VERSION,
        "kind": "program",
        "name": program.name,
        "constants": dict(program.constants),
        "operands": [_operand_doc(op) for op in
                     program.operands.values()],
        "statements": [_statement_doc(s) for s in program.statements],
    }


def program_from_doc(doc: Doc) -> Program:
    program = Program(name=doc["name"],
                      constants={k: int(v) for k, v in
                                 doc.get("constants", {}).items()})
    for op_doc in doc["operands"]:
        program.declare(_operand_from(op_doc))
    for stmt_doc in doc["statements"]:
        program.add(_statement_from(stmt_doc, program.operands))
    return program


# ---------------------------------------------------------------------------
# C-IR functions
# ---------------------------------------------------------------------------


def _affine_doc(affine: cir.Affine) -> Doc:
    return {"terms": [[name, coef] for name, coef in affine.terms],
            "const": affine.const}


def _affine_from(doc: Doc) -> cir.Affine:
    return cir.Affine(tuple((str(n), int(c)) for n, c in
                            doc.get("terms", [])), int(doc.get("const", 0)))


def _buffer_doc(buf: cir.Buffer) -> Doc:
    return {"name": buf.name, "rows": buf.rows, "cols": buf.cols,
            "kind": buf.kind}


def _cexpr_doc(expr: cir.CExpr) -> Doc:
    if isinstance(expr, cir.FloatConst):
        return {"node": "float", "value": expr.value}
    if isinstance(expr, cir.ScalarVar):
        return {"node": "svar", "name": expr.name}
    if isinstance(expr, cir.VecVar):
        return {"node": "vvar", "name": expr.name, "width": expr.width}
    if isinstance(expr, cir.Load):
        return {"node": "load", "buffer": expr.buffer.name,
                "index": _affine_doc(expr.index)}
    if isinstance(expr, cir.VLoad):
        return {"node": "vload", "buffer": expr.buffer.name,
                "index": _affine_doc(expr.index), "width": expr.width,
                "mask": list(expr.mask) if expr.mask is not None else None}
    if isinstance(expr, cir.VBroadcast):
        return {"node": "vbroadcast", "value": _cexpr_doc(expr.value),
                "width": expr.width}
    if isinstance(expr, cir.VSet):
        return {"node": "vset",
                "elements": [_cexpr_doc(e) for e in expr.elements]}
    if isinstance(expr, cir.VZero):
        return {"node": "vzero", "width": expr.width}
    if isinstance(expr, cir.BinOp):
        return {"node": "binop", "op": expr.op,
                "left": _cexpr_doc(expr.left),
                "right": _cexpr_doc(expr.right)}
    if isinstance(expr, cir.UnOp):
        return {"node": "unop", "op": expr.op,
                "operand": _cexpr_doc(expr.operand)}
    if isinstance(expr, cir.VBinOp):
        return {"node": "vbinop", "op": expr.op,
                "left": _cexpr_doc(expr.left),
                "right": _cexpr_doc(expr.right), "width": expr.width}
    if isinstance(expr, cir.VFma):
        return {"node": "vfma", "a": _cexpr_doc(expr.a),
                "b": _cexpr_doc(expr.b), "c": _cexpr_doc(expr.c),
                "width": expr.width}
    if isinstance(expr, cir.VReduceAdd):
        return {"node": "vreduce", "vec": _cexpr_doc(expr.vec)}
    if isinstance(expr, cir.VExtract):
        return {"node": "vextract", "vec": _cexpr_doc(expr.vec),
                "lane": expr.lane}
    if isinstance(expr, cir.VBlend):
        return {"node": "vblend", "a": _cexpr_doc(expr.a),
                "b": _cexpr_doc(expr.b), "imm": expr.imm,
                "width": expr.width}
    if isinstance(expr, cir.VShufflePd):
        return {"node": "vshuffle", "a": _cexpr_doc(expr.a),
                "b": _cexpr_doc(expr.b), "imm": expr.imm,
                "width": expr.width}
    if isinstance(expr, cir.VPermute2f128):
        return {"node": "vperm2f128", "a": _cexpr_doc(expr.a),
                "b": _cexpr_doc(expr.b), "imm": expr.imm,
                "width": expr.width}
    if isinstance(expr, cir.VUnpack):
        return {"node": "vunpack", "a": _cexpr_doc(expr.a),
                "b": _cexpr_doc(expr.b), "high": expr.high,
                "width": expr.width}
    raise AnalysisError(f"cannot serialize C-IR expression {expr!r}")


def _cexpr_from(doc: Doc, buffers: Dict[str, cir.Buffer]) -> cir.CExpr:
    node = doc["node"]
    if node == "float":
        return cir.FloatConst(float(doc["value"]))
    if node == "svar":
        return cir.ScalarVar(doc["name"])
    if node == "vvar":
        return cir.VecVar(doc["name"], int(doc.get("width", 4)))
    if node == "load":
        return cir.Load(_buffer(buffers, doc["buffer"]),
                        _affine_from(doc["index"]))
    if node == "vload":
        mask = doc.get("mask")
        return cir.VLoad(_buffer(buffers, doc["buffer"]),
                         _affine_from(doc["index"]),
                         int(doc.get("width", 4)),
                         tuple(bool(b) for b in mask)
                         if mask is not None else None)
    if node == "vbroadcast":
        return cir.VBroadcast(_cexpr_from(doc["value"], buffers),
                              int(doc.get("width", 4)))
    if node == "vset":
        return cir.VSet(tuple(_cexpr_from(e, buffers)
                              for e in doc["elements"]))
    if node == "vzero":
        return cir.VZero(int(doc.get("width", 4)))
    if node == "binop":
        return cir.BinOp(doc["op"], _cexpr_from(doc["left"], buffers),
                         _cexpr_from(doc["right"], buffers))
    if node == "unop":
        return cir.UnOp(doc["op"], _cexpr_from(doc["operand"], buffers))
    if node == "vbinop":
        return cir.VBinOp(doc["op"], _cexpr_from(doc["left"], buffers),
                          _cexpr_from(doc["right"], buffers),
                          int(doc.get("width", 4)))
    if node == "vfma":
        return cir.VFma(_cexpr_from(doc["a"], buffers),
                        _cexpr_from(doc["b"], buffers),
                        _cexpr_from(doc["c"], buffers),
                        int(doc.get("width", 4)))
    if node == "vreduce":
        return cir.VReduceAdd(_cexpr_from(doc["vec"], buffers))
    if node == "vextract":
        return cir.VExtract(_cexpr_from(doc["vec"], buffers),
                            int(doc["lane"]))
    if node == "vblend":
        return cir.VBlend(_cexpr_from(doc["a"], buffers),
                          _cexpr_from(doc["b"], buffers), int(doc["imm"]),
                          int(doc.get("width", 4)))
    if node == "vshuffle":
        return cir.VShufflePd(_cexpr_from(doc["a"], buffers),
                              _cexpr_from(doc["b"], buffers),
                              int(doc["imm"]), int(doc.get("width", 4)))
    if node == "vperm2f128":
        return cir.VPermute2f128(_cexpr_from(doc["a"], buffers),
                                 _cexpr_from(doc["b"], buffers),
                                 int(doc["imm"]), int(doc.get("width", 4)))
    if node == "vunpack":
        return cir.VUnpack(_cexpr_from(doc["a"], buffers),
                           _cexpr_from(doc["b"], buffers),
                           bool(doc["high"]), int(doc.get("width", 4)))
    raise AnalysisError(f"unknown C-IR expression node {node!r} in fixture")


def _buffer(buffers: Dict[str, cir.Buffer], name: str) -> cir.Buffer:
    try:
        return buffers[name]
    except KeyError:
        raise AnalysisError(f"fixture references undeclared buffer {name!r}")


def _cstmt_doc(stmt: cir.CStmt) -> Doc:
    if isinstance(stmt, cir.Assign):
        return {"node": "assign", "dest": _cexpr_doc(stmt.dest),
                "value": _cexpr_doc(stmt.value)}
    if isinstance(stmt, cir.Store):
        return {"node": "store", "buffer": stmt.buffer.name,
                "index": _affine_doc(stmt.index),
                "value": _cexpr_doc(stmt.value)}
    if isinstance(stmt, cir.VStore):
        return {"node": "vstore", "buffer": stmt.buffer.name,
                "index": _affine_doc(stmt.index),
                "value": _cexpr_doc(stmt.value), "width": stmt.width,
                "mask": list(stmt.mask) if stmt.mask is not None else None}
    if isinstance(stmt, cir.For):
        return {"node": "for", "var": stmt.var, "start": stmt.start,
                "stop": stmt.stop, "step": stmt.step,
                "body": [_cstmt_doc(s) for s in stmt.body]}
    if isinstance(stmt, cir.If):
        return {"node": "if", "lhs": _affine_doc(stmt.lhs), "op": stmt.op,
                "rhs": _affine_doc(stmt.rhs),
                "then": [_cstmt_doc(s) for s in stmt.then_body],
                "else": [_cstmt_doc(s) for s in stmt.else_body]}
    if isinstance(stmt, cir.Comment):
        return {"node": "comment", "text": stmt.text}
    raise AnalysisError(f"cannot serialize C-IR statement {stmt!r}")


def _cstmt_from(doc: Doc, buffers: Dict[str, cir.Buffer]) -> cir.CStmt:
    node = doc["node"]
    if node == "assign":
        dest = _cexpr_from(doc["dest"], buffers)
        if not isinstance(dest, (cir.ScalarVar, cir.VecVar)):
            raise AnalysisError("assign destination must be a register")
        return cir.Assign(dest, _cexpr_from(doc["value"], buffers))
    if node == "store":
        return cir.Store(_buffer(buffers, doc["buffer"]),
                         _affine_from(doc["index"]),
                         _cexpr_from(doc["value"], buffers))
    if node == "vstore":
        mask = doc.get("mask")
        return cir.VStore(_buffer(buffers, doc["buffer"]),
                          _affine_from(doc["index"]),
                          _cexpr_from(doc["value"], buffers),
                          int(doc.get("width", 4)),
                          tuple(bool(b) for b in mask)
                          if mask is not None else None)
    if node == "for":
        return cir.For(var=doc["var"], start=int(doc["start"]),
                       stop=int(doc["stop"]), step=int(doc["step"]),
                       body=[_cstmt_from(s, buffers) for s in doc["body"]])
    if node == "if":
        return cir.If(lhs=_affine_from(doc["lhs"]), op=doc["op"],
                      rhs=_affine_from(doc["rhs"]),
                      then_body=[_cstmt_from(s, buffers)
                                 for s in doc.get("then", [])],
                      else_body=[_cstmt_from(s, buffers)
                                 for s in doc.get("else", [])])
    if node == "comment":
        return cir.Comment(doc["text"])
    raise AnalysisError(f"unknown C-IR statement node {node!r} in fixture")


def function_to_doc(fn: cir.Function) -> Doc:
    return {
        "schema": FIXTURE_SCHEMA_VERSION,
        "kind": "function",
        "name": fn.name,
        "vector_width": fn.vector_width,
        "params": [_buffer_doc(b) for b in fn.params],
        "temps": [_buffer_doc(b) for b in fn.temps],
        "body": [_cstmt_doc(s) for s in fn.body],
    }


def function_from_doc(doc: Doc) -> cir.Function:
    buffers: Dict[str, cir.Buffer] = {}
    params: List[cir.Buffer] = []
    temps: List[cir.Buffer] = []
    for buf_doc, target in ([(b, params) for b in doc.get("params", [])] +
                            [(b, temps) for b in doc.get("temps", [])]):
        buf = cir.Buffer(name=buf_doc["name"], rows=int(buf_doc["rows"]),
                         cols=int(buf_doc["cols"]), kind=buf_doc["kind"])
        buffers[buf.name] = buf
        target.append(buf)
    body = [_cstmt_from(s, buffers) for s in doc.get("body", [])]
    return cir.Function(name=doc["name"], params=params, temps=temps,
                        body=body, vector_width=int(doc["vector_width"]))


# ---------------------------------------------------------------------------
# Fixture files
# ---------------------------------------------------------------------------


def artifact_to_doc(artifact: Union[Program, cir.Function]) -> Doc:
    if isinstance(artifact, Program):
        return program_to_doc(artifact)
    if isinstance(artifact, cir.Function):
        return function_to_doc(artifact)
    raise AnalysisError(
        f"cannot serialize artifact of type {type(artifact).__name__}")


def artifact_from_doc(doc: Doc) -> Union[Program, cir.Function]:
    schema = doc.get("schema")
    if schema != FIXTURE_SCHEMA_VERSION:
        raise AnalysisError(f"unsupported fixture schema {schema!r} "
                            f"(expected {FIXTURE_SCHEMA_VERSION})")
    kind = doc.get("kind")
    if kind == "program":
        return program_from_doc(doc)
    if kind == "function":
        return function_from_doc(doc)
    raise AnalysisError(f"unknown fixture kind {kind!r}")


def dump_fixture(artifact: Union[Program, cir.Function], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact_to_doc(artifact), handle, indent=2,
                  sort_keys=True)
        handle.write("\n")


def load_fixture(path: str) -> Union[Program, cir.Function]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as exc:
        raise AnalysisError(f"cannot load fixture {path!r}: {exc}")
    if not isinstance(doc, dict):
        raise AnalysisError(f"fixture {path!r} is not a JSON object")
    try:
        return artifact_from_doc(doc)
    except AnalysisError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise AnalysisError(
            f"fixture {path!r} is malformed: {type(exc).__name__}: {exc}")
