"""Static bounds checking of every buffer access in a C-IR function.

All loop bounds in C-IR are integer constants and every index is an
affine expression of the enclosing induction variables, so in-bounds
facts are decidable.  The pass runs in two steps:

1. **Interval screening.**  Walking the body structurally, each
   induction variable gets its exact value set (the loop's iteration
   range).  The interval of an affine index follows directly; an access
   whose interval stays within ``[0, size)`` is proven safe.  Masked
   vector accesses only need their *enabled* lanes in bounds -- the
   exact semantics of AVX masked loads/stores and of the interpreter's
   ``_check_index``.
2. **Concrete confirmation.**  Interval screening ignores ``If``
   guards, so a candidate violation is confirmed by enumerating the
   relevant induction variables over their true iteration grids
   (complete when the space is small, corner sampling otherwise) and
   evaluating the guard conditions along the path.  A confirmed binding
   becomes an ``error`` carrying the witness values; a candidate that
   can be neither confirmed nor refuted within the enumeration budget
   becomes a ``warn``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cir.nodes import (Affine, Buffer, CStmt, Comment, For, Function, If,
                         Load, Store, VLoad, VStore, walk_expressions)
from .diagnostics import Diagnostic

PASS = "bounds"

#: complete-enumeration budget for confirming a candidate violation
ENUMERATION_LIMIT = 4096

#: iteration values of each in-scope induction variable
Ranges = Dict[str, range]


@dataclass(frozen=True)
class _Guard:
    """One ``If`` condition on the current path."""

    lhs: Affine
    op: str
    rhs: Affine
    taken: bool  # True inside then_body, False inside else_body

    def holds(self, bindings: Dict[str, int]) -> bool:
        lhs = self.lhs.evaluate(bindings)
        rhs = self.rhs.evaluate(bindings)
        result = {"<": lhs < rhs, "<=": lhs <= rhs, "==": lhs == rhs,
                  ">=": lhs >= rhs, ">": lhs > rhs}[self.op]
        return result if self.taken else not result


def interval(index: Affine, ranges: Ranges) -> Tuple[int, int]:
    """Exact (min, max) of an affine expression over the variable grids."""
    lo = hi = index.const
    for name, coef in index.terms:
        span = ranges[name]
        vlo, vhi = span[0], span[-1]
        if coef >= 0:
            lo += coef * vlo
            hi += coef * vhi
        else:
            lo += coef * vhi
            hi += coef * vlo
    return lo, hi


def _mask_lanes(width: int, mask: Optional[Tuple[bool, ...]]) -> List[int]:
    if mask is None:
        return list(range(width))
    return [lane for lane, keep in enumerate(mask) if keep]


def check_bounds(fn: Function) -> List[Diagnostic]:
    """All bounds diagnostics for one function."""
    diags: List[Diagnostic] = []

    def visit(stmts: Sequence[CStmt], ranges: Ranges,
              guards: Tuple[_Guard, ...]) -> None:
        for stmt in stmts:
            if isinstance(stmt, For):
                if stmt.trip_count == 0:
                    continue  # body statically never runs
                inner = dict(ranges)
                inner[stmt.var] = stmt.iterations()
                visit(stmt.body, inner, guards)
            elif isinstance(stmt, If):
                guard = _Guard(stmt.lhs, stmt.op, stmt.rhs, True)
                visit(stmt.then_body, ranges, guards + (guard,))
                guard = _Guard(stmt.lhs, stmt.op, stmt.rhs, False)
                visit(stmt.else_body, ranges, guards + (guard,))
            elif isinstance(stmt, Comment):
                continue
            else:
                location = _location(stmt)
                if isinstance(stmt, Store):
                    _check(diags, stmt.buffer, stmt.index, [0], ranges,
                           guards, location, "store")
                elif isinstance(stmt, VStore):
                    _check(diags, stmt.buffer, stmt.index,
                           _mask_lanes(stmt.width, stmt.mask), ranges,
                           guards, location, "vstore")
                for expr in walk_expressions(stmt):
                    for node in expr.walk():
                        if isinstance(node, Load):
                            _check(diags, node.buffer, node.index, [0],
                                   ranges, guards, location, "load")
                        elif isinstance(node, VLoad):
                            _check(diags, node.buffer, node.index,
                                   _mask_lanes(node.width, node.mask),
                                   ranges, guards, location, "vload")

    visit(fn.body, {}, ())
    return diags


def _check(diags: List[Diagnostic], buffer: Buffer, index: Affine,
           lanes: List[int], ranges: Ranges, guards: Tuple[_Guard, ...],
           location: str, what: str) -> None:
    if not lanes:
        return  # fully masked-off access touches no memory
    unbound = [v for v in index.variables() if v not in ranges]
    if unbound:
        diags.append(Diagnostic(
            PASS, "error",
            f"{what} index {index} of {buffer.name!r} uses unbound "
            f"variable(s) {unbound}", location))
        return
    lo, hi = interval(index, ranges)
    low = lo + min(lanes)
    high = hi + max(lanes)
    if low >= 0 and high < buffer.size:
        return  # proven in bounds on every path
    verdict, witness = _confirm(index, lanes, buffer.size, ranges, guards)
    bounds_text = (f"{what} {buffer.name}[{index}] lanes "
                   f"{min(lanes)}..{max(lanes)} may reach "
                   f"[{low}, {high}] of extent {buffer.size}")
    if verdict == "violation":
        diags.append(Diagnostic(
            PASS, "error",
            f"{bounds_text}; out of bounds at {witness}", location))
    elif verdict == "unknown":
        diags.append(Diagnostic(
            PASS, "warn",
            f"{bounds_text}; could not prove in-bounds (guard too complex "
            "to enumerate)", location))
    # verdict == "safe": every reachable binding honoring the If guards
    # stays in bounds -- the interval screen was just guard-blind.


def _confirm(index: Affine, lanes: List[int], size: int, ranges: Ranges,
             guards: Tuple[_Guard, ...]) -> Tuple[str, str]:
    """Search for a reachable binding that indexes outside ``[0, size)``.

    Returns ``("violation", witness)``, ``("safe", "")`` when complete
    enumeration found no violating binding, or ``("unknown", "")`` when
    the space exceeded the budget and corner sampling was inconclusive.
    """
    relevant = set(index.variables())
    for guard in guards:
        relevant.update(guard.lhs.variables())
        relevant.update(guard.rhs.variables())
    if any(v not in ranges for v in relevant):
        return "unknown", ""
    names = sorted(relevant)

    def violating(bindings: Dict[str, int]) -> Optional[str]:
        if not all(g.holds(bindings) for g in guards):
            return None
        base = index.evaluate(bindings)
        for lane in lanes:
            at = base + lane
            if at < 0 or at >= size:
                text = ", ".join(f"{n}={bindings[n]}" for n in names)
                return f"{{{text or 'constant index'}}} -> index {at}"
        return None

    spans = [ranges[n] for n in names]
    total = 1
    for span in spans:
        total *= len(span)
    if total <= ENUMERATION_LIMIT:
        for values in itertools.product(*spans):
            witness = violating(dict(zip(names, values)))
            if witness is not None:
                return "violation", witness
        return "safe", ""
    # Too many combinations: sample the corners (affine extremes live
    # there); a hit is a definite violation, a miss is inconclusive.
    corners = [(span[0], span[-1]) for span in spans]
    for values in itertools.product(*corners):
        witness = violating(dict(zip(names, values)))
        if witness is not None:
            return "violation", witness
    return "unknown", ""


def _location(stmt: CStmt) -> str:
    text = repr(stmt)
    return text if len(text) <= 96 else text[:93] + "..."
