"""Structure and alias/overlap checks over LA and Stage-1 programs.

These are the *mathematical-level* passes -- they run on the
:class:`~repro.ir.program.Program` artifacts of the ``stage1`` and
``rewrite`` phases, where operand structure (triangular, symmetric,
``ow()`` overlays) is still visible.

* **Degenerate assignments** (error).  An ``Assign`` whose right-hand
  side is *structurally identically zero* -- a product with a
  structurally-zero factor, a negation of one, ... -- while its
  destination lies in the nonzero region of its operand.  The statement
  can only ever store zeros where the algorithm plainly meant a
  computed value.  This is exactly the shape of the historical
  ``inv(T')`` miscompile: the transposed-triangular expansion read its
  coefficient at the *untransposed* offset, below the diagonal of the
  upper-triangular input, collapsing the whole product to zero.

* **Structural division by zero** (error).  A ``Div`` whose denominator
  is structurally zero divides by a value that is zero on every input.

* **Structurally-zero writes** (error).  Writing into the zero half of
  a triangular output corrupts the storage contract the oracle checks.

* **Structurally-zero reads** (warning).  Reading the zero half of a
  structured operand is well-defined (those elements are materialized
  as zeros) and generic block recurrences legitimately do it, e.g.
  subtracting a zero RHS block -- but it is worth surfacing in lint
  output since stray reads sometimes indicate offset bugs that do not
  collapse the full expression.

* **Non-stored-half writes** (warning).  For ``UpSym``/``LoSym``
  outputs the storage annotation says which half is authoritative;
  writing only the other half is suspicious.

* **Overlay aliasing** (error).  Operands joined by ``ow(...)`` chains
  share one buffer.  Within a single statement, a write view and a read
  view of the same storage group must either coincide exactly (the
  designed read-modify-write of ``ow``) or be disjoint; a *partial*
  overlap makes the lowering read elements the same statement is
  overwriting at a different offset -- a symbolic version of the
  overlap hazards the fuzz oracle can only catch dynamically.

* **Name-level def-before-use** re-runs ``Program.validate()`` so the
  gate subsumes the frontend check.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import LASemanticError
from ..ir.expr import (Add, Const, Div, Expr, Mul, Neg, Ref, Sqrt, Sub,
                       Transpose)
from ..ir.operands import View
from ..ir.program import Assign, Program, Statement
from ..ir.properties import Structure
from .diagnostics import Diagnostic

PASS = "structure"
ALIAS_PASS = "alias"


def structurally_zero(expr: Expr) -> bool:
    """True when ``expr`` evaluates to zero on *every* input, purely by
    the declared operand structures (conservative: False when unsure)."""
    if isinstance(expr, Ref):
        return expr.view.structure is Structure.ZERO
    if isinstance(expr, Const):
        return expr.value == 0.0
    if isinstance(expr, (Neg, Transpose, Sqrt)):
        return structurally_zero(expr.child)
    if isinstance(expr, Mul):
        return structurally_zero(expr.left) or structurally_zero(expr.right)
    if isinstance(expr, (Add, Sub)):
        return structurally_zero(expr.left) and structurally_zero(expr.right)
    if isinstance(expr, Div):
        return structurally_zero(expr.left)
    return False  # Inverse and future node kinds: never provably zero


def check_program(program: Program) -> List[Diagnostic]:
    """All mathematical-level diagnostics for one program."""
    diags: List[Diagnostic] = []
    try:
        program.validate()
    except LASemanticError as exc:
        diags.append(Diagnostic(PASS, "error",
                                f"program validation failed: {exc}",
                                program.name))
    try:
        leaders = program.storage_groups()
    except LASemanticError as exc:
        diags.append(Diagnostic(ALIAS_PASS, "error",
                                f"invalid ow() chain: {exc}", program.name))
        leaders = {name: name for name in program.operands}

    for stmt in program.flat_statements():
        location = _location(stmt)
        if isinstance(stmt, Assign) \
                and stmt.lhs.structure is not Structure.ZERO \
                and structurally_zero(stmt.rhs):
            diags.append(Diagnostic(
                PASS, "error",
                f"assigns a structurally-zero expression to "
                f"{_describe(stmt.lhs)}: every factor path through the "
                f"right-hand side crosses a zero-structure block, so "
                f"the destination only ever receives zeros -- a "
                f"wrong-coefficient/offset bug", location))
        diags.extend(_zero_divisions(stmt, location))
        for view in stmt.reads():
            if view.structure is Structure.ZERO:
                diags.append(Diagnostic(
                    PASS, "warn",
                    f"reads the structurally-zero block "
                    f"{_describe(view)} -- every element there is zero "
                    f"by the {view.operand.properties.structure.value} "
                    f"structure of {view.operand.name!r}", location))
        for view in stmt.writes():
            if view.structure is Structure.ZERO:
                diags.append(Diagnostic(
                    PASS, "error",
                    f"writes the structurally-zero block "
                    f"{_describe(view)} of "
                    f"{view.operand.properties.structure.value} operand "
                    f"{view.operand.name!r}", location))
        diags.extend(_alias_hazards(stmt, leaders, location))
    return diags


def _zero_divisions(stmt: Statement, location: str) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    for expr in _statement_exprs(stmt):
        for node in expr.walk():
            if isinstance(node, Div) and structurally_zero(node.right):
                diags.append(Diagnostic(
                    PASS, "error",
                    f"divides by a structurally-zero denominator: the "
                    f"divisor is zero on every input", location))
    return diags


def _statement_exprs(stmt: Statement):
    for attr in ("rhs", "lhs"):
        value = getattr(stmt, attr, None)
        if isinstance(value, Expr):
            yield value


def _alias_hazards(stmt: Statement, leaders: Dict[str, str],
                   location: str) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    for write in stmt.writes():
        wleader = leaders.get(write.operand.name, write.operand.name)
        wbox = _box(write)
        for read in stmt.reads():
            if read.operand is write.operand:
                continue  # same-operand overlap is ordinary data flow
            rleader = leaders.get(read.operand.name, read.operand.name)
            if rleader != wleader:
                continue  # distinct buffers cannot alias
            rbox = _box(read)
            if _overlaps(wbox, rbox) and wbox != rbox:
                diags.append(Diagnostic(
                    ALIAS_PASS, "error",
                    f"overlay hazard: write {_describe(write)} and read "
                    f"{_describe(read)} share storage group "
                    f"{wleader!r} and overlap only partially", location))
    return diags


def _box(view: View) -> Tuple[int, int, int, int]:
    return (view.row_off, view.col_off,
            view.row_off + view.rows, view.col_off + view.cols)


def _overlaps(a: Tuple[int, int, int, int],
              b: Tuple[int, int, int, int]) -> bool:
    return a[0] < b[2] and b[0] < a[2] and a[1] < b[3] and b[1] < a[3]


def check_symmetric_storage(program: Program) -> List[Diagnostic]:
    """Warn when a symmetric operand is written *only* in its non-stored
    half (``UpSym`` stores the upper half, ``LoSym`` the lower).

    Generated code routinely materializes both halves of a symmetric
    output, so individual mirror-half writes are normal; a program whose
    every write to the operand avoids the stored half looks like a
    transposed-offset bug and warns once per operand.
    """
    from ..ir.properties import StorageHalf
    mirror_only: Dict[str, List[View]] = {}
    for stmt in program.flat_statements():
        for view in stmt.writes():
            props = view.operand.properties
            if props.structure is not Structure.SYMMETRIC:
                continue
            if props.storage is StorageHalf.UPPER:
                in_mirror = view.row_off >= view.col_off + view.cols
            elif props.storage is StorageHalf.LOWER:
                in_mirror = view.col_off >= view.row_off + view.rows
            else:
                continue
            name = view.operand.name
            if not in_mirror:
                mirror_only[name] = []  # stored half is touched: quiet
            elif name not in mirror_only or mirror_only[name]:
                mirror_only.setdefault(name, []).append(view)
    diags: List[Diagnostic] = []
    for name, views in sorted(mirror_only.items()):
        if not views:
            continue
        props = views[0].operand.properties
        half = "below" if props.storage is StorageHalf.UPPER else "above"
        diags.append(Diagnostic(
            PASS, "warn",
            f"every write to symmetric operand {name!r} lands entirely "
            f"{half} the diagonal, but its {props.storage.value} half is "
            f"the stored one (first: {_describe(views[0])})", name))
    return diags


def _describe(view: View) -> str:
    return (f"{view.operand.name}[{view.row_off}:"
            f"{view.row_off + view.rows},{view.col_off}:"
            f"{view.col_off + view.cols}]")


def _location(stmt: Statement) -> str:
    text = repr(stmt)
    return text if len(text) <= 96 else text[:93] + "..."
