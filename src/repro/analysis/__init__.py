"""Static analysis: an IR well-formedness verifier and dataflow framework.

The subsystem proves well-formedness of pipeline artifacts at
generation time -- on *all* paths, with zero execution cost -- where
the differential fuzzer and the CEGIS verifier can only sample:

* :mod:`repro.analysis.cfg` / :mod:`repro.analysis.dataflow` -- the
  reusable framework: structured CFGs over C-IR bodies and a generic
  forward/backward worklist solver.
* :mod:`repro.analysis.widths`, :mod:`repro.analysis.bounds`,
  :mod:`repro.analysis.defuse`, :mod:`repro.analysis.liveness` -- the
  C-IR function passes.
* :mod:`repro.analysis.structure` -- the mathematical-level passes over
  LA/Stage-1 programs (structurally-zero reads/writes, ``ow()`` overlay
  aliasing).
* :mod:`repro.analysis.verifier` -- orchestration, the
  ``Options.analysis`` phase gate, and the process-wide stats counters
  surfaced on ``/stats``.
* :mod:`repro.analysis.serialize` / :mod:`repro.analysis.witnesses` --
  the JSON fixture codec and the committed witness builders.

CLI: ``python -m repro.analysis check|lint`` sweeps registry kernels,
the fuzz corpus, fixture files, and arbitrary LA sources.
"""

from ..errors import AnalysisError
from .diagnostics import AnalysisReport, Diagnostic
from .verifier import (GATE_MODES, gate_artifact, record_report,
                       reset_stats, stats_snapshot, validate_mode,
                       verify_artifact, verify_function, verify_program)

__all__ = [
    "AnalysisError", "AnalysisReport", "Diagnostic", "GATE_MODES",
    "gate_artifact", "record_report", "reset_stats", "stats_snapshot",
    "validate_mode", "verify_artifact", "verify_function",
    "verify_program",
]
