"""Diagnostics: the result type every static-analysis pass produces.

A pass over a C-IR :class:`~repro.cir.nodes.Function` or a Stage-1
:class:`~repro.ir.program.Program` returns a list of
:class:`Diagnostic` records; the verifier concatenates them into one
:class:`AnalysisReport` per artifact.  Two severities exist:

``error``
    The artifact is ill-formed: executing it would crash (out-of-bounds
    access, use of an undefined register) or silently compute garbage
    (reading a structurally-zero block, width-mismatched vector ops).
    Strict gating turns these into :class:`~repro.errors.AnalysisError`.

``warn``
    The artifact is suspicious but executable (dead stores, double
    writes, reads of implicitly-zero elements).  Warnings are surfaced
    by ``python -m repro.analysis lint`` and the stats counters; they
    never fail a gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

SEVERITIES = ("error", "warn")


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one analysis pass.

    Parameters
    ----------
    pass_name:
        Short identifier of the producing pass (``bounds``, ``widths``,
        ``defuse``, ``liveness``, ``structure``, ``alias``, ...).
    severity:
        ``"error"`` or ``"warn"``.
    message:
        Human-readable description, self-contained (includes names,
        indices and extents).
    location:
        Best-effort anchor: a statement repr, loop context, or operand
        name.  Empty when the finding is not tied to one site.
    """

    pass_name: str
    severity: str
    message: str
    location: str = ""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"invalid severity {self.severity!r}")

    @property
    def is_error(self) -> bool:
        return self.severity == "error"

    def describe(self) -> str:
        where = f" [{self.location}]" if self.location else ""
        return f"{self.severity}: {self.pass_name}: {self.message}{where}"

    def to_json(self) -> Dict[str, str]:
        return {"pass": self.pass_name, "severity": self.severity,
                "message": self.message, "location": self.location}


@dataclass(frozen=True)
class AnalysisReport:
    """All diagnostics of one verification run over one artifact."""

    subject: str = ""
    diagnostics: Tuple[Diagnostic, ...] = field(default_factory=tuple)

    @staticmethod
    def of(subject: str,
           diagnostics: Sequence[Diagnostic]) -> "AnalysisReport":
        return AnalysisReport(subject=subject,
                              diagnostics=tuple(diagnostics))

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.is_error)

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if not d.is_error)

    @property
    def ok(self) -> bool:
        """True when the artifact is well-formed (no errors)."""
        return not self.errors

    def merged_with(self, other: "AnalysisReport") -> "AnalysisReport":
        subject = self.subject or other.subject
        return AnalysisReport(subject=subject,
                              diagnostics=self.diagnostics +
                              other.diagnostics)

    def describe(self, include_warnings: bool = True) -> str:
        lines: List[str] = []
        for diag in self.diagnostics:
            if diag.is_error or include_warnings:
                lines.append(diag.describe())
        head = (f"{self.subject}: {len(self.errors)} error(s), "
                f"{len(self.warnings)} warning(s)")
        return "\n".join([head] + lines)

    def to_json(self) -> Dict[str, object]:
        return {
            "subject": self.subject,
            "ok": self.ok,
            "errors": [d.to_json() for d in self.errors],
            "warnings": [d.to_json() for d in self.warnings],
        }
