"""Command-line front-end of the static verifier.

Usage (``PYTHONPATH=src python -m repro.analysis <command>``)::

    check [TARGET ...] [--const NAME=VALUE] [--json]
        Generate (or load) each target and run every static pass over
        its Stage-1 program and C-IR function.  Exits 1 when any target
        produces an *error* diagnostic; warnings never affect the exit
        code.  With no targets the full sweep runs: every registry
        workload at its default sizes plus every committed fuzz-corpus
        entry -- the acceptance bar the CI ``analysis-smoke`` job holds.

    lint [TARGET ...] [--const NAME=VALUE] [--json]
        Same sweep, but the report also lists warning diagnostics
        (dead stores, double writes, implicit-zero reads, unprovable
        bounds).  The exit code is still driven by errors only.

A TARGET is one of:

* a registry spec (``potrf:8``, ``kf:8x4``) or bare workload name
  (``potrf`` -- expands to its default size sweep),
* a ``.la`` source file (dimension constants via ``--const N=8``),
* a fuzz-case JSON file (the ``tests/fuzz_corpus/`` shape), or
* an analysis fixture JSON file written by
  :func:`repro.analysis.serialize.dump_fixture` (verified directly,
  without generation -- how the committed witness artifacts are swept).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Tuple

from ..cli import EXIT_FAILURE, EXIT_OK, add_json_flag, fail, print_json
from ..errors import AnalysisError, ReproError
from ..ir.program import Program
from ..slingen.options import Options
from .diagnostics import AnalysisReport
from .serialize import load_fixture
from .verifier import verify_artifact, verify_function, verify_program

#: Version of the ``check/lint --json`` document; bump on any
#: incompatible change.  The document is ``{"schema": N, "mode":
#: "check"|"lint", "targets": [{"label", "kind", "ok", "errors": [...],
#: "warnings": [...]}...], "counts": {"targets", "errors", "warnings"},
#: "ok": bool}``.
CHECK_SCHEMA_VERSION = 1


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Statically verify generated artifacts: registry "
                    "kernels, fuzz-corpus entries, LA sources, and "
                    "serialized fixtures.")
    sub = parser.add_subparsers(dest="command", required=True)
    for name, help_text in (
            ("check", "verify targets; exit 1 on any error diagnostic"),
            ("lint", "verify targets and also report warnings")):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("targets", nargs="*", metavar="TARGET",
                         help="registry spec/name, .la source, fuzz-case "
                              "JSON, or analysis fixture JSON (default: "
                              "full registry + corpus sweep)")
        cmd.add_argument("--const", action="append", default=[],
                         metavar="NAME=VALUE", dest="consts",
                         help="dimension constant for .la targets "
                              "(repeatable)")
        add_json_flag(cmd)
    return parser


def _parse_consts(pairs: List[str]) -> Dict[str, int]:
    consts: Dict[str, int] = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep or not name.strip():
            raise AnalysisError(
                f"bad --const {pair!r} (expected NAME=VALUE)")
        try:
            consts[name.strip()] = int(value)
        except ValueError:
            raise AnalysisError(f"bad --const value in {pair!r}")
    return consts


def _sweep_options() -> Options:
    # The sweep verifies one representative artifact per workload; the
    # autotuning search only permutes which variant wins, and every
    # variant a search would visit flows through the same gated drivers.
    return Options(autotune=False, annotate_code=False)


def _verify_generated(program: Program, options: Options,
                      nominal_flops: Optional[float],
                      label: str) -> AnalysisReport:
    from ..slingen.generator import SLinGen

    result = SLinGen(options).generate_result(
        program, nominal_flops=nominal_flops)
    report = AnalysisReport.of(label, [])
    if result.basic_program is not None:
        report = report.merged_with(verify_program(result.basic_program))
    report = report.merged_with(verify_function(result.function))
    return report


def _looks_like_fixture(path: str) -> bool:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return False
    return isinstance(doc, dict) and doc.get("kind") in ("program",
                                                         "function")


def _target_reports(text: str, consts: Dict[str, int]
                    ) -> List[Tuple[str, str, AnalysisReport]]:
    """Expand one TARGET into ``(label, kind, report)`` rows."""
    if text.endswith(".la"):
        from ..la import parse_program
        with open(text, "r", encoding="utf-8") as handle:
            source = handle.read()
        name = os.path.splitext(os.path.basename(text))[0]
        program = parse_program(source, dict(consts), name=name)
        return [(text, "source",
                 _verify_generated(program, _sweep_options(), None, text))]
    if text.endswith(".json"):
        if _looks_like_fixture(text):
            return [(text, "fixture", verify_artifact(load_fixture(text)))]
        from ..fuzz.corpus import load_entry
        entry = load_entry(text)
        case = entry.case
        return [(text, "corpus",
                 _verify_generated(case.program.parse(), case.options,
                                   None, text))]
    from ..service.registry import sweep_requests
    rows: List[Tuple[str, str, AnalysisReport]] = []
    for request in sweep_requests([text], options=_sweep_options()):
        rows.append((request.label or text, "registry",
                     _verify_generated(request.program, _sweep_options(),
                                       request.nominal_flops,
                                       request.label or text)))
    return rows


def _default_sweep() -> List[Tuple[str, str, AnalysisReport]]:
    from ..fuzz.corpus import DEFAULT_CORPUS_DIR, load_corpus
    from ..service.registry import sweep_requests

    rows: List[Tuple[str, str, AnalysisReport]] = []
    options = _sweep_options()
    for request in sweep_requests(options=options):
        rows.append((request.label or "?", "registry",
                     _verify_generated(request.program, options,
                                       request.nominal_flops,
                                       request.label or "?")))
    if os.path.isdir(DEFAULT_CORPUS_DIR):
        for entry in load_corpus():
            rows.append((entry.entry_id, "corpus",
                         _verify_generated(entry.case.program.parse(),
                                           entry.case.options, None,
                                           entry.entry_id)))
    return rows


def _run(args: argparse.Namespace) -> int:
    consts = _parse_consts(args.consts)
    if args.targets:
        rows = []
        for text in args.targets:
            rows.extend(_target_reports(text, consts))
    else:
        rows = _default_sweep()

    show_warnings = args.command == "lint"
    total_errors = sum(len(report.errors) for _, _, report in rows)
    total_warnings = sum(len(report.warnings) for _, _, report in rows)
    ok = total_errors == 0

    if args.as_json:
        print_json({
            "schema": CHECK_SCHEMA_VERSION,
            "mode": args.command,
            "targets": [{
                "label": label,
                "kind": kind,
                "ok": report.ok,
                "errors": [diag.to_json() for diag in report.errors],
                "warnings": [diag.to_json() for diag in report.warnings],
            } for label, kind, report in rows],
            "counts": {"targets": len(rows), "errors": total_errors,
                       "warnings": total_warnings},
            "ok": ok,
        })
        return EXIT_OK if ok else EXIT_FAILURE

    for label, kind, report in rows:
        flagged = report.errors + (report.warnings if show_warnings else ())
        status = "ok" if report.ok else "FAIL"
        suffix = (f"  ({len(report.errors)} error(s), "
                  f"{len(report.warnings)} warning(s))"
                  if (report.errors or report.warnings) else "")
        print(f"{status:4s} {kind:8s} {label}{suffix}")
        for diag in flagged:
            print(f"       {diag.describe()}")
    tail = f"{len(rows)} target(s), {total_errors} error(s)"
    if show_warnings:
        tail += f", {total_warnings} warning(s)"
    if not ok:
        print(f"static analysis failed: {tail}", file=sys.stderr)
        return EXIT_FAILURE
    print(f"static analysis clean: {tail}")
    return EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _run(args)
    except ReproError as exc:
        return fail(exc)


if __name__ == "__main__":
    sys.exit(main())
