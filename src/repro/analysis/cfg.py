"""Control-flow graphs over C-IR statement lists.

C-IR control flow is structured (``For`` with constant bounds, ``If``
diamonds), so the CFG builder can be exact:

* A ``For`` whose static trip count is zero contributes no edges into
  its body -- the body blocks are kept (so structural passes still see
  them) but marked unreachable.
* A ``For`` with trip count >= 1 is modeled as a do-while: the entry
  edge leads straight into the body, the body loops back on itself, and
  the exit edge leaves from the body's end.  This keeps must-definedness
  precise -- a register assigned in a loop that provably runs is
  definitely assigned after it, exactly matching the interpreter.
* An ``If`` is a diamond: both branches are considered reachable (the
  condition depends on induction variables and is evaluated per
  iteration).

Blocks hold only *simple* statements (``Assign``, ``Store``, ``VStore``,
``Comment``); ``For``/``If`` dissolve into edges.  The graph is the
substrate for the generic solver in :mod:`repro.analysis.dataflow`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Set, Tuple

from ..cir.nodes import Comment, CStmt, For, If


@dataclass
class Block:
    """A basic block: straight-line simple statements plus CFG edges."""

    block_id: int
    stmts: List[CStmt] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)
    #: loop variables of every enclosing ``For`` (outermost first)
    loop_context: Tuple[str, ...] = ()

    def add_succ(self, other: "Block") -> None:
        if other.block_id not in self.succs:
            self.succs.append(other.block_id)
        if self.block_id not in other.preds:
            other.preds.append(self.block_id)


@dataclass
class CFG:
    """A control-flow graph with unique entry and exit blocks."""

    blocks: List[Block]
    entry_id: int
    exit_id: int

    @property
    def entry(self) -> Block:
        return self.blocks[self.entry_id]

    @property
    def exit(self) -> Block:
        return self.blocks[self.exit_id]

    def block(self, block_id: int) -> Block:
        return self.blocks[block_id]

    def reachable_ids(self) -> Set[int]:
        """Block ids reachable from the entry (zero-trip bodies are not)."""
        seen: Set[int] = set()
        work = [self.entry_id]
        while work:
            bid = work.pop()
            if bid in seen:
                continue
            seen.add(bid)
            work.extend(self.blocks[bid].succs)
        return seen

    def topological_order(self) -> List[int]:
        """Reverse-postorder over reachable blocks (good worklist order)."""
        seen: Set[int] = set()
        order: List[int] = []
        # Iterative postorder DFS: generated functions can have tens of
        # thousands of blocks in a straight line, far past the Python
        # recursion limit.
        stack: List[Tuple[int, int]] = [(self.entry_id, 0)]
        seen.add(self.entry_id)
        while stack:
            bid, next_succ = stack[-1]
            succs = self.blocks[bid].succs
            while next_succ < len(succs) and succs[next_succ] in seen:
                next_succ += 1
            if next_succ < len(succs):
                stack[-1] = (bid, next_succ + 1)
                seen.add(succs[next_succ])
                stack.append((succs[next_succ], 0))
            else:
                stack.pop()
                order.append(bid)
        return list(reversed(order))


class _Builder:
    def __init__(self) -> None:
        self.blocks: List[Block] = []

    def new_block(self, loop_context: Tuple[str, ...]) -> Block:
        block = Block(block_id=len(self.blocks), loop_context=loop_context)
        self.blocks.append(block)
        return block

    def build(self, stmts: Sequence[CStmt], current: Block,
              loop_context: Tuple[str, ...]) -> Block:
        """Lay out ``stmts``; return the block control falls out of."""
        for stmt in stmts:
            if isinstance(stmt, For):
                after = self.new_block(loop_context)
                if stmt.trip_count == 0:
                    # Body statically never runs: keep its blocks (they
                    # stay unreachable) and fall through directly.
                    body_entry = self.new_block(loop_context + (stmt.var,))
                    self.build(stmt.body, body_entry,
                               loop_context + (stmt.var,))
                    current.add_succ(after)
                else:
                    body_entry = self.new_block(loop_context + (stmt.var,))
                    current.add_succ(body_entry)
                    body_exit = self.build(stmt.body, body_entry,
                                           loop_context + (stmt.var,))
                    if stmt.trip_count > 1:
                        body_exit.add_succ(body_entry)  # back edge
                    body_exit.add_succ(after)
                current = after
            elif isinstance(stmt, If):
                then_entry = self.new_block(loop_context)
                else_entry = self.new_block(loop_context)
                join = self.new_block(loop_context)
                current.add_succ(then_entry)
                current.add_succ(else_entry)
                then_exit = self.build(stmt.then_body, then_entry,
                                       loop_context)
                else_exit = self.build(stmt.else_body, else_entry,
                                       loop_context)
                then_exit.add_succ(join)
                else_exit.add_succ(join)
                current = join
            elif isinstance(stmt, Comment):
                continue
            else:
                current.stmts.append(stmt)
        return current


def build_cfg(body: Sequence[CStmt]) -> CFG:
    """Build the CFG of a statement list (e.g. ``Function.body``)."""
    builder = _Builder()
    entry = builder.new_block(())
    last = builder.build(body, entry, ())
    if last.succs or last.stmts or last is not entry:
        exit_block = builder.new_block(())
        last.add_succ(exit_block)
    else:
        exit_block = last
    return CFG(blocks=builder.blocks, entry_id=entry.block_id,
               exit_id=exit_block.block_id)
