"""Def-before-use and uninitialized-read detection.

Two cooperating analyses:

* **Registers** (``ScalarVar``/``VecVar``): a forward must-defined
  dataflow over the CFG (intersection meet).  A register read that is
  not definitely assigned on every path to it is an *error* -- the
  interpreter raises ``use of undefined register`` and the C backends
  read an uninitialized stack slot.

* **Buffer elements**: reaching definitions at element granularity via
  a concrete walk.  Loop bounds are integer constants, so loops can be
  unrolled abstractly (up to a step budget) while tracking, per buffer,
  exactly which elements have been written.  Reading an element of an
  ``out``/``temp`` buffer before any write is well-defined under the
  backend contract (those buffers start zeroed) but almost always a
  lowering bug, so it is reported as a *warning*; ``in``/``inout``
  buffers start fully defined.

The same concrete walk powers the double-write lint in
:mod:`repro.analysis.liveness` -- both consume :func:`element_events`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Sequence, Set, Tuple

from ..cir.nodes import (Assign, Comment, CStmt, For, Function, If, Load,
                         Store, VLoad, VStore, walk_expressions)
from .cfg import build_cfg
from .dataflow import MustDefined, expr_registers, solve, stmt_def
from .diagnostics import Diagnostic

PASS = "defuse"

#: budget for the concrete element walk (simple statements visited)
ELEMENT_WALK_LIMIT = 200_000


def check_register_defuse(fn: Function) -> List[Diagnostic]:
    """Registers that may be read before any assignment reaches them."""
    cfg = build_cfg(fn.body)
    universe: Set[str] = set()
    for stmt in fn.walk_statements():
        universe |= stmt_def(stmt)
        if isinstance(stmt, (Assign, Store, VStore)):
            universe |= expr_registers(stmt.value)
    states = solve(cfg, MustDefined(frozenset(universe)))

    diags: List[Diagnostic] = []
    reported: Set[str] = set()
    reachable = cfg.reachable_ids()
    for block in cfg.blocks:
        if block.block_id not in reachable:
            continue
        defined: FrozenSet[str] = states[block.block_id][0]
        current = set(defined)
        for stmt in block.stmts:
            if isinstance(stmt, (Assign, Store, VStore)):
                for name in sorted(expr_registers(stmt.value)):
                    if name not in current and name not in reported:
                        reported.add(name)
                        diags.append(Diagnostic(
                            PASS, "error",
                            f"register {name!r} may be read before it is "
                            f"assigned", _location(stmt)))
            current |= stmt_def(stmt)
    return diags


# ---------------------------------------------------------------------------
# Concrete element-level walk
# ---------------------------------------------------------------------------


class WalkStatus:
    """Mutable completeness marker filled in as the event stream drains."""

    def __init__(self) -> None:
        self.complete = True


def element_events(fn: Function,
                   limit: int = ELEMENT_WALK_LIMIT
                   ) -> Tuple[Iterator[Tuple[str, str, int, CStmt]],
                              WalkStatus]:
    """Iterate ``(kind, buffer, element, stmt)`` access events in order.

    ``kind`` is ``"read"`` or ``"write"``.  Loops are concretely
    unrolled (all bounds are constants) and ``If`` conditions evaluated
    exactly, so the event stream is the precise dynamic access trace --
    independent of data values, which indices never depend on.  The
    returned :class:`WalkStatus` reports (once the stream is fully
    drained) whether the walk stayed within ``limit`` simple statements;
    callers must treat a truncated stream as inconclusive, not clean.
    """
    status = WalkStatus()

    def events(stmts: Sequence[CStmt], bindings: Dict[str, int],
               budget: List[int]) -> Iterator[Tuple[str, str, int, CStmt]]:
        for stmt in stmts:
            if budget[0] <= 0:
                status.complete = False
                return
            if isinstance(stmt, For):
                for value in stmt.iterations():
                    inner = dict(bindings)
                    inner[stmt.var] = value
                    yield from events(stmt.body, inner, budget)
                    if budget[0] <= 0:
                        status.complete = False
                        return
            elif isinstance(stmt, If):
                taken = stmt.evaluate(bindings)
                yield from events(stmt.then_body if taken else
                                  stmt.else_body, bindings, budget)
            elif isinstance(stmt, Comment):
                continue
            else:
                budget[0] -= 1
                for expr in walk_expressions(stmt):
                    for node in expr.walk():
                        if isinstance(node, Load):
                            at = node.index.evaluate(bindings)
                            yield "read", node.buffer.name, at, stmt
                        elif isinstance(node, VLoad):
                            base = node.index.evaluate(bindings)
                            mask = (node.mask if node.mask is not None
                                    else (True,) * node.width)
                            for lane, keep in enumerate(mask):
                                if keep:
                                    yield ("read", node.buffer.name,
                                           base + lane, stmt)
                if isinstance(stmt, Store):
                    at = stmt.index.evaluate(bindings)
                    yield "write", stmt.buffer.name, at, stmt
                elif isinstance(stmt, VStore):
                    base = stmt.index.evaluate(bindings)
                    mask = (stmt.mask if stmt.mask is not None
                            else (True,) * stmt.width)
                    for lane, keep in enumerate(mask):
                        if keep:
                            yield "write", stmt.buffer.name, base + lane, stmt

    return events(fn.body, {}, [limit]), status


def check_element_defuse(fn: Function) -> List[Diagnostic]:
    """Stale reads: ``out``/``temp`` elements read before the write that
    later defines them.

    Reads of elements *never* written anywhere in the trace are the
    designed implicit-zero idiom (full-width vector loads sweeping the
    structurally-zero half of a triangular output) and stay silent; a
    read that precedes a write of the same element observes the zero
    where the computed value was plainly intended -- an ordering bug in
    the lowering -- and warns.
    """
    initialized: Dict[str, bool] = {
        buf.name: buf.kind in ("in", "inout") for buf in fn.buffers()}
    stream, _status = element_events(fn)
    trace = list(stream)
    ever_written: Dict[str, Set[int]] = {}
    for kind, name, at, _stmt in trace:
        if kind == "write":
            ever_written.setdefault(name, set()).add(at)

    written: Dict[str, Set[int]] = {buf.name: set() for buf in fn.buffers()}
    diags: List[Diagnostic] = []
    reported: Set[Tuple[str, int]] = set()
    for kind, name, at, stmt in trace:
        if kind == "write":
            written[name].add(at)
        elif (not initialized.get(name, True)
                and at not in written[name]
                and at in ever_written.get(name, ())
                and (name, at) not in reported):
            reported.add((name, at))
            diags.append(Diagnostic(
                PASS, "warn",
                f"element {name}[{at}] of {_kind(fn, name)} buffer "
                f"{name!r} is read before the write that later defines "
                f"it (observes the implicit zero instead)",
                _location(stmt)))
    return diags


def _kind(fn: Function, name: str) -> str:
    for buf in fn.buffers():
        if buf.name == name:
            return buf.kind
    return "unknown"


def _location(stmt: CStmt) -> str:
    text = repr(stmt)
    return text if len(text) <= 96 else text[:93] + "..."
