"""Type/width consistency checking over C-IR expressions.

The vector ISA contract (mirroring the AVX semantics the interpreter
and the C unparser implement):

* the function's ``vector_width`` is 1, 2, or 4 and every vector-valued
  node agrees with it -- no mixed-width blends/shuffles anywhere;
* scalar operators (``BinOp``/``UnOp``) take width-1 operands,
  ``VReduceAdd``/``VExtract`` take a full-width vector and yield width 1;
* ``VSet`` supplies exactly ``width`` scalar elements; masks have
  exactly ``width`` lanes; blend immediates fit in ``width`` bits;
  ``VPermute2f128`` only exists on 256-bit (width-4) vectors;
* ``Assign`` destinations match their value's width, and each register
  name keeps one kind/width for the whole function.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..cir.nodes import (Assign, BinOp, CExpr, CStmt, FloatConst, Function,
                         Load, ScalarVar, Store, UnOp, VBinOp, VBlend,
                         VBroadcast, VecVar, VExtract, VFma, VLoad,
                         VPermute2f128, VReduceAdd, VSet, VShufflePd, VStore,
                         VUnpack, VZero)
from .diagnostics import Diagnostic

PASS = "widths"
VALID_WIDTHS = (1, 2, 4)


def _err(message: str, location: str = "") -> Diagnostic:
    return Diagnostic(PASS, "error", message, location)


def check_widths(fn: Function) -> List[Diagnostic]:
    """All width-consistency diagnostics for one function."""
    diags: List[Diagnostic] = []
    width = fn.vector_width
    if width not in VALID_WIDTHS:
        diags.append(_err(f"function vector_width {width} is not one of "
                          f"{VALID_WIDTHS}", fn.name))
        return diags

    # each register name must keep a single (kind, width) signature
    registers: Dict[str, Tuple[str, int]] = {}

    def note_register(node: CExpr, location: str) -> None:
        kind = "vec" if isinstance(node, VecVar) else "scalar"
        signature = (kind, node.width)
        name = node.name  # type: ignore[attr-defined]
        previous = registers.setdefault(name, signature)
        if previous != signature:
            diags.append(_err(
                f"register {name!r} used as {kind} width {node.width} "
                f"but previously as {previous[0]} width {previous[1]}",
                location))

    def check_expr(expr: CExpr, location: str) -> None:
        for node in expr.walk():
            if isinstance(node, (ScalarVar, VecVar)):
                note_register(node, location)
            if isinstance(node, ScalarVar) and node.width != 1:
                diags.append(_err(f"scalar register {node.name!r} has "
                                  f"width {node.width}", location))
            elif isinstance(node, VecVar) and node.width != width:
                diags.append(_err(
                    f"vector register {node.name!r} has width "
                    f"{node.width}, function width is {width}", location))
            elif isinstance(node, FloatConst) and node.width != 1:
                diags.append(_err("float constant must have width 1",
                                  location))
            elif isinstance(node, Load) and node.width != 1:
                diags.append(_err("scalar load must have width 1", location))
            elif isinstance(node, VLoad):
                if node.width != width:
                    diags.append(_err(
                        f"vload width {node.width} != function width "
                        f"{width}", location))
                if node.mask is not None and len(node.mask) != node.width:
                    diags.append(_err(
                        f"vload mask has {len(node.mask)} lanes for "
                        f"width {node.width}", location))
            elif isinstance(node, VBroadcast):
                if node.width != width:
                    diags.append(_err(
                        f"vbroadcast width {node.width} != function "
                        f"width {width}", location))
                if node.value.width != 1:
                    diags.append(_err("vbroadcast of a non-scalar value",
                                      location))
            elif isinstance(node, VSet):
                if node.width != width:
                    diags.append(_err(
                        f"vset has {node.width} elements, function "
                        f"width is {width}", location))
                for element in node.elements:
                    if element.width != 1:
                        diags.append(_err("vset element is not scalar",
                                          location))
            elif isinstance(node, VZero) and node.width != width:
                diags.append(_err(f"vzero width {node.width} != function "
                                  f"width {width}", location))
            elif isinstance(node, (BinOp, UnOp)):
                if node.width != 1:
                    diags.append(_err(f"scalar op {node.op!r} has width "
                                      f"{node.width}", location))
                for child in node.children():
                    if child.width != 1:
                        diags.append(_err(
                            f"scalar op {node.op!r} has a width-"
                            f"{child.width} operand", location))
            elif isinstance(node, (VBinOp, VFma)):
                if node.width != width:
                    diags.append(_err(
                        f"vector op width {node.width} != function "
                        f"width {width}", location))
                for child in node.children():
                    if child.width != node.width:
                        diags.append(_err(
                            f"vector op mixes widths {node.width} and "
                            f"{child.width}", location))
            elif isinstance(node, VReduceAdd):
                if node.width != 1:
                    diags.append(_err("vreduce_add result must be scalar",
                                      location))
                if node.vec.width != width:
                    diags.append(_err(
                        f"vreduce_add of width-{node.vec.width} vector "
                        f"in width-{width} function", location))
            elif isinstance(node, VExtract):
                if node.width != 1:
                    diags.append(_err("vextract result must be scalar",
                                      location))
                if node.vec.width != width:
                    diags.append(_err(
                        f"vextract from width-{node.vec.width} vector "
                        f"in width-{width} function", location))
                if not 0 <= node.lane < node.vec.width:
                    diags.append(_err(
                        f"vextract lane {node.lane} out of range for "
                        f"width {node.vec.width}", location))
            elif isinstance(node, (VBlend, VShufflePd, VPermute2f128,
                                   VUnpack)):
                if node.width != width:
                    diags.append(_err(
                        f"{type(node).__name__} width {node.width} != "
                        f"function width {width}", location))
                for child in node.children():
                    if child.width != node.width:
                        diags.append(_err(
                            f"{type(node).__name__} mixes widths "
                            f"{node.width} and {child.width}", location))
                if isinstance(node, VBlend) and not (
                        0 <= node.imm < (1 << node.width)):
                    diags.append(_err(
                        f"blend immediate {node.imm:#x} does not fit in "
                        f"{node.width} bits", location))
                if isinstance(node, VPermute2f128) and node.width != 4:
                    diags.append(_err(
                        "permute2f128 requires 256-bit (width-4) vectors",
                        location))

    for stmt in fn.walk_statements():
        location = _location(stmt)
        if isinstance(stmt, Assign):
            note_register(stmt.dest, location)
            check_expr(stmt.value, location)
            if stmt.dest.width != stmt.value.width:
                diags.append(_err(
                    f"assignment to {stmt.dest.name!r} mixes widths "
                    f"{stmt.dest.width} and {stmt.value.width}", location))
            if isinstance(stmt.dest, ScalarVar) and stmt.dest.width != 1:
                diags.append(_err(f"scalar register {stmt.dest.name!r} "
                                  f"has width {stmt.dest.width}", location))
            if isinstance(stmt.dest, VecVar) and stmt.dest.width != width:
                diags.append(_err(
                    f"vector register {stmt.dest.name!r} has width "
                    f"{stmt.dest.width}, function width is {width}",
                    location))
        elif isinstance(stmt, Store):
            check_expr(stmt.value, location)
            if stmt.value.width != 1:
                diags.append(_err(
                    f"scalar store of a width-{stmt.value.width} value",
                    location))
        elif isinstance(stmt, VStore):
            check_expr(stmt.value, location)
            if stmt.width != width:
                diags.append(_err(f"vstore width {stmt.width} != function "
                                  f"width {width}", location))
            if stmt.value.width != stmt.width:
                diags.append(_err(
                    f"vstore of a width-{stmt.value.width} value into a "
                    f"width-{stmt.width} store", location))
            if stmt.mask is not None and len(stmt.mask) != stmt.width:
                diags.append(_err(
                    f"vstore mask has {len(stmt.mask)} lanes for width "
                    f"{stmt.width}", location))
    return diags


def _location(stmt: CStmt) -> str:
    text = repr(stmt)
    return text if len(text) <= 96 else text[:93] + "..."
