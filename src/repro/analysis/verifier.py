"""Verifier orchestration: run every pass, gate phase artifacts, count.

:func:`verify_function` and :func:`verify_program` aggregate the pass
modules into one :class:`~repro.analysis.diagnostics.AnalysisReport`;
:func:`verify_artifact` dispatches on artifact type so the four phase
drivers share one entry point.  :func:`gate_artifact` implements the
``Options.analysis`` contract:

``off``
    No verification, no cost.
``warn``
    Verify; record error/warning counts in the process-wide stats
    (surfaced by ``ServiceStats.snapshot()`` and ``/stats``); never
    interrupt generation.
``strict``
    Like warn, but error diagnostics raise
    :class:`~repro.errors.AnalysisError` *before* the phase driver
    caches the artifact -- nothing ill-formed can reach the phase
    cache, the kernel store, or a client.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Union

from ..cir.nodes import Function
from ..errors import AnalysisError, ConfigurationError, ReproError
from ..ir.program import Program
from .bounds import check_bounds
from .defuse import check_element_defuse, check_register_defuse
from .diagnostics import AnalysisReport, Diagnostic
from .liveness import check_dead_registers, check_double_writes
from .structure import check_program, check_symmetric_storage
from .widths import check_widths

GATE_MODES = ("off", "warn", "strict")

#: pass registry: name -> (callable, artifact kind); adding a pass means
#: adding a row here (see docs/analysis.md)
FUNCTION_PASSES = (
    ("widths", check_widths),
    ("bounds", check_bounds),
    ("defuse.registers", check_register_defuse),
    ("defuse.elements", check_element_defuse),
    ("liveness.dead-registers", check_dead_registers),
    ("liveness.double-writes", check_double_writes),
)
PROGRAM_PASSES = (
    ("structure", check_program),
    ("structure.symmetric-storage", check_symmetric_storage),
)


def _run_pass(name: str, check, subject, diags: List[Diagnostic]) -> None:
    try:
        diags.extend(check(subject))
    except ReproError as exc:
        # A pass crashing on an artifact is itself evidence of
        # ill-formedness (unbound index variables, malformed nodes).
        diags.append(Diagnostic(name.split(".")[0], "error",
                                f"pass {name!r} failed: {exc}"))


def verify_function(fn: Function) -> AnalysisReport:
    """Run every C-IR pass over one function."""
    diags: List[Diagnostic] = []
    for name, check in FUNCTION_PASSES:
        _run_pass(name, check, fn, diags)
    return AnalysisReport.of(f"function {fn.name!r}", diags)


def verify_program(program: Program) -> AnalysisReport:
    """Run every mathematical-level pass over one LA/Stage-1 program."""
    diags: List[Diagnostic] = []
    for name, check in PROGRAM_PASSES:
        _run_pass(name, check, program, diags)
    return AnalysisReport.of(f"program {program.name!r}", diags)


def verify_artifact(artifact: Union[Program, Function]) -> AnalysisReport:
    """Dispatch on artifact type (Stage-1 program vs C-IR function)."""
    if isinstance(artifact, Program):
        return verify_program(artifact)
    if isinstance(artifact, Function):
        return verify_function(artifact)
    raise AnalysisError(
        f"cannot verify artifact of type {type(artifact).__name__}")


# ---------------------------------------------------------------------------
# Process-wide stats (mirrors the ServiceStats counter conventions)
# ---------------------------------------------------------------------------

_STATS_LOCK = threading.Lock()
_STATS: Dict[str, int] = {}


def _zero_stats() -> Dict[str, int]:
    return {"programs_checked": 0, "functions_checked": 0, "errors": 0,
            "warnings": 0, "strict_failures": 0}


_STATS = _zero_stats()


def record_report(report: AnalysisReport, kind: str,
                  strict_failure: bool = False) -> None:
    """Fold one report into the process-wide counters (thread-safe)."""
    with _STATS_LOCK:
        if kind == "program":
            _STATS["programs_checked"] += 1
        else:
            _STATS["functions_checked"] += 1
        _STATS["errors"] += len(report.errors)
        _STATS["warnings"] += len(report.warnings)
        if strict_failure:
            _STATS["strict_failures"] += 1


def stats_snapshot() -> Dict[str, int]:
    """A point-in-time copy of the analysis counters."""
    with _STATS_LOCK:
        return dict(_STATS)


def reset_stats() -> None:
    with _STATS_LOCK:
        for key in list(_STATS):
            _STATS[key] = 0


# ---------------------------------------------------------------------------
# Phase gating
# ---------------------------------------------------------------------------


def validate_mode(mode: str) -> str:
    if mode not in GATE_MODES:
        raise ConfigurationError(f"invalid analysis mode {mode!r}; "
                                 f"choose one of {GATE_MODES}")
    return mode


def gate_artifact(phase: str, artifact: Union[Program, Function],
                  mode: str) -> Optional[AnalysisReport]:
    """Verify a freshly built phase artifact according to ``mode``.

    Called by the phase drivers on every cache *miss*, before the
    artifact is inserted into the phase cache; strict failures therefore
    leave no trace in any cache or store.  Returns the report (or
    ``None`` when ``mode == "off"``).
    """
    if mode == "off":
        return None
    validate_mode(mode)
    report = verify_artifact(artifact)
    kind = "program" if isinstance(artifact, Program) else "function"
    strict_failure = mode == "strict" and not report.ok
    record_report(report, kind, strict_failure=strict_failure)
    if strict_failure:
        details = "; ".join(d.describe() for d in report.errors[:8])
        raise AnalysisError(
            f"static analysis rejected the {phase!r} artifact "
            f"({report.subject}): {details}")
    return report
