"""Dead-store and double-write lints from liveness.

* **Dead register stores**: a backward liveness dataflow over the CFG;
  an ``Assign`` whose destination is not live out of the statement is
  work the optimizer should have removed (the DCE pass does exactly
  this when enabled), reported as a warning.
* **Double writes**: from the concrete element event stream, a buffer
  element written twice with no intervening read of it -- the first
  store is dead.  Also a warning: accumulation idioms always read
  between stores, so legitimate code does not trip this.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..cir.nodes import Assign, CStmt, Function
from .cfg import build_cfg
from .dataflow import LiveRegisters, solve, stmt_def, stmt_uses
from .defuse import element_events
from .diagnostics import Diagnostic

PASS = "liveness"


def check_dead_registers(fn: Function) -> List[Diagnostic]:
    """Assignments whose destination register is never read afterwards."""
    cfg = build_cfg(fn.body)
    states = solve(cfg, LiveRegisters())
    diags: List[Diagnostic] = []
    reported: Set[str] = set()
    reachable = cfg.reachable_ids()
    for block in cfg.blocks:
        if block.block_id not in reachable:
            continue
        live = set(states[block.block_id][1])  # live-out of the block
        for stmt in reversed(block.stmts):
            if isinstance(stmt, Assign):
                name = stmt.dest.name
                if name not in live and name not in reported:
                    reported.add(name)
                    diags.append(Diagnostic(
                        PASS, "warn",
                        f"dead store: register {name!r} is assigned but "
                        f"never read afterwards", _location(stmt)))
            live -= stmt_def(stmt)
            live |= stmt_uses(stmt)
    return diags


def check_double_writes(fn: Function) -> List[Diagnostic]:
    """Buffer elements overwritten with no intervening read."""
    last_write: Dict[Tuple[str, int], CStmt] = {}
    diags: List[Diagnostic] = []
    # Deduplicate per statement pair: one vector store overwriting four
    # lanes of another is one finding, not four.
    reported: Set[Tuple[str, str]] = set()
    stream, status = element_events(fn)
    for kind, name, at, stmt in stream:
        key = (name, at)
        if kind == "read":
            last_write.pop(key, None)
        else:
            previous = last_write.get(key)
            if previous is not None:
                pair = (_location(previous), _location(stmt))
                if pair not in reported:
                    reported.add(pair)
                    diags.append(Diagnostic(
                        PASS, "warn",
                        f"double write: {name}[{at}] is overwritten "
                        f"before the earlier store ({pair[0]}) is read",
                        pair[1]))
            last_write[key] = stmt
    if not status.complete:
        return []  # truncated trace: orderings beyond the budget unknown
    return diags


def _location(stmt: CStmt) -> str:
    text = repr(stmt)
    return text if len(text) <= 96 else text[:93] + "..."
