"""A small generic forward/backward dataflow solver over the CFG.

Problems describe a semilattice of facts (here: frozensets) and a
per-block transfer function; :func:`solve` iterates a worklist to the
fixpoint and returns the ``(in, out)`` state of every block.  Two
concrete problems ship with the verifier -- must-defined registers
(forward, intersection meet) and live registers (backward, union meet)
-- and the float32/size-generic work the ROADMAP plans will add its own
problems on the same solver.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Tuple

from ..cir.nodes import Assign, CExpr, CStmt, ScalarVar, Store, VecVar, VStore
from .cfg import CFG, Block

State = FrozenSet[str]
BlockStates = Dict[int, Tuple[State, State]]


class DataflowProblem:
    """Base class: a set-valued dataflow problem over CFG blocks."""

    #: ``"forward"`` or ``"backward"``
    direction: str = "forward"

    def boundary(self, cfg: CFG) -> State:
        """State at the entry (forward) / exit (backward) block."""
        raise NotImplementedError

    def top(self, cfg: CFG) -> State:
        """Optimistic initial state of every interior block."""
        raise NotImplementedError

    def meet(self, states: Iterable[State]) -> State:
        raise NotImplementedError

    def transfer(self, block: Block, state: State) -> State:
        """State after (forward) / before (backward) the block."""
        raise NotImplementedError


def solve(cfg: CFG, problem: DataflowProblem) -> BlockStates:
    """Iterate ``problem`` to its fixpoint; returns block id -> (in, out).

    ``in`` is the state at the block's beginning and ``out`` at its end
    in *program* order regardless of analysis direction, so callers can
    replay statements forward from ``in`` (or backward from ``out``).
    """
    forward = problem.direction == "forward"
    boundary_id = cfg.entry_id if forward else cfg.exit_id
    edges_in = ((lambda b: b.preds) if forward else (lambda b: b.succs))

    states: Dict[int, State] = {}
    for block in cfg.blocks:
        states[block.block_id] = problem.top(cfg)
    states[boundary_id] = _through(problem, cfg.blocks[boundary_id],
                                   problem.boundary(cfg))

    order = cfg.topological_order()
    if not forward:
        order = list(reversed(order))
    work: List[int] = list(order)
    in_work = set(work)
    while work:
        bid = work.pop(0)
        in_work.discard(bid)
        block = cfg.blocks[bid]
        incoming = [states[p] for p in edges_in(block)]
        if incoming:
            start = problem.meet(incoming)
        elif bid == boundary_id:
            start = problem.boundary(cfg)
        else:
            continue  # unreachable in the analysis direction
        new_state = _through(problem, block, start)
        if new_state != states[bid]:
            states[bid] = new_state
            targets = block.succs if forward else block.preds
            for succ in targets:
                if succ not in in_work:
                    work.append(succ)
                    in_work.add(succ)
    result: BlockStates = {}
    for block in cfg.blocks:
        bid = block.block_id
        incoming = [states[p] for p in edges_in(block)]
        if incoming:
            start = problem.meet(incoming)
        elif bid == boundary_id:
            start = problem.boundary(cfg)
        else:
            start = problem.top(cfg)
        end = states[bid]
        result[bid] = (start, end) if forward else (end, start)
    return result


def _through(problem: DataflowProblem, block: Block, state: State) -> State:
    return problem.transfer(block, state)


# ---------------------------------------------------------------------------
# Register def/use extraction shared by the concrete problems
# ---------------------------------------------------------------------------


def expr_registers(expr: CExpr) -> FrozenSet[str]:
    """Names of all registers read by ``expr``."""
    return frozenset(node.name for node in expr.walk()
                     if isinstance(node, (ScalarVar, VecVar)))


def stmt_uses(stmt: CStmt) -> FrozenSet[str]:
    """Registers read by a simple statement."""
    if isinstance(stmt, (Assign, Store, VStore)):
        return expr_registers(stmt.value)
    return frozenset()


def stmt_def(stmt: CStmt) -> FrozenSet[str]:
    """Registers written by a simple statement."""
    if isinstance(stmt, Assign):
        return frozenset((stmt.dest.name,))
    return frozenset()


class MustDefined(DataflowProblem):
    """Forward must-analysis: registers definitely assigned on all paths."""

    direction = "forward"

    def __init__(self, universe: FrozenSet[str]):
        self.universe = universe

    def boundary(self, cfg: CFG) -> State:
        return frozenset()

    def top(self, cfg: CFG) -> State:
        return self.universe

    def meet(self, states: Iterable[State]) -> State:
        states = list(states)
        result = states[0]
        for state in states[1:]:
            result = result & state
        return result

    def transfer(self, block: Block, state: State) -> State:
        defined = set(state)
        for stmt in block.stmts:
            defined |= stmt_def(stmt)
        return frozenset(defined)


class LiveRegisters(DataflowProblem):
    """Backward may-analysis: registers whose value may still be read."""

    direction = "backward"

    def boundary(self, cfg: CFG) -> State:
        return frozenset()  # registers are dead at function exit

    def top(self, cfg: CFG) -> State:
        return frozenset()

    def meet(self, states: Iterable[State]) -> State:
        result: FrozenSet[str] = frozenset()
        for state in states:
            result = result | state
        return result

    def transfer(self, block: Block, state: State) -> State:
        live = set(state)
        for stmt in reversed(block.stmts):
            live -= stmt_def(stmt)
            live |= stmt_uses(stmt)
        return frozenset(live)
