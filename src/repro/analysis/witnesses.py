"""Builders for the committed witness fixtures.

Two historical bug shapes, re-introduced deliberately so the verifier's
regression surface is executable:

* :func:`wrong_coefficient_program` -- the ``inv(T')`` miscompile (PR 5
  found it dynamically; all four backends agreed on the wrong value).
  The transposed-triangular-inverse expansion read its coefficient
  blocks at the *untransposed* offsets: for an upper-triangular input
  ``T``, forward substitution on ``T^T`` must read ``T[i, j]`` above
  the diagonal, but the buggy code read below it -- views whose
  :attr:`~repro.ir.operands.View.structure` is ``Structure.ZERO``,
  collapsing each off-diagonal product to zero.  The structure pass
  reports every such statement as a degenerate assignment (error) and
  every zero-half read as a warning.

* :func:`out_of_bounds_function` -- a lowering off-by-one: a loop body
  reading one element past its input and a store at the extent of its
  output.  The bounds pass proves both and names witness bindings.

``tests/analysis_witnesses/`` holds these as JSON (via
:mod:`repro.analysis.serialize`); a test asserts the committed files
stay byte-identical to the builders.
"""

from __future__ import annotations

from ..cir.nodes import Affine, Buffer, For, Function, Load, Store
from ..ir.expr import Const, Div, Mul, Neg, Ref
from ..ir.operands import IOType, Operand
from ..ir.program import Assign, Program
from ..ir.properties import Properties


def wrong_coefficient_program() -> Program:
    """The ``inv(T')`` wrong-coefficient miscompile as a Stage-1 program.

    ``X = inv(T^T)`` for upper-triangular non-singular ``T``: ``T^T`` is
    lower triangular, so ``X`` is lower triangular and forward
    substitution computes ``X[i][j] = -X[i][i] * T'[i][j] * X[j][j]``
    with the coefficient ``T'[i][j] = T[j][i]`` read from T's stored
    (upper) half.  The buggy expansion ignored the transposition and
    read ``T[i][j]`` -- below the diagonal, where an upper-triangular
    matrix is structurally zero.
    """
    program = Program(name="trtri_transposed_wrong_coeff")
    t = program.declare(Operand(
        "T", 3, 3, IOType.IN,
        Properties.upper_triangular(non_singular=True)))
    x = program.declare(Operand(
        "X", 3, 3, IOType.OUT,
        Properties.lower_triangular(non_singular=True)))
    for i in range(3):
        program.add(Assign(x.element(i, i),
                           Div(Const(1.0), Ref(t.element(i, i)))))
    for i in range(1, 3):
        for j in range(i):
            # BUG (deliberate): the coefficient of the transposed input
            # lives at T[j][i]; reading T[i][j] lands in the zero half.
            program.add(Assign(
                x.element(i, j),
                Neg(Mul(Mul(Ref(x.element(i, i)), Ref(t.element(i, j))),
                        Ref(x.element(j, j))))))
    return program


def out_of_bounds_function() -> Function:
    """A C-IR function with two seeded out-of-bounds accesses.

    ``for (i = 0; i < 4; i += 1) y[i] = x[i + 1]`` reads ``x[4]`` of a
    4-element input on the last iteration, and the trailing
    ``y[4] = x[0]`` stores one past the output extent.
    """
    x = Buffer("x", 4, 1, "in")
    y = Buffer("y", 4, 1, "out")
    body = [
        For("i", 0, 4, 1, [
            Store(y, Affine.var("i"), Load(x, Affine.var("i") + 1)),
        ]),
        Store(y, Affine.constant(4), Load(x, Affine.constant(0))),
    ]
    return Function(name="oob_witness", params=[x, y], temps=[],
                    body=body, vector_width=1)
