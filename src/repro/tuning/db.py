"""The persistent tuning database: what won, where, and by how much.

A :class:`TuningRecord` captures the outcome of one empirical search --
the winning options, the pinned Stage-1 choices, the full trial log, and
the measurement backend that produced the scores.  Records are keyed by
:func:`tuning_key`, the same canonical content hashing as
:mod:`repro.service.keys` restricted to *(program, machine, vectorize)*:
tuned-best settings are a property of what is computed, on which machine
model, and within which search space (scalar vs. vector) -- independent
of the knobs being tuned, which live in the record, not the key.

**Record-composition rules.**  A record never *replaces* a caller's
options wholesale; :meth:`TuningRecord.apply` composes it over the
request's base options under three rules:

1. **Only searched knobs transfer.**  Exactly the fields named in
   :data:`TUNED_OPTION_FIELDS` may be overridden; request-identity
   fields (``function_name``, ``annotate_code``, ...) always come from
   the caller.
2. **Capabilities compose by conjunction, widths by minimum.**  Boolean
   optimization toggles apply as ``record AND base`` and the vector
   width as ``min(record, base)`` -- a record can switch an optimization
   *off* relative to what the caller allowed, but can never force one
   the caller disabled (e.g. emit AVX intrinsics for a
   ``vectorize=False`` request).
3. **Applying a record ends the search.**  The result pins the record's
   Stage-1 variant choices and sets ``autotune=False``: the tuned
   options *are* the search outcome, so the model-driven search must not
   second-guess them (and generation stays a pure function of the
   effective options, which is what the kernel cache keys on).

The on-disk layout mirrors the kernel store: one JSON document per record
under ``<root>/<key[:2]>/<key>.json``, written atomically, read
corruption-tolerantly (an undecodable record is quarantined and reported
as a miss, so tuning degrades to re-tuning, never to an exception).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Union

from ..errors import TuningDBError
from ..ioutil import LruMap, atomic_write_bytes, cache_root
from ..ir.program import Program
from ..machine.microarch import MicroArchitecture
from ..service.keys import canonical_program, machine_fingerprint
from ..slingen.options import Options

#: Bump whenever record contents change incompatibly; old records are then
#: quarantined on read and the kernels simply re-tune.
TUNING_SCHEMA_VERSION = 1

#: Option fields a tuning record is allowed to override on apply.  Request
#: identity fields (``function_name``, ``annotate_code``, ...) always come
#: from the caller's base options.
TUNED_OPTION_FIELDS = (
    "vectorize", "vector_width", "block_size", "unroll_trip_count",
    "unroll_body_limit", "use_shuffle_transpose", "load_store_analysis",
    "scalar_replacement",
)


def default_tuning_dir() -> str:
    """Root of the persistent tuning database.

    Overridable via ``REPRO_TUNING_DB``; defaults to
    ``~/.cache/repro-slingen/tuning`` (next to the kernel and object
    caches).
    """
    return cache_root("REPRO_TUNING_DB", "tuning")


def tuning_key(program: Union[Program, str],
               machine: Optional[MicroArchitecture] = None,
               constants: Optional[Dict[str, int]] = None,
               vectorize: bool = True) -> str:
    """SHA-256 content key of one *(program, machine, vectorize?)* tuning
    target.

    Uses the same canonical serialization as the kernel-service cache keys
    (:mod:`repro.service.keys`), minus the searched options: a tuning
    record must be found *before* the generation options are decided,
    since it is what decides them.  ``vectorize`` is the one base option
    that *does* key the record -- it selects a disjoint search space
    (scalar vs. AVX variants), so scalar and vectorized tuning runs must
    not clobber each other's winners.
    """
    if isinstance(program, str):
        from ..la import parse_program
        program = parse_program(program, constants or {})
    if machine is None:
        from ..machine.microarch import default_machine
        machine = default_machine()
    doc = {
        "schema": TUNING_SCHEMA_VERSION,
        "program": canonical_program(program),
        "machine": machine_fingerprint(machine),
        "vectorize": bool(vectorize),
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class TuningRecord:
    """The persisted outcome of one empirical tuning run."""

    key: str
    program_name: str
    label: str                      # registry-style label, e.g. "potrf:4"
    strategy: str
    backend: str                    # measurer name
    unit: str                       # score unit of the backend
    budget: int
    seed: int
    evaluations: int
    best_label: str                 # winning candidate label
    best_score: float
    baseline_score: float           # score of the default configuration
    options: Dict[str, object]      # tuned values for TUNED_OPTION_FIELDS
    stage1_variants: Dict[int, str]
    trials: List[Dict[str, object]] = field(default_factory=list)
    created_at: float = 0.0
    schema: int = TUNING_SCHEMA_VERSION

    @property
    def improvement(self) -> float:
        """Baseline/best score ratio (>= 1 when tuning helped)."""
        if self.best_score <= 0:
            return 1.0
        return self.baseline_score / self.best_score

    def apply(self, base: Options) -> Options:
        """The tuned generation options: ``base`` with the searched knobs
        replaced by the record's winners, the Stage-1 choices pinned, and
        the model-driven autotuner disabled (there is nothing left to
        search).

        Capability toggles compose with ``base`` by conjunction and the
        vector width never exceeds the request's -- a record can only
        switch an optimization *off* relative to what the caller allowed,
        never force one the caller disabled (e.g. emit AVX intrinsics for
        a ``vectorize=False`` request).
        """
        overrides = {name: self.options[name]
                     for name in TUNED_OPTION_FIELDS if name in self.options}
        for toggle in ("vectorize", "use_shuffle_transpose",
                       "load_store_analysis", "scalar_replacement"):
            if toggle in overrides:
                overrides[toggle] = (bool(overrides[toggle])
                                     and getattr(base, toggle))
        if "vector_width" in overrides:
            overrides["vector_width"] = min(int(overrides["vector_width"]),
                                            base.vector_width)
        return dataclasses.replace(
            base, autotune=False,
            stage1_variants=dict(self.stage1_variants), **overrides)

    def to_json(self) -> Dict[str, object]:
        doc = dataclasses.asdict(self)
        # JSON objects have string keys; restored by from_json.
        doc["stage1_variants"] = {str(k): v
                                  for k, v in self.stage1_variants.items()}
        return doc

    @classmethod
    def from_json(cls, doc: Dict[str, object]) -> "TuningRecord":
        if not isinstance(doc, dict) \
                or doc.get("schema") != TUNING_SCHEMA_VERSION:
            raise ValueError(f"unsupported tuning record: {doc!r:.80}")
        known = {f.name for f in dataclasses.fields(cls)}
        kwargs = {k: v for k, v in doc.items() if k in known}
        kwargs["stage1_variants"] = {
            int(k): str(v)
            for k, v in dict(kwargs.get("stage1_variants") or {}).items()}
        return cls(**kwargs)


class TuningDB:
    """Persistent key -> :class:`TuningRecord` store (see module docs)."""

    def __init__(self, root: Optional[str] = None, hot_capacity: int = 128):
        """``hot_capacity`` bounds the in-memory record cache: a service
        consulting the database on every request (including cache hits)
        must not pay a disk read + JSON parse per hit.  Only positive
        lookups are cached -- a miss always re-probes the filesystem, so
        records tuned by another process are picked up."""
        self.root = os.path.abspath(root or default_tuning_dir())
        try:
            os.makedirs(self.root, exist_ok=True)
        except OSError as exc:
            raise TuningDBError(
                f"cannot create tuning database root {self.root!r}: {exc}")
        self._hot: LruMap[TuningRecord] = LruMap(hot_capacity)
        self.hits = 0
        self.misses = 0
        self.hot_hits = 0
        self.corrupt_dropped = 0

    # -- paths ---------------------------------------------------------------

    def _record_path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    # -- store API -----------------------------------------------------------

    def get(self, key: str) -> Optional[TuningRecord]:
        """The stored record, or None (missing or quarantined-corrupt)."""
        hot = self._hot.get(key)
        if hot is not None:
            self.hits += 1
            self.hot_hits += 1
            return hot
        path = self._record_path(key)
        if not os.path.exists(path):
            self.misses += 1
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = TuningRecord.from_json(json.load(handle))
        except Exception:
            # Torn write, schema drift, hand-edited garbage: drop the
            # record and let the caller re-tune.
            try:
                os.unlink(path)
            except OSError:
                pass
            self.corrupt_dropped += 1
            self.misses += 1
            return None
        self._hot.insert(key, record)
        self.hits += 1
        return record

    def put(self, key: str, record: TuningRecord) -> None:
        record.key = key
        if not record.created_at:
            record.created_at = time.time()
        path = self._record_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        atomic_write_bytes(path, json.dumps(
            record.to_json(), indent=2, sort_keys=True).encode("utf-8"))
        self._hot.insert(key, record)

    def delete(self, key: str) -> bool:
        self._hot.pop(key)
        path = self._record_path(key)
        try:
            os.unlink(path)
            return True
        except OSError:
            return False

    def keys(self) -> List[str]:
        found: List[str] = []
        if not os.path.isdir(self.root):
            return found
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    found.append(name[:-len(".json")])
        return found

    def records(self) -> Iterator[TuningRecord]:
        """Every decodable record (corrupt ones are quarantined as usual)."""
        for key in self.keys():
            record = self.get(key)
            if record is not None:
                yield record

    def purge(self) -> int:
        self._hot.clear()
        removed = 0
        for key in self.keys():
            if self.delete(key):
                removed += 1
        return removed

    def best_options(self, key: str, base: Options) -> Optional[Options]:
        """The tuned options for ``key`` applied over ``base``, or None."""
        record = self.get(key)
        if record is None:
            return None
        return record.apply(base)

    def stats(self) -> Dict[str, object]:
        return {
            "backend": "tuning-db",
            "root": self.root,
            "entries": len(self.keys()),
            "hits": self.hits,
            "hot_hits": self.hot_hits,
            "misses": self.misses,
            "corrupt_dropped": self.corrupt_dropped,
        }

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._record_path(key))

    def __len__(self) -> int:
        return len(self.keys())
