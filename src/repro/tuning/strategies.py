"""Search strategies over the joint variant space of the autotuner.

The space is the cross product of the Stage-1 algorithmic choices (one
Cl1ck variant dictionary per point on the first axis) and the
code-generation variants of :mod:`repro.lgen.tiling` (second axis).  A
:class:`TuningPoint` is one coordinate pair; strategies only ever see
points and a scalar ``evaluate(point) -> score`` callback (lower is
better), so they are independent of how candidates are built or measured.

Every strategy

* evaluates the *default* point ``(0, 0)`` first, so the search result can
  never be worse than the default configuration under the measurement used
  for the search (the baseline score is part of every tuning record);
* memoizes evaluations, so revisiting a point costs no budget;
* is deterministic for a fixed seed -- required for reproducible tuning
  records.

``make_strategy("hill-climb", seed=3)`` resolves names used by the CLI and
the generator.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import AutotuningError


@dataclass(frozen=True, order=True)
class TuningPoint:
    """One coordinate of the joint search space."""

    stage1: int
    codegen: int

    @property
    def label(self) -> str:
        return f"s{self.stage1}c{self.codegen}"


class SearchSpace:
    """The joint Stage-1 x code-generation grid.

    ``codegen_variants`` may be any sequence; when its elements provide a
    ``differing_fields`` method (:class:`~repro.lgen.tiling.CodegenVariant`
    does), the hill-climbing neighborhood on the codegen axis connects
    variants that differ in exactly one knob; otherwise adjacent indices
    are neighbors.
    """

    def __init__(self, stage1_count: int, codegen_variants: Sequence[object]):
        if stage1_count < 1 or not codegen_variants:
            raise AutotuningError("search space must have at least one point")
        self.stage1_count = stage1_count
        self.codegen_variants = list(codegen_variants)

    @property
    def codegen_count(self) -> int:
        return len(self.codegen_variants)

    @property
    def size(self) -> int:
        return self.stage1_count * self.codegen_count

    def points(self) -> List[TuningPoint]:
        """Every point, deterministically ordered, default point first."""
        return [TuningPoint(s, c)
                for s in range(self.stage1_count)
                for c in range(self.codegen_count)]

    def _codegen_neighbors(self, index: int) -> List[int]:
        variants = self.codegen_variants
        probe = getattr(variants[index], "differing_fields", None)
        if probe is None:
            return [j for j in (index - 1, index + 1)
                    if 0 <= j < len(variants)]
        return [j for j in range(len(variants))
                if j != index and probe(variants[j]) == 1]

    def neighbors(self, point: TuningPoint) -> List[TuningPoint]:
        """Points one step away: any other Stage-1 choice (same codegen),
        or a codegen variant differing in exactly one knob."""
        found = [TuningPoint(s, point.codegen)
                 for s in range(self.stage1_count) if s != point.stage1]
        found.extend(TuningPoint(point.stage1, c)
                     for c in self._codegen_neighbors(point.codegen))
        return found


@dataclass
class Trial:
    """One evaluated point."""

    point: TuningPoint
    score: float


@dataclass
class SearchOutcome:
    """What a strategy hands back: the winner plus the full trial log."""

    best: TuningPoint
    best_score: float
    trials: List[Trial] = field(default_factory=list)
    strategy: str = ""

    @property
    def evaluations(self) -> int:
        return len(self.trials)

    @property
    def baseline_score(self) -> float:
        """Score of the default point (always the first trial)."""
        return self.trials[0].score if self.trials else float("nan")


class _Session:
    """Budgeted, memoizing evaluation log shared by all strategies."""

    def __init__(self, evaluate: Callable[[TuningPoint], float],
                 budget: Optional[int]):
        self._evaluate = evaluate
        self.budget = budget
        self.scores: Dict[TuningPoint, float] = {}
        self.trials: List[Trial] = []

    @property
    def exhausted(self) -> bool:
        return self.budget is not None and len(self.trials) >= self.budget

    def eval(self, point: TuningPoint) -> Optional[float]:
        """Score a point; ``None`` once the budget is spent (memoized
        revisits are free and never return None)."""
        if point in self.scores:
            return self.scores[point]
        if self.exhausted:
            return None
        score = float(self._evaluate(point))
        self.scores[point] = score
        self.trials.append(Trial(point, score))
        return score

    def outcome(self, strategy: str) -> SearchOutcome:
        if not self.trials:
            raise AutotuningError(
                f"strategy {strategy!r} evaluated no candidates")
        best = min(self.trials, key=lambda t: t.score)
        return SearchOutcome(best=best.point, best_score=best.score,
                             trials=list(self.trials), strategy=strategy)


class SearchStrategy(abc.ABC):
    """Picks which points of a :class:`SearchSpace` to evaluate."""

    name = "abstract"

    @abc.abstractmethod
    def search(self, space: SearchSpace,
               evaluate: Callable[[TuningPoint], float],
               budget: Optional[int] = None) -> SearchOutcome:
        """Run the search; ``budget`` bounds unique evaluations."""


class TwoPhaseSearch(SearchStrategy):
    """The paper-style model-driven search (and the backward-compatible
    default of :class:`~repro.slingen.generator.SLinGen`): phase 1 scores
    every Stage-1 choice with the default code generation, phase 2 scores
    the remaining codegen variants for the best algorithm."""

    name = "two-phase"

    def search(self, space, evaluate, budget=None):
        session = _Session(evaluate, budget)
        best_stage1, best_score = 0, float("inf")
        for s in range(space.stage1_count):
            score = session.eval(TuningPoint(s, 0))
            if score is None:
                break
            if score < best_score:
                best_stage1, best_score = s, score
        for c in range(1, space.codegen_count):
            if session.eval(TuningPoint(best_stage1, c)) is None:
                break
        return session.outcome(self.name)


class ExhaustiveSearch(SearchStrategy):
    """Every point in deterministic order, stopping at the budget."""

    name = "exhaustive"

    def search(self, space, evaluate, budget=None):
        session = _Session(evaluate, budget)
        for point in space.points():
            if session.eval(point) is None:
                break
        return session.outcome(self.name)


class RandomSearch(SearchStrategy):
    """Uniform sampling without replacement (after the default point)."""

    name = "random"

    def __init__(self, seed: int = 0):
        self.seed = seed

    def search(self, space, evaluate, budget=None):
        session = _Session(evaluate, budget)
        points = space.points()
        session.eval(points[0])
        rest = points[1:]
        random.Random(self.seed).shuffle(rest)
        for point in rest:
            if session.eval(point) is None:
                break
        return session.outcome(self.name)


class HillClimbSearch(SearchStrategy):
    """First-improvement hill climbing with random restarts.

    Starts at the default point, repeatedly moves to the first neighbor
    that improves on the current score, and restarts at a random unvisited
    point when stuck, until the budget is spent or the space is exhausted.
    """

    name = "hill-climb"

    def __init__(self, seed: int = 0):
        self.seed = seed

    def search(self, space, evaluate, budget=None):
        session = _Session(evaluate, budget)
        rng = random.Random(self.seed)
        current = TuningPoint(0, 0)
        if session.eval(current) is None:
            return session.outcome(self.name)
        while not session.exhausted:
            moved = False
            for neighbor in space.neighbors(current):
                fresh = neighbor not in session.scores
                score = session.eval(neighbor)
                if score is None:
                    break
                if fresh and score < session.scores[current]:
                    current = neighbor
                    moved = True
                    break
            if moved:
                continue
            unvisited = [p for p in space.points()
                         if p not in session.scores]
            if not unvisited or session.exhausted:
                break
            current = rng.choice(unvisited)
            if session.eval(current) is None:
                break
        return session.outcome(self.name)


#: CLI-facing strategy names (factories, so seeded strategies stay pure).
STRATEGIES = {
    "two-phase": lambda seed: TwoPhaseSearch(),
    "exhaustive": lambda seed: ExhaustiveSearch(),
    "random": RandomSearch,
    "hill-climb": HillClimbSearch,
}


def strategy_names() -> List[str]:
    return sorted(STRATEGIES)


def make_strategy(name: "str | SearchStrategy",
                  seed: int = 0) -> SearchStrategy:
    """Resolve a strategy name (or pass an instance through)."""
    if isinstance(name, SearchStrategy):
        return name
    try:
        factory = STRATEGIES[name]
    except KeyError:
        raise AutotuningError(
            f"unknown search strategy {name!r}; "
            f"known: {', '.join(strategy_names())}")
    return factory(seed)
