"""Measurement backends for the empirical autotuner.

The analytical roofline model of :mod:`repro.machine.roofline` has been the
only timing oracle of the generator so far; this module closes the loop
with the hardware.  Four interchangeable :class:`Measurer` backends score
a generated kernel (lower is better):

* :class:`CompiledMeasurer` -- the strongest signal: compiles the emitted C
  with the system compiler (:mod:`repro.backend.compile`) and times real
  executions -- warmup calls, median of k repeats, MAD-based outlier
  rejection.  Scores are seconds per call.
* :class:`NumPyMeasurer` -- times the kernel's NumPy translation
  (:mod:`repro.backend.numpy_backend`) with the same warmup/median/MAD
  protocol.  A real wall-clock signal with no compiler requirement; the
  auto-selected backend on compiler-less machines (CI runners, containers).
* :class:`InterpreterMeasurer` -- runs the kernel in the C-IR interpreter
  and scores it by the number of operations actually executed.  Fully
  deterministic, available everywhere, the explicit-request fallback.
* :class:`ModelMeasurer` -- the existing roofline estimate (model cycles);
  free, since the generator computes it for every candidate anyway.

:func:`resolve_measurer` picks a backend by name, honoring the
``REPRO_TUNE_BACKEND`` environment variable, and ``"auto"`` walks the
fallback order ``compiled -> numpy -> interpreter`` by availability.
"""

from __future__ import annotations

import abc
import hashlib
import os
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..backend.compile import compile_kernel, compiler_available
from ..cir.interpreter import Interpreter
from ..cir.nodes import Function
from ..errors import MeasurementError
from ..machine.microarch import MicroArchitecture
from ..machine.roofline import PerformanceEstimate, analyze_function

#: Environment variable selecting the measurement backend
#: (``compiled``/``numpy``/``interpreter``/``model``/``auto``).
BACKEND_ENV_VAR = "REPRO_TUNE_BACKEND"

#: Auto-selection order: strongest available signal wins.  The NumPy
#: backend is always available, so the interpreter and model backends
#: never auto-select; they are reachable by explicit request only.
FALLBACK_ORDER = ("compiled", "numpy", "interpreter")


@dataclass
class Measurement:
    """One scored kernel: ``score`` is comparable within one backend only."""

    score: float
    unit: str
    backend: str
    samples: List[float] = field(default_factory=list)
    rejected: int = 0


def robust_score(samples: List[float],
                 mad_threshold: float = 3.0) -> Tuple[float, int]:
    """Median with MAD-based outlier rejection.

    Samples farther than ``mad_threshold`` median-absolute-deviations from
    the median are dropped (a context switch or frequency ramp mid-run),
    and the median of the survivors is returned together with the number
    rejected.  With fewer than three samples, or when every sample is
    identical, nothing is rejected.
    """
    from ..timing import median_and_mad

    if not samples:
        raise MeasurementError("no timing samples collected")
    if len(samples) < 3:
        return statistics.median(samples), 0
    center, mad = median_and_mad(samples)
    if mad == 0.0:
        return center, 0
    kept = [s for s in samples if abs(s - center) <= mad_threshold * mad]
    if not kept:  # pragma: no cover - defensive; median is always kept
        kept = samples
    return statistics.median(kept), len(samples) - len(kept)


def synthesize_inputs(function: Function,
                      seed: int = 17) -> Dict[str, np.ndarray]:
    """Deterministic, numerically safe inputs for an arbitrary kernel.

    Square input matrices are made symmetric positive definite and
    diagonally dominant, so factorizations, triangular solves, and
    inversions all run without NaNs; everything else gets standard normal
    entries.  The same seed and parameter order always produce the same
    buffers, so interpreter-based scores are reproducible.
    """
    rng = np.random.default_rng(seed)
    inputs: Dict[str, np.ndarray] = {}
    for buf in function.params:
        if buf.kind not in ("in", "inout"):
            continue
        if buf.rows == buf.cols and buf.rows > 1:
            raw = rng.standard_normal((buf.rows, buf.cols))
            value = raw @ raw.T / buf.rows + np.eye(buf.rows) * buf.rows
        elif buf.rows == 1 and buf.cols == 1:
            value = np.abs(rng.standard_normal((1, 1))) + 1.0
        else:
            value = rng.standard_normal((buf.rows, buf.cols))
        inputs[buf.name] = value
    return inputs


class Measurer(abc.ABC):
    """Scores one generated kernel; lower scores are better."""

    name = "abstract"
    unit = ""

    @classmethod
    def available(cls) -> bool:
        """Whether this backend can run in the current environment."""
        return True

    @abc.abstractmethod
    def measure(self, function: Function,
                estimate: Optional[PerformanceEstimate] = None,
                inputs: Optional[Dict[str, np.ndarray]] = None
                ) -> Measurement:
        """Score ``function``.

        ``estimate`` is the roofline analysis the generator already ran for
        the candidate (the model backend reuses it); ``inputs`` are the
        numpy buffers to execute on (synthesized when omitted).
        """


class ModelMeasurer(Measurer):
    """The analytical roofline model as a (free) measurement backend."""

    name = "model"
    unit = "model-cycles"

    def __init__(self, machine: Optional[MicroArchitecture] = None):
        self.machine = machine

    def measure(self, function, estimate=None, inputs=None):
        if estimate is None:
            estimate = analyze_function(function, machine=self.machine)
        score = float(estimate.cycles)
        return Measurement(score=score, unit=self.unit, backend=self.name,
                           samples=[score])


class InterpreterMeasurer(Measurer):
    """Dynamic operation count from the C-IR interpreter.

    Deterministic (a pure function of the kernel and its inputs), so a
    single run suffices; the score is the number of expression evaluations
    and stores the interpreter executed.
    """

    name = "interpreter"
    unit = "ops"

    def __init__(self, seed: int = 17):
        self.seed = seed

    def measure(self, function, estimate=None, inputs=None):
        if inputs is None:
            inputs = synthesize_inputs(function, seed=self.seed)
        interpreter = Interpreter(function)
        interpreter.run(inputs)
        score = float(interpreter.executed_ops)
        return Measurement(score=score, unit=self.unit, backend=self.name,
                           samples=[score])


class CompiledMeasurer(Measurer):
    """Wall-clock timing of the compiled kernel.

    Each sample times a batch of ``inner`` calls (tiny kernels run well
    under the timer resolution) after ``warmup`` untimed batches; the score
    is the outlier-rejected median over ``repeats`` samples, in seconds per
    call.
    """

    name = "compiled"
    unit = "seconds"

    def __init__(self, repeats: int = 9, warmup: int = 2, inner: int = 32,
                 seed: int = 17):
        if repeats < 1 or warmup < 0 or inner < 1:
            raise MeasurementError(
                f"invalid timing parameters: repeats={repeats}, "
                f"warmup={warmup}, inner={inner}")
        self.repeats = repeats
        self.warmup = warmup
        self.inner = inner
        self.seed = seed

    @classmethod
    def available(cls) -> bool:
        return compiler_available()

    def measure(self, function, estimate=None, inputs=None):
        from ..backend.c_unparser import unparse_function
        from ..errors import BackendError
        if inputs is None:
            inputs = synthesize_inputs(function, seed=self.seed)
        try:
            c_code = unparse_function(function)
            # Content-keyed so the shared object lands in the persistent
            # object cache: re-tuning identical variants skips the
            # compiler, and no scratch directory is left behind.
            digest = hashlib.sha256(c_code.encode("utf-8")).hexdigest()
            kernel = compile_kernel(c_code, function,
                                    cache_key=f"tune-{digest}")
            samples = kernel.time(inputs, repeats=self.repeats,
                                  warmup=self.warmup, inner=self.inner)
        except BackendError as exc:
            raise MeasurementError(
                f"compiled measurement failed: {exc}") from exc
        score, rejected = robust_score(samples)
        return Measurement(score=score, unit=self.unit, backend=self.name,
                           samples=samples, rejected=rejected)


class NumPyMeasurer(Measurer):
    """Wall-clock timing of the kernel's NumPy translation.

    The same batched warmup/median protocol as :class:`CompiledMeasurer`,
    but executing the portable Python/NumPy lowering
    (:mod:`repro.backend.numpy_backend`) instead of compiled C -- a real
    timing signal on machines with no C compiler.  Scores are seconds per
    call and comparable only within this backend (Python dispatch overhead
    is a roughly constant multiple across candidates of one kernel, so the
    *ranking* tracks the compiled one far better than op counts do).
    """

    name = "numpy"
    unit = "seconds"

    def __init__(self, repeats: int = 9, warmup: int = 2, inner: int = 8,
                 seed: int = 17):
        if repeats < 1 or warmup < 0 or inner < 1:
            raise MeasurementError(
                f"invalid timing parameters: repeats={repeats}, "
                f"warmup={warmup}, inner={inner}")
        self.repeats = repeats
        self.warmup = warmup
        self.inner = inner
        self.seed = seed

    def measure(self, function, estimate=None, inputs=None):
        from ..backend.numpy_backend import compile_numpy_kernel
        from ..errors import BackendError
        if inputs is None:
            inputs = synthesize_inputs(function, seed=self.seed)
        try:
            # Identical variants hit the in-process compiled-source memo,
            # so re-measuring costs only the (cheap) re-translation.
            kernel = compile_numpy_kernel(function)
            samples = kernel.time(inputs, repeats=self.repeats,
                                  warmup=self.warmup, inner=self.inner)
        except BackendError as exc:
            raise MeasurementError(
                f"numpy measurement failed: {exc}") from exc
        score, rejected = robust_score(samples)
        return Measurement(score=score, unit=self.unit, backend=self.name,
                           samples=samples, rejected=rejected)


def score_function(measurer: "Measurer", function: Function,
                   estimate: Optional[PerformanceEstimate],
                   input_buffers: Dict[str, np.ndarray]
                   ) -> Tuple[float, Optional[Measurement],
                              Optional[MeasurementError]]:
    """Score one kernel for a search: ``(score, measurement, error)``.

    This is the one place the search-time measurement policy lives, shared
    by :class:`~repro.slingen.generator.SLinGen` and the
    :class:`~repro.tuning.tuner.Autotuner`: inputs are synthesized lazily
    into ``input_buffers`` (mutated in place so every candidate of one
    search runs on identical data), and a :class:`MeasurementError` maps
    to an infinite score -- a variant that cannot be measured can never
    win, but must not abort the search (scores from a different backend
    would not be comparable, so there is no model-score fallback).
    """
    if not input_buffers:
        input_buffers.update(synthesize_inputs(function))
    try:
        measurement = measurer.measure(function, estimate=estimate,
                                       inputs=input_buffers)
    except MeasurementError as exc:
        return float("inf"), None, exc
    return measurement.score, measurement, None


#: Name -> backend class, for :func:`resolve_measurer` and the CLI.
MEASURERS = {
    "model": ModelMeasurer,
    "interpreter": InterpreterMeasurer,
    "numpy": NumPyMeasurer,
    "compiled": CompiledMeasurer,
}


def measurer_names() -> List[str]:
    return ["auto"] + sorted(MEASURERS)


def resolve_measurer(spec: "str | Measurer | None" = None,
                     machine: Optional[MicroArchitecture] = None) -> Measurer:
    """Resolve a measurement backend.

    ``spec`` may be a :class:`Measurer` instance (returned as-is), a
    backend name, ``"auto"``, or ``None`` -- which consults the
    ``REPRO_TUNE_BACKEND`` environment variable before defaulting to
    ``"auto"``.  Auto-selection walks :data:`FALLBACK_ORDER` and picks the
    first backend whose requirements the environment satisfies; explicitly
    naming an unavailable backend raises :class:`MeasurementError`.
    """
    if isinstance(spec, Measurer):
        return spec
    if spec is None:
        spec = os.environ.get(BACKEND_ENV_VAR, "").strip() or "auto"
    spec = spec.lower()
    if spec == "auto":
        for name in FALLBACK_ORDER:
            if MEASURERS[name].available():
                spec = name
                break
    cls = MEASURERS.get(spec)
    if cls is None:
        raise MeasurementError(
            f"unknown measurement backend {spec!r}; "
            f"known: {', '.join(measurer_names())}")
    if not cls.available():
        raise MeasurementError(
            f"measurement backend {spec!r} is not available here "
            f"(no C compiler?)")
    if cls is ModelMeasurer:
        return ModelMeasurer(machine=machine)
    return cls()
