"""The empirical autotuner: search, measure, remember.

:class:`Autotuner` ties the subsystem together: it builds candidate
implementations over the joint Stage-1 x code-generation space (reusing
the generator's :class:`~repro.slingen.generator.CandidateBuilder`),
scores them with a :class:`~repro.tuning.measure.Measurer`, walks the
space with a :class:`~repro.tuning.strategies.SearchStrategy`, and
persists the winner as a :class:`~repro.tuning.db.TuningRecord` so later
:class:`~repro.service.service.KernelService` requests for the same
*(program, machine)* generate with the tuned options instead of searching
again.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from ..applications.cases import BenchmarkCase
from ..errors import AutotuningError
from ..ir.program import Program
from ..machine.microarch import MicroArchitecture, default_machine
from ..slingen.generator import CandidateBuilder
from ..slingen.options import Options
from ..slingen.stage1 import enumerate_variant_choices, find_hlac_sites
from ..lgen.tiling import candidate_variants, dedupe_resolved
from .db import TUNED_OPTION_FIELDS, TuningDB, TuningRecord, tuning_key
from .measure import Measurer, resolve_measurer, score_function
from .strategies import SearchStrategy, make_strategy


def tuned_option_values(options: Options, candidate) -> Dict[str, object]:
    """The :data:`TUNED_OPTION_FIELDS` values that replay ``candidate``.

    Folds the winning :class:`~repro.lgen.tiling.CodegenVariant` back into
    plain option fields (variant toggles compose with the base options by
    conjunction, exactly as :func:`~repro.slingen.generator.build_candidate`
    applies them).
    """
    codegen = candidate.codegen
    vectorized = codegen.vector_width > 1
    values = {
        "vectorize": vectorized,
        "vector_width": (codegen.vector_width if vectorized
                         else options.vector_width),
        "block_size": (codegen.block_size if codegen.block_size is not None
                       else options.block_size),
        "unroll_trip_count": codegen.unroll_trip_count,
        "unroll_body_limit": codegen.unroll_body_limit,
        "use_shuffle_transpose": codegen.use_shuffle_transpose,
        "load_store_analysis": (options.load_store_analysis
                                and codegen.load_store_analysis),
        "scalar_replacement": (options.scalar_replacement
                               and codegen.scalar_replacement),
    }
    # Keyed through the constant so this mapping and record.apply() cannot
    # drift apart silently: a knob added to one but not the other raises.
    return {name: values[name] for name in TUNED_OPTION_FIELDS}


class Autotuner:
    """Measurement-driven variant search with persistent results."""

    def __init__(self, db: Optional[TuningDB] = None,
                 machine: Optional[MicroArchitecture] = None,
                 measurer: "str | Measurer | None" = None,
                 strategy: "str | SearchStrategy" = "hill-climb",
                 budget: int = 16, seed: int = 0,
                 fix_bank: Optional[object] = None,
                 phase_cache: Optional[object] = None):
        """``db=None`` keeps results in memory only (nothing persisted).
        ``measurer=None`` auto-selects by environment (compiled timing when
        a C compiler exists, interpreter operation counts otherwise;
        ``REPRO_TUNE_BACKEND`` overrides).  ``fix_bank`` (a
        :class:`~repro.cegis.fixbank.FixBank`) composes CEGIS-verified
        rewrites into :meth:`tuned_options` results, so the tuned winner
        and the verified rewrite set ship together.  ``phase_cache`` (a
        :class:`~repro.pipeline.cache.PhaseCache`; ``None`` = the shared
        process-wide one) memoizes Stage-1/lowering artifacts, so a
        codegen-axis sweep rebuilds Stage 1 once instead of per point."""
        self.db = db
        self.fix_bank = fix_bank
        self.machine = machine or default_machine()
        self.measurer = resolve_measurer(measurer, machine=self.machine)
        self.strategy = make_strategy(strategy, seed=seed)
        self.budget = max(1, budget)
        self.seed = seed
        self.phase_cache = phase_cache

    # -- tuning --------------------------------------------------------------

    def tune(self, program: Program, options: Optional[Options] = None,
             inputs: Optional[Dict[str, np.ndarray]] = None,
             nominal_flops: Optional[float] = None,
             label: Optional[str] = None) -> TuningRecord:
        """Search the joint variant space of ``program`` and persist the
        winner (when the tuner has a database).

        ``inputs`` are the numpy buffers the empirical backends execute on
        (synthesized deterministically when omitted); they never influence
        the model backend.
        """
        options = (options or Options()).validate()
        program.validate()
        block_size = options.effective_block_size

        sites = find_hlac_sites(program, block_size)
        stage1_choices = enumerate_variant_choices(
            sites, max_candidates=self.budget)
        codegen_variants = dedupe_resolved(
            candidate_variants(vectorize=options.vectorize), block_size)

        builder = CandidateBuilder(
            program, options, self.machine, stage1_choices, codegen_variants,
            nominal_flops=nominal_flops, phase_cache=self.phase_cache)
        trials_meta: Dict[str, Dict[str, object]] = {}
        input_buffers: Dict[str, np.ndarray] = dict(inputs or {})

        def evaluate(point) -> float:
            candidate = builder.candidate(point)
            meta: Dict[str, object] = {
                "label": candidate.label,
                "stage1": point.stage1,
                "codegen": point.codegen,
                "model_cycles": candidate.cycles,
            }
            score, measurement, error = score_function(
                self.measurer, candidate.function, candidate.estimate,
                input_buffers)
            if error is not None:
                # One variant failing to compile or time must not abort
                # the whole session.  (``score: None`` in the persisted
                # trial log -- infinity is not valid JSON.)
                meta["score"] = None
                meta["error"] = str(error)
            else:
                meta["score"] = score
                meta["rejected_samples"] = measurement.rejected
            trials_meta[point.label] = meta
            return score

        outcome = self.strategy.search(builder.space(), evaluate,
                                       budget=self.budget)
        if not math.isfinite(outcome.best_score):
            raise AutotuningError(
                f"every measured candidate of {label or program.name!r} "
                f"failed on the {self.measurer.name!r} backend")
        best = builder.candidate(outcome.best)
        baseline_score = outcome.baseline_score
        if not math.isfinite(baseline_score):
            # The default configuration itself failed to measure; the best
            # score is the only honest finite reference (records must stay
            # valid JSON, so no infinities).
            baseline_score = outcome.best_score
        key = tuning_key(program, self.machine,
                         vectorize=options.vectorize)
        record = TuningRecord(
            key=key,
            program_name=program.name,
            label=label or program.name,
            strategy=outcome.strategy,
            backend=self.measurer.name,
            unit=self.measurer.unit,
            budget=self.budget,
            seed=self.seed,
            evaluations=outcome.evaluations,
            best_label=best.label,
            best_score=outcome.best_score,
            baseline_score=baseline_score,
            options=tuned_option_values(options, best),
            stage1_variants=dict(best.stage1.variant_choices),
            trials=[trials_meta[t.point.label] for t in outcome.trials],
        )
        if self.db is not None:
            self.db.put(key, record)
        return record

    def tune_case(self, case: BenchmarkCase,
                  options: Optional[Options] = None,
                  label: Optional[str] = None) -> TuningRecord:
        """Tune one registry/benchmark case, measuring on its canonical
        inputs (the same buffers the correctness checks use)."""
        return self.tune(case.program, options=options,
                         inputs=case.make_inputs(seed=17),
                         nominal_flops=case.nominal_flops,
                         label=label or f"{case.name}:{case.size}")

    # -- consumption ---------------------------------------------------------

    def tuned_options(self, program: Program, base: Optional[Options] = None,
                      tune_if_missing: bool = True,
                      case: Optional[BenchmarkCase] = None
                      ) -> Optional[Options]:
        """Generation options honoring the tuned record for ``program``.

        Consults the database first (tuning is idempotent per key); on a
        miss, runs a tuning session when ``tune_if_missing`` -- using the
        case's canonical inputs when one is supplied -- and otherwise
        returns None.
        """
        base = (base or Options()).validate()
        record = None
        if self.db is not None:
            record = self.db.get(tuning_key(program, self.machine,
                                            vectorize=base.vectorize))
        if record is None:
            if not tune_if_missing:
                return None
            if case is not None:
                record = self.tune_case(case, options=base)
            else:
                record = self.tune(program, options=base)
        tuned = record.apply(base)
        if self.fix_bank is not None:
            from ..cegis.fixbank import fixbank_key
            banked = self.fix_bank.verified_options(
                fixbank_key(program, self.machine,
                            vectorize=base.vectorize), base=tuned)
            if banked is not None:
                tuned = banked
        return tuned

    def tuned_options_for_case(self, case: BenchmarkCase,
                               base: Optional[Options] = None) -> Options:
        """Tuned options for a benchmark case (tuning it on first use)."""
        return self.tuned_options(case.program, base=base, case=case)
