"""Empirical autotuning: measurement-driven variant search with a
persistent tuning database.

The subsystem has four layers:

* :mod:`repro.tuning.measure` -- interchangeable measurement backends
  (compiled wall-clock timing, NumPy-translation wall-clock timing,
  interpreter operation counts, the roofline model), auto-selected by
  environment;
* :mod:`repro.tuning.strategies` -- pluggable search strategies over the
  joint Stage-1 x code-generation variant space (two-phase, exhaustive,
  random, hill-climb), all deterministic under a fixed seed;
* :mod:`repro.tuning.db` -- the persistent :class:`TuningDB`, keyed by the
  same canonical content hashes as the kernel service;
* :mod:`repro.tuning.tuner` -- the :class:`Autotuner` that ties them
  together and is also reachable as ``python -m repro.tuning``.
"""

from .db import (TUNING_SCHEMA_VERSION, TuningDB, TuningRecord,
                 default_tuning_dir, tuning_key)
from .measure import (CompiledMeasurer, InterpreterMeasurer, Measurement,
                      Measurer, ModelMeasurer, NumPyMeasurer, measurer_names,
                      resolve_measurer, robust_score, score_function,
                      synthesize_inputs)
from .strategies import (ExhaustiveSearch, HillClimbSearch, RandomSearch,
                         SearchOutcome, SearchSpace, SearchStrategy,
                         TuningPoint, TwoPhaseSearch, make_strategy,
                         strategy_names)
from .tuner import Autotuner, tuned_option_values

__all__ = [
    "TUNING_SCHEMA_VERSION", "TuningDB", "TuningRecord",
    "default_tuning_dir", "tuning_key",
    "CompiledMeasurer", "InterpreterMeasurer", "Measurement", "Measurer",
    "ModelMeasurer", "NumPyMeasurer", "measurer_names", "resolve_measurer",
    "robust_score", "score_function", "synthesize_inputs",
    "ExhaustiveSearch", "HillClimbSearch", "RandomSearch", "SearchOutcome",
    "SearchSpace", "SearchStrategy", "TuningPoint", "TwoPhaseSearch",
    "make_strategy", "strategy_names",
    "Autotuner", "tuned_option_values",
]
