"""Command-line front-end of the empirical autotuner.

Usage (``PYTHONPATH=src python -m repro.tuning <command>``)::

    tune   SPEC ... [--strategy S] [--budget N] [--seed N]
                    [--backend auto|compiled|numpy|interpreter|model]
                    [--scalar] [--json]
    report [SPEC ...] [--json]      # show records (all, or for the specs);
                                    # --json emits the stable machine schema
    export [--output FILE]          # dump every record as JSON
    purge  [--yes] [--json]         # drop every tuning record

A SPEC is ``name:size`` (``potrf:12``) or ``name:sizexk`` (``kf:8x4``) --
the same workload addresses the kernel service uses.  The database root
defaults to ``~/.cache/repro-slingen/tuning`` and can be moved with
``--db`` or the ``REPRO_TUNING_DB`` environment variable.  ``report``
exits non-zero when a requested spec has no record yet, so scripts (and
CI) can assert that a tuning run landed.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..cli import (EXIT_FAILURE, EXIT_OK, add_json_flag, confirm, fail,
                   print_json)
from ..errors import ReproError
from ..slingen.options import Options
from .db import TuningDB, default_tuning_dir, tuning_key
from .measure import measurer_names
from .strategies import strategy_names
from .tuner import Autotuner


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tuning",
        description="Empirically tune kernels and manage tuning records.")
    parser.add_argument("--db", default=None, metavar="DIR",
                        help=f"database root "
                             f"(default: {default_tuning_dir()})")
    sub = parser.add_subparsers(dest="command", required=True)

    tune = sub.add_parser("tune", help="search variants for workloads and "
                                       "persist the winners")
    tune.add_argument("specs", nargs="+", metavar="SPEC",
                      help="workloads to tune, e.g. potrf:4 kf:8x4")
    tune.add_argument("--strategy", default="hill-climb",
                      choices=strategy_names())
    tune.add_argument("--budget", type=int, default=8,
                      help="max candidate evaluations per workload")
    tune.add_argument("--seed", type=int, default=0)
    tune.add_argument("--backend", default=None, choices=measurer_names(),
                      help="measurement backend (default: auto / "
                           "$REPRO_TUNE_BACKEND)")
    tune.add_argument("--scalar", action="store_true",
                      help="tune scalar (non-vectorized) kernels")
    add_json_flag(tune)

    report = sub.add_parser("report", help="show tuning records")
    report.add_argument("specs", nargs="*", metavar="SPEC",
                        help="workloads to report (default: every record)")
    report.add_argument("--scalar", action="store_true",
                        help="look up the scalar-tuned records for the "
                             "given specs")
    add_json_flag(report, help="emit a machine-readable report (stable "
                               "schema, see REPORT_SCHEMA_VERSION) "
                               "instead of the human-readable table")

    export = sub.add_parser("export", help="dump records as JSON")
    export.add_argument("--output", default=None, metavar="FILE",
                        help="write to FILE instead of stdout")
    add_json_flag(export, help="accepted for consistency (export is "
                               "always JSON)")

    purge = sub.add_parser("purge", help="drop every tuning record")
    purge.add_argument("--yes", action="store_true",
                       help="do not ask for confirmation")
    add_json_flag(purge)
    return parser


#: Version of the ``report --json`` document.  The document is
#: ``{"schema": N, "db_root": str, "requested": [SPEC...] | null,
#: "missing": [SPEC...], "records": [RECORD...]}`` where each RECORD has
#: exactly the keys of :func:`_record_json`.  Scripts and CI assert
#: against this shape; bump the version on any incompatible change.
REPORT_SCHEMA_VERSION = 1


def _record_json(record, spec: Optional[str] = None) -> dict:
    """The stable machine-readable projection of one tuning record."""
    return {
        "spec": spec if spec is not None else record.label,
        "label": record.label,
        "program": record.program_name,
        "key": record.key,
        "strategy": record.strategy,
        "backend": record.backend,
        "unit": record.unit,
        "budget": record.budget,
        "seed": record.seed,
        "evaluations": record.evaluations,
        "best_label": record.best_label,
        "best_score": record.best_score,
        "baseline_score": record.baseline_score,
        "improvement": record.improvement,
        "created_at": record.created_at,
    }


def _record_line(record) -> str:
    return (f"{record.label:14s} {record.strategy:10s} "
            f"{record.backend:11s} {record.evaluations:3d} evals  "
            f"best {record.best_score:.6g} {record.unit} "
            f"(baseline {record.baseline_score:.6g}, "
            f"x{record.improvement:.3f})  {record.best_label}")


def _cmd_tune(db: TuningDB, args: argparse.Namespace) -> int:
    from ..service.registry import build_case, parse_spec
    options = Options(vectorize=not args.scalar, annotate_code=False)
    tuner = Autotuner(db=db, measurer=args.backend, strategy=args.strategy,
                      budget=args.budget, seed=args.seed)
    records = []
    for text in args.specs:
        spec = parse_spec(text)
        record = tuner.tune_case(build_case(spec), options=options,
                                 label=spec.label)
        records.append((text, record))
        if not args.as_json:
            print(f"{_record_line(record)}  {record.key[:12]}")
    if args.as_json:
        print_json({"schema": REPORT_SCHEMA_VERSION,
                    "db_root": db.root,
                    "backend": tuner.measurer.name,
                    "records": [_record_json(record, spec)
                                for spec, record in records]})
    else:
        print(f"tuned {len(args.specs)} workload(s) with "
              f"{tuner.measurer.name} measurements into {db.root}")
    return EXIT_OK


def _cmd_report(db: TuningDB, args: argparse.Namespace) -> int:
    found: List[tuple] = []          # (spec-or-None, record)
    missing: List[str] = []
    if args.specs:
        from ..service.registry import build_case, parse_spec
        for text in args.specs:
            case = build_case(parse_spec(text))
            record = db.get(tuning_key(case.program,
                                       vectorize=not args.scalar))
            if record is None:
                missing.append(text)
            else:
                found.append((text, record))
    else:
        found = [(None, record)
                 for record in sorted(db.records(), key=lambda r: r.label)]

    if args.as_json:
        print_json({
            "schema": REPORT_SCHEMA_VERSION,
            "db_root": db.root,
            "requested": list(args.specs) or None,
            "missing": missing,
            "records": [_record_json(record, spec)
                        for spec, record in found],
        })
        return EXIT_FAILURE if missing else EXIT_OK

    for text in missing:
        print(f"{text}: no tuning record")
    for _, record in found:
        print(_record_line(record))
    if not args.specs:
        if not found:
            print("tuning database is empty")
        else:
            print(f"{len(found)} record(s) in {db.root}")
    return EXIT_FAILURE if missing else EXIT_OK


def _cmd_export(db: TuningDB, args: argparse.Namespace) -> int:
    doc = [record.to_json() for record in db.records()]
    text = json.dumps(doc, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"exported {len(doc)} record(s) to {args.output}")
    else:
        print(text)
    return EXIT_OK


def _cmd_purge(db: TuningDB, args: argparse.Namespace) -> int:
    if not confirm(f"purge every tuning record under {db.root}?",
                   assume_yes=args.yes):
        print("aborted")
        return EXIT_FAILURE
    removed = db.purge()
    if args.as_json:
        print_json({"purged": removed})
    else:
        print(f"purged {removed} record(s)")
    return EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        db = TuningDB(root=args.db)
        if args.command == "tune":
            return _cmd_tune(db, args)
        if args.command == "report":
            return _cmd_report(db, args)
        if args.command == "export":
            return _cmd_export(db, args)
        if args.command == "purge":
            return _cmd_purge(db, args)
    except ReproError as exc:
        return fail(exc)
    return EXIT_OK  # pragma: no cover - argparse enforces a command


if __name__ == "__main__":
    sys.exit(main())
