"""The stable public API of the repro package.

Everything an application needs lives behind this one module, so user
code (and ``examples/``, and the README) never imports submodule paths
that are free to move between releases::

    from repro.api import Options, generate, make_executor, parse_program

    program = parse_program(source, constants={"n": 8})
    code = generate(program, Options(vectorize=True))
    kernel = make_executor(code.function, c_code=code.c_code)
    outputs = kernel.run(inputs)

Three layers, smallest first:

* **One-shot generation** -- :func:`generate` (or :class:`SLinGen` for a
  reusable generator with an explicit store/phase cache), with
  :class:`Options` as the single knob surface and
  :class:`GeneratedCode`/:class:`GenerationResult` as the outputs.
* **Execution** -- :func:`make_executor` turns a generated function into
  a runnable kernel on any available backend (C-IR interpreter, NumPy,
  compiled C when a compiler resolves).
* **Serving** -- :class:`KernelService` with a
  :class:`DiskKernelStore`/:class:`MemoryKernelStore` answers repeated
  requests cache-first; :func:`make_request` and
  :class:`GenerationRequest` address the registry workloads.

The staged pipeline underneath (:mod:`repro.pipeline`) is re-exported
via :class:`PhaseCache`/:func:`shared_phase_cache` for callers that
manage artifact reuse explicitly; by default every entry point above
already shares one process-wide cache.
"""

from __future__ import annotations

from .backend import make_executor
from .errors import ReproError
from .la import parse_program
from .pipeline.cache import PhaseCache, shared_phase_cache
from .service.registry import make_request
from .service.service import GenerationRequest, KernelService
from .service.store import DiskKernelStore, MemoryKernelStore
from .slingen.generator import (GeneratedCode, GenerationResult, SLinGen,
                                generate)
from .slingen.options import Options

__all__ = [
    "DiskKernelStore",
    "GeneratedCode",
    "GenerationRequest",
    "GenerationResult",
    "KernelService",
    "MemoryKernelStore",
    "Options",
    "PhaseCache",
    "ReproError",
    "SLinGen",
    "generate",
    "make_executor",
    "make_request",
    "parse_program",
    "shared_phase_cache",
]
