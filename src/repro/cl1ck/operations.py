"""Recognition of HLAC statements (the operations Cl1ck can synthesize).

Stage 1 of SLinGen walks the input LA program and collects every HLAC
(paper Sec. 3.1, "Identifying HLACs"): statements with an expression on the
left-hand side, or with a matrix inverse on the right-hand side.  This
module classifies each such statement into one of the supported operation
kinds -- the same set the paper evaluates (Table 3) plus the triangular
solves needed by the applications:

======================  =============================================
kind                    equation
======================  =============================================
``cholesky_upper``      ``U^T * U = S``   (U upper triangular, S SPD)
``cholesky_lower``      ``L * L^T = S``   (L lower triangular, S SPD)
``trsm``                ``op(T) * X = B`` (T triangular, X unknown)
``trtri``               ``X = T^{-1}``    (T triangular)
``trsyl``               ``L * X + X * U = C``
``trlya``               ``L * X + X * L^T = S``  (X symmetric)
======================  =============================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import UnsupportedHLACError
from ..ir.expr import Add, Expr, Inverse, Mul, Ref, Transpose
from ..ir.operands import Operand, View
from ..ir.program import Assign, Equation, Statement
from ..ir.properties import Structure


@dataclass
class OperationInstance:
    """A recognized HLAC with its role-assigned operand views."""

    kind: str
    #: role name -> operand view (e.g. "factor", "rhs", "unknown")
    views: Dict[str, View] = field(default_factory=dict)
    #: extra boolean/str flags (e.g. transposed coefficient, lower/upper)
    flags: Dict[str, object] = field(default_factory=dict)
    statement: Optional[Statement] = None

    @property
    def size(self) -> int:
        """Problem size n (order of the triangular/SPD operand)."""
        for role in ("factor", "coefficient", "unknown"):
            if role in self.views:
                return self.views[role].rows
        raise UnsupportedHLACError(f"operation {self.kind} has no sized view")

    def signature(self) -> Tuple:
        """A hashable signature used by the algorithm database (Stage 1a).

        Two HLACs that share functionality and sizes map to the same
        signature, enabling algorithm reuse across statements.
        """
        shape_items = tuple(sorted(
            (role, view.rows, view.cols) for role, view in self.views.items()))
        flag_items = tuple(sorted((k, str(v)) for k, v in self.flags.items()))
        return (self.kind, shape_items, flag_items)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        roles = ", ".join(f"{k}={v!r}" for k, v in self.views.items())
        return f"OperationInstance({self.kind}, {roles}, {self.flags})"


# ---------------------------------------------------------------------------
# Pattern matching helpers
# ---------------------------------------------------------------------------


def _as_leaf(expr: Expr) -> Optional[Tuple[View, bool]]:
    """Match ``Ref(v)`` or ``Transpose(Ref(v))`` -> (view, transposed)."""
    if isinstance(expr, Ref):
        return expr.view, False
    if isinstance(expr, Transpose) and isinstance(expr.child, Ref):
        return expr.child.view, True
    return None


def _is_output(view: View) -> bool:
    return view.operand.is_output


def _is_triangular(view: View) -> bool:
    return view.operand.properties.is_triangular and view.rows == view.cols


def _triangle(view: View, transposed: bool) -> str:
    """'lower' or 'upper' of op(view) for a triangular operand."""
    structure = view.operand.properties.structure
    lower = structure is Structure.LOWER_TRIANGULAR
    if transposed:
        lower = not lower
    return "lower" if lower else "upper"


# ---------------------------------------------------------------------------
# Recognition
# ---------------------------------------------------------------------------


def recognize(statement: Statement) -> OperationInstance:
    """Classify an HLAC statement; raises UnsupportedHLACError otherwise."""
    if isinstance(statement, Assign) and statement.is_hlac():
        return _recognize_inverse(statement)
    if isinstance(statement, Equation):
        return _recognize_equation(statement)
    raise UnsupportedHLACError(f"statement {statement!r} is not an HLAC")


def _recognize_inverse(statement: Assign) -> OperationInstance:
    rhs = statement.rhs
    if isinstance(rhs, Inverse):
        leaf = _as_leaf(rhs.child)
        if leaf is not None and _is_triangular(leaf[0]):
            view, transposed = leaf
            return OperationInstance(
                kind="trtri",
                views={"coefficient": view, "unknown": statement.lhs},
                flags={"uplo": _triangle(view, transposed),
                       "transposed": transposed},
                statement=statement)
    raise UnsupportedHLACError(
        f"unsupported inverse expression {statement.rhs!r}; only inverses of "
        f"triangular matrices are supported (general inverses should be "
        f"written as a factorization followed by triangular solves)")


def _recognize_equation(statement: Equation) -> OperationInstance:
    lhs, rhs = statement.lhs, statement.rhs

    # Cholesky: U^T * U = S  or  L * L^T = S
    if isinstance(lhs, Mul):
        left = _as_leaf(lhs.left)
        right = _as_leaf(lhs.right)
        if left and right and left[0].operand is right[0].operand \
                and _is_output(left[0]):
            rhs_leaf = _as_leaf(rhs)
            if rhs_leaf is None or rhs_leaf[1]:
                raise UnsupportedHLACError(
                    f"Cholesky right-hand side must be a plain operand, got "
                    f"{rhs!r}")
            if left[1] and not right[1]:
                return OperationInstance(
                    kind="cholesky_upper",
                    views={"factor": left[0], "rhs": rhs_leaf[0]},
                    statement=statement)
            if not left[1] and right[1]:
                return OperationInstance(
                    kind="cholesky_lower",
                    views={"factor": left[0], "rhs": rhs_leaf[0]},
                    statement=statement)

    # Triangular solve: op(T) * X = B with T known triangular, X unknown.
    if isinstance(lhs, Mul):
        coeff = _as_leaf(lhs.left)
        unknown = _as_leaf(lhs.right)
        if coeff and unknown and _is_triangular(coeff[0]) \
                and _is_output(unknown[0]) and not unknown[1]:
            rhs_leaf = _as_leaf(rhs)
            if rhs_leaf is not None and not rhs_leaf[1]:
                return OperationInstance(
                    kind="trsm",
                    views={"coefficient": coeff[0], "unknown": unknown[0],
                           "rhs": rhs_leaf[0]},
                    flags={"uplo": _triangle(coeff[0], coeff[1]),
                           "transposed": coeff[1]},
                    statement=statement)

    # Sylvester / Lyapunov: L*X + X*U = C  /  L*X + X*L^T = S
    if isinstance(lhs, Add) and isinstance(lhs.left, Mul) \
            and isinstance(lhs.right, Mul):
        first_coeff = _as_leaf(lhs.left.left)
        first_unknown = _as_leaf(lhs.left.right)
        second_unknown = _as_leaf(lhs.right.left)
        second_coeff = _as_leaf(lhs.right.right)
        rhs_leaf = _as_leaf(rhs)
        if (first_coeff and first_unknown and second_unknown and second_coeff
                and rhs_leaf and not rhs_leaf[1]
                and first_unknown[0].operand is second_unknown[0].operand
                and _is_output(first_unknown[0])
                and _is_triangular(first_coeff[0])
                and _is_triangular(second_coeff[0])):
            same_coeff = first_coeff[0].operand is second_coeff[0].operand
            if same_coeff and second_coeff[1] and not first_coeff[1] \
                    and _triangle(first_coeff[0], False) == "lower":
                return OperationInstance(
                    kind="trlya",
                    views={"coefficient": first_coeff[0],
                           "unknown": first_unknown[0],
                           "rhs": rhs_leaf[0]},
                    statement=statement)
            if not first_coeff[1] and not second_coeff[1] \
                    and _triangle(first_coeff[0], False) == "lower" \
                    and _triangle(second_coeff[0], False) == "upper":
                return OperationInstance(
                    kind="trsyl",
                    views={"coefficient_left": first_coeff[0],
                           "coefficient_right": second_coeff[0],
                           "unknown": first_unknown[0],
                           "rhs": rhs_leaf[0]},
                    statement=statement)

    raise UnsupportedHLACError(
        f"HLAC statement {statement!r} does not match any supported "
        f"operation (Cholesky, triangular solve, triangular inverse, "
        f"Sylvester, Lyapunov)")


def collect_hlacs(statements: List[Statement]) -> List[Tuple[int, OperationInstance]]:
    """Return (index, recognized operation) for every HLAC statement."""
    found: List[Tuple[int, OperationInstance]] = []
    for index, statement in enumerate(statements):
        if statement.is_hlac():
            found.append((index, recognize(statement)))
    return found
