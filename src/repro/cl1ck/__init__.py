"""Cl1ck-style HLAC synthesis: operation recognition, algorithms, database."""

from .algorithms import Synthesizer
from .database import AlgorithmDatabase, DatabaseEntry
from .operations import OperationInstance, collect_hlacs, recognize

__all__ = [
    "Synthesizer", "AlgorithmDatabase", "DatabaseEntry",
    "OperationInstance", "collect_hlacs", "recognize",
]
