"""Synthesis of loop-based algorithms for HLACs (Stage 1 back end).

For every recognized HLAC, this module produces one or more *algorithmic
variants*: sequences of sBLACs and auxiliary scalar computations on views of
the operands (a "basic linear algebra program" fragment, paper Sec. 3.1).
Blocked variants partition the operands with block size ``nu`` (the vector
width) so the resulting sBLACs are large enough to vectorize; the
vector-size diagonal blocks are expanded into unrolled codelets of scalar
statements and short row operations, exactly like the codelet synthesis of
Fig. 9/10 in the paper.  Scalar reciprocals are emitted in the
``tau = 1/alpha; row = tau * (...)`` form of rewrite rule R1 (Table 2).

Because all operand sizes are fixed, the outer FLAME-style loops are emitted
fully unrolled: each "iteration" contributes statements on concrete views.

The variants offered per operation:

=================  =========================================================
``cholesky_*``     ``blocked`` (left-looking), ``right-looking`` (only when
                   the right-hand side is writable), ``unblocked``
``trsm``           ``blocked`` (by row blocks), ``unblocked`` (row-wise)
``trtri``          ``blocked`` (left-looking), ``unblocked`` (column-wise)
``trsyl``          ``columnwise``, ``blocked`` (by column blocks)
``trlya``          ``columnwise``, ``gemv`` (hoists the cross-column update)
=================  =========================================================
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional

from ..errors import SynthesisError
from ..ir.expr import (Add, Const, Div, Expr, Mul, Neg, Ref, Sqrt, Sub,
                       Transpose, ref)
from ..ir.operands import IOType, Operand, View
from ..ir.program import Assign, Program, Statement
from ..ir.properties import Properties
from .operations import OperationInstance


class Synthesizer:
    """Expands recognized HLACs into basic-program statements.

    Parameters
    ----------
    program:
        The basic program under construction; temporaries are declared here.
    block_size:
        The blocking factor nu (normally the vector width).
    """

    #: Fallback counter so temporaries are uniquely named across synthesizer
    #: instances.  Stage-1 expansions are cached in the algorithm database and
    #: may be spliced into several candidate programs; per-instance counters
    #: would let unrelated temporaries collide on the same name (and thus the
    #: same C buffer).  Callers that need deterministic output (the kernel
    #: cache hashes it) pass the per-run counter of their AlgorithmDatabase
    #: instead of relying on this process-global one.
    _shared_counter = itertools.count()

    def __init__(self, program: Program, block_size: int = 4,
                 temp_prefix: str = "c1",
                 counter: Optional[Iterator[int]] = None):
        self.program = program
        self.block_size = max(1, block_size)
        self._counter = counter if counter is not None \
            else Synthesizer._shared_counter
        self._prefix = temp_prefix

    # -- public API -------------------------------------------------------------

    def variants_for(self, op: OperationInstance) -> List[str]:
        """Names of the algorithmic variants available for an operation."""
        if op.kind in ("cholesky_upper", "cholesky_lower"):
            variants = ["blocked", "unblocked"]
            if op.views["rhs"].operand.is_output:
                variants.insert(1, "right-looking")
            return variants
        if op.kind == "trsm":
            return ["blocked", "unblocked"]
        if op.kind == "trtri":
            return ["blocked", "unblocked"]
        if op.kind == "trsyl":
            return ["blocked", "columnwise"]
        if op.kind == "trlya":
            return ["gemv", "columnwise"]
        raise SynthesisError(f"unknown operation kind {op.kind!r}")

    def expand(self, op: OperationInstance,
               variant: Optional[str] = None) -> List[Statement]:
        """Expand one HLAC into basic-program statements."""
        variant = variant or self.variants_for(op)[0]
        if variant not in self.variants_for(op):
            raise SynthesisError(
                f"variant {variant!r} is not available for {op.kind}; "
                f"choose one of {self.variants_for(op)}")
        if op.kind == "cholesky_upper":
            return self._cholesky_upper(op, variant)
        if op.kind == "cholesky_lower":
            return self._cholesky_lower(op, variant)
        if op.kind == "trsm":
            return self._trsm(op, variant)
        if op.kind == "trtri":
            return self._trtri(op, variant)
        if op.kind == "trsyl":
            return self._trsyl(op, variant)
        if op.kind == "trlya":
            return self._trlya(op, variant)
        raise SynthesisError(f"unknown operation kind {op.kind!r}")

    # -- helpers ----------------------------------------------------------------

    def _temp(self, rows: int, cols: int) -> View:
        operand = Operand(f"{self._prefix}_t{next(self._counter)}", rows, cols,
                          IOType.OUT, Properties())
        self.program.declare(operand)
        return operand.full_view()

    def _tau(self) -> View:
        return self._temp(1, 1)

    @staticmethod
    def _blk(view: View, r0: int, r1: int, c0: int, c1: int) -> View:
        return view.sub(r0, c0, r1 - r0, c1 - c0)

    def _reciprocal(self, denominator: Expr,
                    stmts: List[Statement]) -> View:
        """Emit ``tau = 1 / denominator`` (rule R1) and return tau's view."""
        tau = self._tau()
        stmts.append(Assign(tau, Div(Const(1.0), denominator)))
        return tau

    # =================================================================
    # Cholesky
    # =================================================================

    def _chol_upper_unblocked(self, factor: View, source: View,
                              stmts: List[Statement]) -> None:
        """Unrolled codelet for ``U^T U = T`` on a small block.

        ``factor`` is the b x b destination block of U, ``source`` the b x b
        matrix to factor (already containing any Schur-complement update).
        Only the upper triangle of ``source`` is read.
        """
        b = factor.rows
        for r in range(b):
            diag_src: Expr = ref(source.sub(r, r, 1, 1))
            if r > 0:
                col = factor.sub(0, r, r, 1)
                diag_src = Sub(diag_src, Mul(Transpose(ref(col)), ref(col)))
            stmts.append(Assign(factor.sub(r, r, 1, 1), Sqrt(diag_src)))
            if r + 1 < b:
                tau = self._reciprocal(ref(factor.sub(r, r, 1, 1)), stmts)
                row_dest = factor.sub(r, r + 1, 1, b - r - 1)
                row_src = source.sub(r, r + 1, 1, b - r - 1)
                rhs: Expr = Mul(ref(tau), ref(row_src))
                if r > 0:
                    col = factor.sub(0, r, r, 1)
                    panel = factor.sub(0, r + 1, r, b - r - 1)
                    rhs = Sub(rhs, Mul(ref(tau),
                                       Mul(Transpose(ref(col)), ref(panel))))
                stmts.append(Assign(row_dest, rhs))

    def _chol_lower_unblocked(self, factor: View, source: View,
                              stmts: List[Statement]) -> None:
        """Unrolled codelet for ``L L^T = T`` on a small block."""
        b = factor.rows
        for r in range(b):
            for c in range(r):
                tau = self._reciprocal(ref(factor.sub(c, c, 1, 1)), stmts)
                value: Expr = Mul(ref(tau), ref(source.sub(r, c, 1, 1)))
                if c > 0:
                    row_r = factor.sub(r, 0, 1, c)
                    row_c = factor.sub(c, 0, 1, c)
                    value = Sub(value, Mul(ref(tau),
                                           Mul(ref(row_r),
                                               Transpose(ref(row_c)))))
                stmts.append(Assign(factor.sub(r, c, 1, 1), value))
            diag_src: Expr = ref(source.sub(r, r, 1, 1))
            if r > 0:
                row = factor.sub(r, 0, 1, r)
                diag_src = Sub(diag_src, Mul(ref(row), Transpose(ref(row))))
            stmts.append(Assign(factor.sub(r, r, 1, 1), Sqrt(diag_src)))

    def _chol_trsm_rows(self, diag: View, panel_dest: View, panel_src: View,
                        stmts: List[Statement]) -> None:
        """Solve ``diag^T * panel_dest = panel_src`` row by row (diag upper)."""
        b = diag.rows
        for r in range(b):
            tau = self._reciprocal(ref(diag.sub(r, r, 1, 1)), stmts)
            rhs: Expr = Mul(ref(tau), ref(panel_src.sub(r, 0, 1,
                                                        panel_src.cols)))
            if r > 0:
                col = diag.sub(0, r, r, 1)
                above = panel_dest.sub(0, 0, r, panel_dest.cols)
                rhs = Sub(rhs, Mul(ref(tau),
                                   Mul(Transpose(ref(col)), ref(above))))
            stmts.append(Assign(panel_dest.sub(r, 0, 1, panel_dest.cols), rhs))

    def _cholesky_upper(self, op: OperationInstance,
                        variant: str) -> List[Statement]:
        factor, source = op.views["factor"], op.views["rhs"]
        n = factor.rows
        nb = n if variant == "unblocked" else self.block_size
        stmts: List[Statement] = []
        for i in range(0, n, nb):
            b = min(nb, n - i)
            diag_dest = self._blk(factor, i, i + b, i, i + b)
            rest = n - i - b
            if variant == "right-looking":
                diag_src = self._blk(source, i, i + b, i, i + b)
                self._chol_upper_unblocked(diag_dest, diag_src, stmts)
                if rest:
                    panel_dest = self._blk(factor, i, i + b, i + b, n)
                    panel_src = self._blk(source, i, i + b, i + b, n)
                    self._chol_trsm_rows(diag_dest, panel_dest, panel_src,
                                         stmts)
                    trailing = self._blk(source, i + b, i + b + rest,
                                         i + b, n)
                    stmts.append(Assign(
                        trailing,
                        Sub(ref(trailing),
                            Mul(Transpose(ref(panel_dest)),
                                ref(panel_dest)))))
            else:
                diag_src = self._blk(source, i, i + b, i, i + b)
                if i > 0:
                    above = self._blk(factor, 0, i, i, i + b)
                    block_temp = self._temp(b, b)
                    stmts.append(Assign(
                        block_temp,
                        Sub(ref(diag_src),
                            Mul(Transpose(ref(above)), ref(above)))))
                    diag_src = block_temp
                self._chol_upper_unblocked(diag_dest, diag_src, stmts)
                if rest:
                    panel_src = self._blk(source, i, i + b, i + b, n)
                    if i > 0:
                        above_left = self._blk(factor, 0, i, i, i + b)
                        above_right = self._blk(factor, 0, i, i + b, n)
                        panel_temp = self._temp(b, rest)
                        stmts.append(Assign(
                            panel_temp,
                            Sub(ref(panel_src),
                                Mul(Transpose(ref(above_left)),
                                    ref(above_right)))))
                        panel_src = panel_temp
                    panel_dest = self._blk(factor, i, i + b, i + b, n)
                    self._chol_trsm_rows(diag_dest, panel_dest, panel_src,
                                         stmts)
        return stmts

    def _cholesky_lower(self, op: OperationInstance,
                        variant: str) -> List[Statement]:
        factor, source = op.views["factor"], op.views["rhs"]
        n = factor.rows
        nb = n if variant == "unblocked" else self.block_size
        stmts: List[Statement] = []
        for i in range(0, n, nb):
            b = min(nb, n - i)
            diag_dest = self._blk(factor, i, i + b, i, i + b)
            rest = n - i - b
            if variant == "right-looking":
                diag_src = self._blk(source, i, i + b, i, i + b)
                self._chol_lower_unblocked(diag_dest, diag_src, stmts)
                if rest:
                    panel_dest = self._blk(factor, i + b, n, i, i + b)
                    panel_src = self._blk(source, i + b, n, i, i + b)
                    self._chol_lower_panel(diag_dest, panel_dest, panel_src,
                                           stmts)
                    trailing = self._blk(source, i + b, n, i + b, n)
                    stmts.append(Assign(
                        trailing,
                        Sub(ref(trailing),
                            Mul(ref(panel_dest), Transpose(ref(panel_dest))))))
            else:
                diag_src = self._blk(source, i, i + b, i, i + b)
                if i > 0:
                    left = self._blk(factor, i, i + b, 0, i)
                    block_temp = self._temp(b, b)
                    stmts.append(Assign(
                        block_temp,
                        Sub(ref(diag_src), Mul(ref(left),
                                               Transpose(ref(left))))))
                    diag_src = block_temp
                self._chol_lower_unblocked(diag_dest, diag_src, stmts)
                if rest:
                    panel_src = self._blk(source, i + b, n, i, i + b)
                    if i > 0:
                        below_left = self._blk(factor, i + b, n, 0, i)
                        here_left = self._blk(factor, i, i + b, 0, i)
                        panel_temp = self._temp(rest, b)
                        stmts.append(Assign(
                            panel_temp,
                            Sub(ref(panel_src),
                                Mul(ref(below_left),
                                    Transpose(ref(here_left))))))
                        panel_src = panel_temp
                    panel_dest = self._blk(factor, i + b, n, i, i + b)
                    self._chol_lower_panel(diag_dest, panel_dest, panel_src,
                                           stmts)
        return stmts

    def _chol_lower_panel(self, diag: View, panel_dest: View, panel_src: View,
                          stmts: List[Statement]) -> None:
        """Solve ``panel_dest * diag^T = panel_src`` column by column."""
        b = diag.rows
        rows = panel_dest.rows
        for c in range(b):
            tau = self._reciprocal(ref(diag.sub(c, c, 1, 1)), stmts)
            rhs: Expr = Mul(ref(tau), ref(panel_src.sub(0, c, rows, 1)))
            if c > 0:
                left = panel_dest.sub(0, 0, rows, c)
                diag_row = diag.sub(c, 0, 1, c)
                rhs = Sub(rhs, Mul(ref(tau),
                                   Mul(ref(left), Transpose(ref(diag_row)))))
            stmts.append(Assign(panel_dest.sub(0, c, rows, 1), rhs))

    # =================================================================
    # Triangular solve:  op(T) * X = B
    # =================================================================

    def _trsm_coefficient_row(self, op: OperationInstance, r: int, c0: int,
                              c1: int) -> Expr:
        """Row segment ``A[r, c0:c1]`` of the effective coefficient matrix."""
        coeff = op.views["coefficient"]
        if op.flags.get("transposed"):
            return Transpose(ref(coeff.sub(c0, r, c1 - c0, 1)))
        return ref(coeff.sub(r, c0, 1, c1 - c0))

    def _trsm_diag(self, op: OperationInstance, r: int) -> Expr:
        return ref(op.views["coefficient"].sub(r, r, 1, 1))

    def _trsm_rows(self, op: OperationInstance, rows: range, rhs_view: View,
                   rhs_offset: int, stmts: List[Statement]) -> None:
        """Row-wise substitution for rows ``rows`` (global indices).

        ``rhs_view`` supplies the right-hand side rows with row ``r`` of the
        global system found at row ``r - rhs_offset`` of the view.  Rows of X
        outside ``rows`` (already computed) are folded into ``rhs_view`` by
        the caller for the blocked variant.
        """
        unknown = op.views["unknown"]
        n = unknown.cols
        lower = op.flags["uplo"] == "lower"
        lo, hi = min(rows), max(rows)
        for r in rows:
            tau = self._reciprocal(self._trsm_diag(op, r), stmts)
            src_row = rhs_view.sub(r - rhs_offset, 0, 1, n)
            value: Expr = Mul(ref(tau), ref(src_row))
            if lower and r > lo:
                coeff_row = self._trsm_coefficient_row(op, r, lo, r)
                computed = unknown.sub(lo, 0, r - lo, n)
                value = Sub(value, Mul(ref(tau), Mul(coeff_row,
                                                     ref(computed))))
            if not lower and r < hi:
                coeff_row = self._trsm_coefficient_row(op, r, r + 1, hi + 1)
                computed = unknown.sub(r + 1, 0, hi - r, n)
                value = Sub(value, Mul(ref(tau), Mul(coeff_row,
                                                     ref(computed))))
            stmts.append(Assign(unknown.sub(r, 0, 1, n), value))

    def _trsm(self, op: OperationInstance, variant: str) -> List[Statement]:
        unknown, rhs = op.views["unknown"], op.views["rhs"]
        m, n = unknown.shape
        lower = op.flags["uplo"] == "lower"
        stmts: List[Statement] = []
        if variant == "unblocked":
            rows = range(m) if lower else range(m - 1, -1, -1)
            self._trsm_rows(op, _ordered(rows, lower, 0, m), rhs, 0, stmts)
            return stmts

        nb = self.block_size
        blocks = list(range(0, m, nb))
        if not lower:
            blocks = blocks[::-1]
        for i in blocks:
            b = min(nb, m - i)
            block_rhs = rhs.sub(i, 0, b, n)
            if lower and i > 0:
                coeff_panel = self._trsm_coefficient_panel(op, i, i + b, 0, i)
                computed = unknown.sub(0, 0, i, n)
                temp = self._temp(b, n)
                stmts.append(Assign(temp, Sub(ref(block_rhs),
                                              Mul(coeff_panel,
                                                  ref(computed)))))
                block_rhs = temp
            if not lower and i + b < m:
                coeff_panel = self._trsm_coefficient_panel(op, i, i + b,
                                                           i + b, m)
                computed = unknown.sub(i + b, 0, m - i - b, n)
                temp = self._temp(b, n)
                stmts.append(Assign(temp, Sub(ref(block_rhs),
                                              Mul(coeff_panel,
                                                  ref(computed)))))
                block_rhs = temp
            rows = range(i, i + b) if lower else range(i + b - 1, i - 1, -1)
            self._trsm_rows(op, _ordered(rows, lower, i, i + b), block_rhs, i,
                            stmts)
        return stmts

    def _trsm_coefficient_panel(self, op: OperationInstance, r0: int, r1: int,
                                c0: int, c1: int) -> Expr:
        coeff = op.views["coefficient"]
        if op.flags.get("transposed"):
            return Transpose(ref(coeff.sub(c0, r0, c1 - c0, r1 - r0)))
        return ref(coeff.sub(r0, c0, r1 - r0, c1 - c0))

    # =================================================================
    # Triangular inverse:  X = T^{-1}
    # =================================================================

    def _trtri_coefficient(self, op: OperationInstance, r0: int, c0: int,
                           rows: int, cols: int) -> Expr:
        """Block ``[r0:r0+rows, c0:c0+cols]`` of the *effective* (possibly
        transposed) coefficient.  Reading the stored operand without
        honouring the transpose silently inverted the wrong matrix for
        ``X = inv(T')`` (a fuzzer-found wrong-code bug: the off-diagonal
        reads landed in the zero triangle)."""
        coeff = op.views["coefficient"]
        if op.flags.get("transposed"):
            return Transpose(ref(coeff.sub(c0, r0, cols, rows)))
        return ref(coeff.sub(r0, c0, rows, cols))

    def _trtri_unblocked(self, op: OperationInstance, r0: int, r1: int,
                         stmts: List[Statement]) -> None:
        coeff, unknown = op.views["coefficient"], op.views["unknown"]
        lower = op.flags["uplo"] == "lower"
        for j in range(r0, r1):
            tau = self._reciprocal(ref(coeff.sub(j, j, 1, 1)), stmts)
            stmts.append(Assign(unknown.sub(j, j, 1, 1), ref(tau)))
            if lower:
                for i in range(j + 1, r1):
                    tau_i = self._reciprocal(ref(coeff.sub(i, i, 1, 1)), stmts)
                    row = self._trtri_coefficient(op, i, j, 1, i - j)
                    col = unknown.sub(j, j, i - j, 1)
                    stmts.append(Assign(
                        unknown.sub(i, j, 1, 1),
                        Neg(Mul(ref(tau_i), Mul(row, ref(col))))))
            else:
                for i in range(j - 1, r0 - 1, -1):
                    tau_i = self._reciprocal(ref(coeff.sub(i, i, 1, 1)), stmts)
                    row = self._trtri_coefficient(op, i, i + 1, 1, j - i)
                    col = unknown.sub(i + 1, j, j - i, 1)
                    stmts.append(Assign(
                        unknown.sub(i, j, 1, 1),
                        Neg(Mul(ref(tau_i), Mul(row, ref(col))))))

    def _trtri(self, op: OperationInstance, variant: str) -> List[Statement]:
        coeff, unknown = op.views["coefficient"], op.views["unknown"]
        n = coeff.rows
        lower = op.flags["uplo"] == "lower"
        stmts: List[Statement] = []
        if variant == "unblocked" or not lower:
            # The blocked left-looking schema below is formulated for the
            # lower-triangular case; upper-triangular inverses use the
            # column-wise algorithm.
            self._trtri_unblocked(op, 0, n, stmts)
            return stmts
        nb = self.block_size
        for i in range(0, n, nb):
            b = min(nb, n - i)
            self._trtri_unblocked_block(op, i, i + b, stmts)
            if i > 0:
                below_left = self._trtri_coefficient(op, i, 0, b, i)
                x00 = unknown.sub(0, 0, i, i)
                x11 = unknown.sub(i, i, b, b)
                temp = self._temp(b, i)
                stmts.append(Assign(temp, Mul(below_left, ref(x00))))
                stmts.append(Assign(unknown.sub(i, 0, b, i),
                                    Neg(Mul(ref(x11), ref(temp)))))
        return stmts

    def _trtri_unblocked_block(self, op: OperationInstance, r0: int, r1: int,
                               stmts: List[Statement]) -> None:
        """Invert the diagonal block ``[r0:r1, r0:r1]`` in isolation."""
        self._trtri_unblocked(op, r0, r1, stmts)

    # =================================================================
    # Triangular Sylvester:  L X + X U = C
    # =================================================================

    def _trsyl(self, op: OperationInstance, variant: str) -> List[Statement]:
        left = op.views["coefficient_left"]
        right = op.views["coefficient_right"]
        unknown = op.views["unknown"]
        rhs = op.views["rhs"]
        m, n = unknown.shape
        stmts: List[Statement] = []
        nb = self.block_size if variant == "blocked" else 1
        for j0 in range(0, n, nb):
            bw = min(nb, n - j0)
            block_rhs: View = rhs.sub(0, j0, m, bw)
            if j0 > 0:
                computed = unknown.sub(0, 0, m, j0)
                coupling = right.sub(0, j0, j0, bw)
                temp = self._temp(m, bw)
                stmts.append(Assign(temp, Sub(ref(block_rhs),
                                              Mul(ref(computed),
                                                  ref(coupling)))))
                block_rhs = temp
            for c in range(bw):
                j = j0 + c
                for i in range(m):
                    value: Expr = ref(block_rhs.sub(i, c, 1, 1))
                    if c > 0:
                        row = unknown.sub(i, j0, 1, c)
                        col = right.sub(j0, j, c, 1)
                        value = Sub(value, Mul(ref(row), ref(col)))
                    if i > 0:
                        lrow = left.sub(i, 0, 1, i)
                        xcol = unknown.sub(0, j, i, 1)
                        value = Sub(value, Mul(ref(lrow), ref(xcol)))
                    denom = Add(ref(left.sub(i, i, 1, 1)),
                                ref(right.sub(j, j, 1, 1)))
                    stmts.append(Assign(unknown.sub(i, j, 1, 1),
                                        Div(value, denom)))
        return stmts

    # =================================================================
    # Triangular Lyapunov:  L X + X L^T = S  (X symmetric)
    # =================================================================

    def _trlya(self, op: OperationInstance, variant: str) -> List[Statement]:
        left = op.views["coefficient"]
        unknown = op.views["unknown"]
        rhs = op.views["rhs"]
        n = unknown.rows
        stmts: List[Statement] = []
        for j in range(n):
            hoisted: Optional[View] = None
            if variant == "gemv" and j > 0:
                # Contribution of the already-known columns 0..j-1 to the
                # whole column j:  v = L[j:n, 0:j] * X[0:j, j]
                hoisted = self._temp(n - j, 1)
                stmts.append(Assign(
                    hoisted,
                    Mul(ref(left.sub(j, 0, n - j, j)),
                        ref(unknown.sub(0, j, j, 1)))))
            for i in range(j, n):
                value: Expr = ref(rhs.sub(i, j, 1, 1))
                if variant == "gemv" and j > 0:
                    assert hoisted is not None
                    value = Sub(value, ref(hoisted.sub(i - j, 0, 1, 1)))
                    if i > j:
                        lrow = left.sub(i, j, 1, i - j)
                        xcol = unknown.sub(j, j, i - j, 1)
                        value = Sub(value, Mul(ref(lrow), ref(xcol)))
                else:
                    if i > 0:
                        lrow = left.sub(i, 0, 1, i)
                        xcol = unknown.sub(0, j, i, 1)
                        value = Sub(value, Mul(ref(lrow), ref(xcol)))
                if j > 0:
                    xrow = unknown.sub(i, 0, 1, j)
                    lrow_j = left.sub(j, 0, 1, j)
                    value = Sub(value, Mul(ref(xrow), Transpose(ref(lrow_j))))
                denom = Add(ref(left.sub(i, i, 1, 1)),
                            ref(left.sub(j, j, 1, 1)))
                stmts.append(Assign(unknown.sub(i, j, 1, 1),
                                    Div(value, denom)))
            if j + 1 < n:
                # Symmetric fill of row j: X[j, j+1:n] = X[j+1:n, j]^T
                stmts.append(Assign(
                    unknown.sub(j, j + 1, 1, n - j - 1),
                    Transpose(ref(unknown.sub(j + 1, j, n - j - 1, 1)))))
        return stmts


def _ordered(rows: range, lower: bool, start: int, stop: int) -> range:
    """Row processing order: forward for lower, backward for upper systems."""
    if lower:
        return range(start, stop)
    return range(stop - 1, start - 1, -1)
