"""Algorithm database (Stage 1a of the paper's Fig. 6).

SLinGen stores information about the algorithms synthesized for HLACs so
that later occurrences of the same functionality (same operation kind,
sizes and flags) do not trigger a new synthesis.  The database maps an
operation *signature* to the available variants and caches concrete
expansions when the exact same operand views recur.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir.program import Statement
from .operations import OperationInstance


@dataclass
class DatabaseEntry:
    """What the database remembers about one operation signature."""

    kind: str
    variants: List[str]
    hits: int = 0
    syntheses: int = 0


class AlgorithmDatabase:
    """Caches synthesized algorithms keyed by operation signature."""

    def __init__(self) -> None:
        self._entries: Dict[Tuple, DatabaseEntry] = {}
        self._expansions: Dict[Tuple, List[Statement]] = {}
        #: Temporary-name counter shared by every synthesizer of one
        #: generation run.  Cached expansions are spliced into several
        #: candidate programs, so temps must be unique database-wide; scoping
        #: the counter here (rather than process-globally) makes generated
        #: code a pure function of the request -- a requirement of the
        #: content-addressed kernel cache.
        self.temp_counter = itertools.count()

    def entry_for(self, op: OperationInstance,
                  variants: List[str]) -> DatabaseEntry:
        """Fetch (or create) the entry for an operation signature."""
        key = op.signature()
        if key not in self._entries:
            self._entries[key] = DatabaseEntry(kind=op.kind,
                                               variants=list(variants))
        return self._entries[key]

    def _expansion_key(self, op: OperationInstance, variant: str,
                       block_size: int) -> Tuple:
        identity = tuple(sorted(
            (role, id(view.operand), view.row_off, view.col_off, view.rows,
             view.cols) for role, view in op.views.items()))
        return (op.signature(), identity, variant, block_size)

    def lookup(self, op: OperationInstance, variant: str,
               block_size: int) -> Optional[List[Statement]]:
        """Return a cached expansion for identical operand views, if any."""
        key = self._expansion_key(op, variant, block_size)
        cached = self._expansions.get(key)
        if cached is not None:
            self._entries[op.signature()].hits += 1
        return cached

    def store(self, op: OperationInstance, variant: str, block_size: int,
              statements: List[Statement]) -> None:
        key = self._expansion_key(op, variant, block_size)
        self._expansions[key] = statements
        entry = self._entries.get(op.signature())
        if entry is not None:
            entry.syntheses += 1

    @property
    def entries(self) -> List[DatabaseEntry]:
        return list(self._entries.values())

    def stats(self) -> Dict[str, int]:
        return {
            "signatures": len(self._entries),
            "cached_expansions": len(self._expansions),
            "hits": sum(e.hits for e in self._entries.values()),
            "syntheses": sum(e.syntheses for e in self._entries.values()),
        }
