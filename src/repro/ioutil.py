"""Small filesystem helpers shared by the caches (kernel store, object
cache).

Kept in a leaf module so both :mod:`repro.service.store` and
:mod:`repro.backend.compile` can use one implementation of the atomic-write
protocol and the cache-directory convention without layering inversions.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Generic, Optional, TypeVar

_V = TypeVar("_V")


class LruMap(Generic[_V]):
    """A small bounded mapping with least-recently-used eviction.

    The in-memory hot layer shared by the persistent caches
    (:class:`repro.service.store.DiskKernelStore`,
    :class:`repro.tuning.db.TuningDB`): capacity 0 disables it entirely.
    """

    def __init__(self, capacity: int):
        self.capacity = max(0, capacity)
        self._entries: "OrderedDict[str, _V]" = OrderedDict()

    def get(self, key: str) -> Optional[_V]:
        """The cached value (refreshing its recency), or None."""
        value = self._entries.get(key)
        if value is not None:
            self._entries.move_to_end(key)
        return value

    def insert(self, key: str, value: _V) -> None:
        if self.capacity == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def pop(self, key: str) -> None:
        self._entries.pop(key, None)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` so readers never observe a torn file.

    Stages to a private temp file (unique per process *and* thread, so
    concurrent writers of the same path each stage separately) and commits
    with ``os.replace``, which is atomic on POSIX within one filesystem.
    """
    staged = f"{path}.tmp-{os.getpid()}-{threading.get_ident()}"
    with open(staged, "wb") as handle:
        handle.write(data)
    os.replace(staged, path)


def atomic_publish(source_path: str, path: str) -> None:
    """Atomically publish an existing file (e.g. a compiled ``.so``) at
    ``path`` by staging a copy next to it and ``os.replace``-ing."""
    import shutil
    staged = f"{path}.tmp-{os.getpid()}-{threading.get_ident()}"
    shutil.copyfile(source_path, staged)
    os.replace(staged, path)


def cache_root(env_var: str, subdir: str) -> str:
    """Resolve a cache directory: ``$<env_var>`` when set, otherwise
    ``~/.cache/repro-slingen/<subdir>`` (all repro caches share a parent)."""
    env = os.environ.get(env_var, "").strip()
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-slingen",
                        subdir)
