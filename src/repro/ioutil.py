"""Small filesystem helpers shared by the caches (kernel store, object
cache).

Kept in a leaf module so both :mod:`repro.service.store` and
:mod:`repro.backend.compile` can use one implementation of the atomic-write
protocol and the cache-directory convention without layering inversions.
"""

from __future__ import annotations

import os
import threading


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` so readers never observe a torn file.

    Stages to a private temp file (unique per process *and* thread, so
    concurrent writers of the same path each stage separately) and commits
    with ``os.replace``, which is atomic on POSIX within one filesystem.
    """
    staged = f"{path}.tmp-{os.getpid()}-{threading.get_ident()}"
    with open(staged, "wb") as handle:
        handle.write(data)
    os.replace(staged, path)


def atomic_publish(source_path: str, path: str) -> None:
    """Atomically publish an existing file (e.g. a compiled ``.so``) at
    ``path`` by staging a copy next to it and ``os.replace``-ing."""
    import shutil
    staged = f"{path}.tmp-{os.getpid()}-{threading.get_ident()}"
    shutil.copyfile(source_path, staged)
    os.replace(staged, path)


def cache_root(env_var: str, subdir: str) -> str:
    """Resolve a cache directory: ``$<env_var>`` when set, otherwise
    ``~/.cache/repro-slingen/<subdir>`` (all repro caches share a parent)."""
    env = os.environ.get(env_var, "").strip()
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-slingen",
                        subdir)
