"""Documentation maintenance commands.

Usage (``PYTHONPATH=src python -m repro.docs <command>``)::

    cli-ref   [--check] [--output FILE]
        Regenerate docs/cli.md from the argparse parsers of every
        ``python -m repro.*`` entry point.  With ``--check``, verify the
        committed file is current instead (exit 1 when stale) -- CI and
        the tier-1 suite both run this.

    linkcheck [FILE ...]
        Verify every relative Markdown link in the given files (default:
        README.md and docs/*.md) points at an existing file.  Exits 1
        listing each broken link.

Both commands are pure stdlib and run anywhere the package imports.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from ..cli import EXIT_FAILURE, EXIT_OK, add_json_flag, print_json
from . import check_links, default_doc_paths, render_cli_reference

DEFAULT_OUTPUT = os.path.join("docs", "cli.md")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.docs",
        description="Generate the CLI reference and check documentation "
                    "links.")
    sub = parser.add_subparsers(dest="command", required=True)

    ref = sub.add_parser("cli-ref",
                         help="write (or verify) the generated CLI "
                              "reference")
    ref.add_argument("--output", default=DEFAULT_OUTPUT, metavar="FILE",
                     help=f"target file (default: {DEFAULT_OUTPUT})")
    ref.add_argument("--check", action="store_true",
                     help="verify FILE matches the parsers instead of "
                          "writing; exit 1 when stale")
    add_json_flag(ref)

    links = sub.add_parser("linkcheck",
                           help="verify relative links in Markdown files")
    links.add_argument("paths", nargs="*", metavar="FILE",
                       help="Markdown files to check (default: README.md "
                            "and docs/*.md under the current directory)")
    links.add_argument("--root", default=".", metavar="DIR",
                       help="repository root links must stay inside "
                            "(default: current directory)")
    add_json_flag(links)
    return parser


def _cmd_cli_ref(args: argparse.Namespace) -> int:
    rendered = render_cli_reference()
    lines = len(rendered.splitlines())
    if args.check:
        try:
            with open(args.output, "r", encoding="utf-8") as handle:
                committed = handle.read()
        except OSError as exc:
            print(f"cli-ref: cannot read {args.output}: {exc}",
                  file=sys.stderr)
            return EXIT_FAILURE
        current = committed == rendered
        if args.as_json:
            print_json({"output": args.output, "current": current,
                        "lines": lines})
            return EXIT_OK if current else EXIT_FAILURE
        if not current:
            print(f"cli-ref: {args.output} is stale; regenerate with "
                  f"`python -m repro.docs cli-ref`", file=sys.stderr)
            return EXIT_FAILURE
        print(f"cli-ref: {args.output} is current ({lines} lines)")
        return EXIT_OK
    os.makedirs(os.path.dirname(args.output) or ".", exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(rendered)
    if args.as_json:
        print_json({"output": args.output, "written": True, "lines": lines})
    else:
        print(f"cli-ref: wrote {args.output} ({lines} lines)")
    return EXIT_OK


def _cmd_linkcheck(args: argparse.Namespace) -> int:
    root = os.path.abspath(args.root)
    paths = args.paths or default_doc_paths(root)
    if not paths:
        print("linkcheck: no Markdown files found", file=sys.stderr)
        return EXIT_FAILURE
    broken = check_links(paths, repo_root=root)
    if args.as_json:
        print_json({"files": len(paths),
                    "broken": [{"file": path, "target": target}
                               for path, target in broken]})
        return EXIT_FAILURE if broken else EXIT_OK
    for path, target in broken:
        print(f"linkcheck: {path}: broken relative link -> {target}",
              file=sys.stderr)
    if broken:
        return EXIT_FAILURE
    print(f"linkcheck: {len(paths)} files ok")
    return EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "cli-ref":
        return _cmd_cli_ref(args)
    if args.command == "linkcheck":
        return _cmd_linkcheck(args)
    return 0  # pragma: no cover - argparse enforces a command


if __name__ == "__main__":
    sys.exit(main())
