"""Operands of an LA program: scalars, vectors, matrices, and views.

An *operand* is a named, fixed-size array declared at the top of an LA
program (paper Fig. 4/5).  Each operand carries:

* its dimensions (``rows`` x ``cols``; vectors are n x 1, scalars 1 x 1),
* an I/O type (``In``, ``Out``, ``InOut``),
* structural properties (:class:`~repro.ir.properties.Properties`),
* an optional *overwrite* target: ``ow(S)`` declares that the operand shares
  storage with operand ``S`` (e.g. the Cholesky factor U overwriting S).

A *view* is a rectangular sub-block of an operand with concrete integer
offsets and sizes.  Views are the leaves of every expression produced by
Stage 1 (basic linear algebra programs): partitioned algorithms compute on
blocks such as ``S[0:i, i:i+nu]``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..errors import DimensionError
from .properties import Properties, Structure


class IOType(enum.Enum):
    """Input/output role of an operand in an LA program."""

    IN = "In"
    OUT = "Out"
    INOUT = "InOut"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(eq=False)
class Operand:
    """A named, fixed-size operand of an LA program.

    Operands use identity-based equality: two declarations with the same
    name are distinct objects (important when composing programs).
    """

    name: str
    rows: int
    cols: int
    io: IOType = IOType.IN
    properties: Properties = field(default_factory=Properties)
    overwrites: Optional[str] = None
    datatype: str = "double"

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise DimensionError(
                f"operand {self.name!r} must have positive dimensions, "
                f"got {self.rows}x{self.cols}")
        if not self.name.isidentifier():
            raise ValueError(f"invalid operand name {self.name!r}")

    # -- classification ----------------------------------------------------

    @property
    def is_scalar(self) -> bool:
        return self.rows == 1 and self.cols == 1

    @property
    def is_vector(self) -> bool:
        return not self.is_scalar and (self.rows == 1 or self.cols == 1)

    @property
    def is_matrix(self) -> bool:
        return self.rows > 1 and self.cols > 1

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def size(self) -> int:
        """Total number of stored elements (full storage scheme)."""
        return self.rows * self.cols

    @property
    def is_input(self) -> bool:
        return self.io in (IOType.IN, IOType.INOUT)

    @property
    def is_output(self) -> bool:
        return self.io in (IOType.OUT, IOType.INOUT)

    # -- views --------------------------------------------------------------

    def view(self, row_off: int = 0, col_off: int = 0,
             rows: Optional[int] = None, cols: Optional[int] = None) -> "View":
        """Return a view of the block starting at (row_off, col_off)."""
        rows = self.rows - row_off if rows is None else rows
        cols = self.cols - col_off if cols is None else cols
        return View(self, row_off, col_off, rows, cols)

    def full_view(self) -> "View":
        """Return a view covering the whole operand."""
        return View(self, 0, 0, self.rows, self.cols)

    def element(self, i: int, j: int = 0) -> "View":
        """Return a 1x1 view of element (i, j)."""
        return View(self, i, j, 1, 1)

    # -- misc ---------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "Sca" if self.is_scalar else ("Vec" if self.is_vector else "Mat")
        props = str(self.properties)
        ow = f", ow({self.overwrites})" if self.overwrites else ""
        return (f"{kind} {self.name}({self.rows},{self.cols}) "
                f"<{self.io}, {props}{ow}>")

    def __hash__(self) -> int:
        return id(self)


def Matrix(name: str, rows: int, cols: int, io: IOType = IOType.IN,
           properties: Optional[Properties] = None,
           overwrites: Optional[str] = None) -> Operand:
    """Convenience constructor for a matrix operand."""
    return Operand(name, rows, cols, io, properties or Properties(),
                   overwrites=overwrites)


def Vector(name: str, n: int, io: IOType = IOType.IN,
           overwrites: Optional[str] = None) -> Operand:
    """Convenience constructor for a column-vector operand (n x 1)."""
    return Operand(name, n, 1, io, Properties(), overwrites=overwrites)


def Scalar(name: str, io: IOType = IOType.IN,
           overwrites: Optional[str] = None) -> Operand:
    """Convenience constructor for a scalar operand (1 x 1)."""
    return Operand(name, 1, 1, io, Properties(), overwrites=overwrites)


@dataclass(frozen=True)
class View:
    """A rectangular sub-block of an operand with concrete offsets/sizes.

    Views are value objects: two views of the same operand with identical
    offsets and sizes compare equal, which lets passes detect overlapping
    and identical accesses.
    """

    operand: Operand
    row_off: int
    col_off: int
    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows < 0 or self.cols < 0:
            raise DimensionError(f"view of {self.operand.name} has negative "
                                 f"size {self.rows}x{self.cols}")
        if (self.row_off < 0 or self.col_off < 0
                or self.row_off + self.rows > self.operand.rows
                or self.col_off + self.cols > self.operand.cols):
            raise DimensionError(
                f"view [{self.row_off}:{self.row_off + self.rows}, "
                f"{self.col_off}:{self.col_off + self.cols}] is out of bounds "
                f"for operand {self.operand.name} "
                f"({self.operand.rows}x{self.operand.cols})")

    # -- classification ----------------------------------------------------

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def is_scalar(self) -> bool:
        return self.rows == 1 and self.cols == 1

    @property
    def is_vector(self) -> bool:
        return not self.is_scalar and (self.rows == 1 or self.cols == 1)

    @property
    def is_row_vector(self) -> bool:
        return self.rows == 1 and self.cols > 1

    @property
    def is_col_vector(self) -> bool:
        return self.cols == 1 and self.rows > 1

    @property
    def is_empty(self) -> bool:
        return self.rows == 0 or self.cols == 0

    @property
    def is_full(self) -> bool:
        """True when the view covers its whole operand."""
        return (self.row_off == 0 and self.col_off == 0
                and self.rows == self.operand.rows
                and self.cols == self.operand.cols)

    @property
    def structure(self) -> Structure:
        """Structure of this block inferred from the operand's structure.

        Only diagonal blocks (row range == column range) of a structured
        matrix inherit the full structure; blocks strictly above/below the
        diagonal of a triangular matrix are GENERAL or ZERO.
        """
        parent = self.operand.properties.structure
        if parent is Structure.GENERAL or self.is_full:
            return parent
        on_diagonal = (self.row_off == self.col_off and self.rows == self.cols)
        if on_diagonal:
            return parent
        row_end = self.row_off + self.rows
        col_end = self.col_off + self.cols
        if parent is Structure.LOWER_TRIANGULAR and row_end <= self.col_off:
            return Structure.ZERO
        if parent is Structure.UPPER_TRIANGULAR and col_end <= self.row_off:
            return Structure.ZERO
        if parent is Structure.ZERO:
            return Structure.ZERO
        if parent in (Structure.DIAGONAL, Structure.IDENTITY):
            if row_end <= self.col_off or col_end <= self.row_off:
                return Structure.ZERO
        return Structure.GENERAL

    # -- sub-views ----------------------------------------------------------

    def sub(self, row_off: int, col_off: int, rows: int, cols: int) -> "View":
        """Return a sub-view relative to this view's origin."""
        return View(self.operand, self.row_off + row_off,
                    self.col_off + col_off, rows, cols)

    def element(self, i: int, j: int = 0) -> "View":
        return self.sub(i, j, 1, 1)

    def row(self, i: int) -> "View":
        return self.sub(i, 0, 1, self.cols)

    def column(self, j: int) -> "View":
        return self.sub(0, j, self.rows, 1)

    def overlaps(self, other: "View") -> bool:
        """True when the two views touch at least one common element.

        Aliased operands (via ``ow``) are *not* resolved here; callers that
        care about storage-level aliasing must map operands to their storage
        group first (see :mod:`repro.cir.interpreter`).
        """
        if self.operand is not other.operand:
            return False
        return not (self.row_off + self.rows <= other.row_off
                    or other.row_off + other.rows <= self.row_off
                    or self.col_off + self.cols <= other.col_off
                    or other.col_off + other.cols <= self.col_off)

    def contains(self, other: "View") -> bool:
        """True when ``other`` is entirely inside this view."""
        if self.operand is not other.operand:
            return False
        return (self.row_off <= other.row_off
                and self.col_off <= other.col_off
                and other.row_off + other.rows <= self.row_off + self.rows
                and other.col_off + other.cols <= self.col_off + self.cols)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_full:
            return self.operand.name
        return (f"{self.operand.name}[{self.row_off}:{self.row_off + self.rows},"
                f"{self.col_off}:{self.col_off + self.cols}]")
