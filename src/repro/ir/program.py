"""LA programs and their statements at the mathematical level.

A :class:`Program` is the in-memory form of an LA source file: an ordered
set of operand declarations followed by a sequence of statements.  The same
class also represents *basic linear algebra programs*, the output of
Stage 1, in which every statement is an sBLAC or an auxiliary scalar
computation (no HLACs left).

Statement taxonomy (paper Fig. 1 / Sec. 3):

* :class:`Assign` -- ``lhs_view = rhs_expr``.  If the right-hand side uses
  only +, -, *, ^T this is an *sBLAC* (or a scalar auxiliary computation if
  everything is 1x1); if it contains an :class:`~repro.ir.expr.Inverse`
  it is an HLAC.
* :class:`Equation` -- ``lhs_expr = rhs_expr`` with a non-trivial left-hand
  side (e.g. ``U^T * U = S``); always an HLAC.  The unknowns are the
  referenced operands declared as outputs.
* :class:`ForLoop` -- a fixed-trip-count loop over statements (LA grammar);
  unrolled during semantic analysis because all sizes are fixed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from ..errors import LASemanticError
from .expr import Expr, Ref
from .operands import IOType, Operand, View


class Statement:
    """Base class of LA/basic-program statements."""

    def is_hlac(self) -> bool:
        raise NotImplementedError

    def is_sblac(self) -> bool:
        return not self.is_hlac()

    def reads(self) -> List[View]:
        raise NotImplementedError

    def writes(self) -> List[View]:
        raise NotImplementedError

    def operands(self) -> List[Operand]:
        seen: List[Operand] = []
        for view in self.reads() + self.writes():
            if view.operand not in seen:
                seen.append(view.operand)
        return seen


@dataclass
class Assign(Statement):
    """``lhs = rhs`` where the left-hand side is a single operand view."""

    lhs: View
    rhs: Expr

    def __post_init__(self) -> None:
        if self.lhs.shape != self.rhs.shape:
            raise LASemanticError(
                f"shape mismatch in assignment to {self.lhs!r}: "
                f"lhs is {self.lhs.shape}, rhs is {self.rhs.shape}")

    def is_hlac(self) -> bool:
        return self.rhs.contains_inverse()

    @property
    def is_scalar_op(self) -> bool:
        """True for auxiliary scalar computations (everything 1x1)."""
        return self.lhs.is_scalar and all(v.is_scalar for v in self.rhs.views())

    def reads(self) -> List[View]:
        return self.rhs.views()

    def writes(self) -> List[View]:
        return [self.lhs]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.lhs!r} = {self.rhs!r};"


@dataclass
class Equation(Statement):
    """``lhs_expr = rhs_expr`` HLAC statement (implicit equation).

    Example: ``Transpose(U) * U = S`` declares that the output operand U
    must satisfy the equation (a Cholesky factorization).
    """

    lhs: Expr
    rhs: Expr

    def __post_init__(self) -> None:
        if self.lhs.shape != self.rhs.shape:
            raise LASemanticError(
                f"shape mismatch in equation: lhs is {self.lhs.shape}, "
                f"rhs is {self.rhs.shape}")

    def is_hlac(self) -> bool:
        return True

    def unknowns(self) -> List[Operand]:
        """Output operands appearing in the equation (the unknowns)."""
        outs = [op for op in self.lhs.operands() + self.rhs.operands()
                if op.is_output]
        unique: List[Operand] = []
        for op in outs:
            if op not in unique:
                unique.append(op)
        return unique

    def knowns(self) -> List[Operand]:
        """Input operands appearing in the equation."""
        ops = [op for op in self.lhs.operands() + self.rhs.operands()
               if not op.is_output]
        unique: List[Operand] = []
        for op in ops:
            if op not in unique:
                unique.append(op)
        return unique

    def reads(self) -> List[View]:
        return [v for v in self.lhs.views() + self.rhs.views()
                if not v.operand.is_output]

    def writes(self) -> List[View]:
        return [v for v in self.lhs.views() + self.rhs.views()
                if v.operand.is_output]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.lhs!r} = {self.rhs!r};   (HLAC)"


@dataclass
class ForLoop(Statement):
    """Fixed-trip-count loop at the LA level.

    Because all operand sizes are fixed, loops are unrolled by semantic
    analysis before Stage 1 runs; the class is kept so that the frontend can
    represent the source faithfully.
    """

    var: str
    start: int
    stop: int
    step: int
    body: List[Statement] = field(default_factory=list)

    def is_hlac(self) -> bool:
        return any(s.is_hlac() for s in self.body)

    def iterations(self) -> range:
        return range(self.start, self.stop, self.step)

    def reads(self) -> List[View]:
        return [v for s in self.body for v in s.reads()]

    def writes(self) -> List[View]:
        return [v for s in self.body for v in s.writes()]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"for ({self.var} = {self.start}:{self.step}:{self.stop}) "
                f"{{ {len(self.body)} stmts }}")


@dataclass
class Program:
    """An LA program (or a Stage-1 basic linear algebra program)."""

    name: str
    operands: Dict[str, Operand] = field(default_factory=dict)
    statements: List[Statement] = field(default_factory=list)
    constants: Dict[str, int] = field(default_factory=dict)

    # -- construction -------------------------------------------------------

    def declare(self, operand: Operand) -> Operand:
        """Add an operand declaration; returns the operand for chaining."""
        if operand.name in self.operands:
            raise LASemanticError(f"operand {operand.name!r} declared twice")
        if operand.overwrites is not None:
            if operand.overwrites not in self.operands:
                raise LASemanticError(
                    f"operand {operand.name!r} overwrites undeclared "
                    f"operand {operand.overwrites!r}")
            target = self.operands[operand.overwrites]
            if target.shape != operand.shape:
                raise LASemanticError(
                    f"operand {operand.name!r} ({operand.rows}x{operand.cols})"
                    f" cannot overwrite {target.name!r} "
                    f"({target.rows}x{target.cols}): shapes differ")
        self.operands[operand.name] = operand
        return operand

    def add(self, statement: Statement) -> Statement:
        """Append a statement; returns it for chaining."""
        for op in statement.operands():
            if op.name not in self.operands or self.operands[op.name] is not op:
                raise LASemanticError(
                    f"statement uses operand {op.name!r} that is not declared "
                    f"in program {self.name!r}")
        self.statements.append(statement)
        return statement

    # -- queries ------------------------------------------------------------

    def operand(self, name: str) -> Operand:
        return self.operands[name]

    def inputs(self) -> List[Operand]:
        return [op for op in self.operands.values() if op.is_input]

    def outputs(self) -> List[Operand]:
        return [op for op in self.operands.values() if op.is_output]

    def temporaries(self) -> List[Operand]:
        """Output operands that only exist to hold intermediate values."""
        return [op for op in self.operands.values()
                if op.io is IOType.OUT and op.overwrites is None]

    def hlacs(self) -> List[Statement]:
        return [s for s in self.flat_statements() if s.is_hlac()]

    def is_basic(self) -> bool:
        """True when no HLAC statements remain (Stage-1 output form)."""
        return not self.hlacs()

    def flat_statements(self) -> Iterator[Statement]:
        """Iterate statements with for-loops left intact (not unrolled)."""
        def visit(stmts: Sequence[Statement]) -> Iterator[Statement]:
            for s in stmts:
                if isinstance(s, ForLoop):
                    yield from visit(s.body)
                else:
                    yield s
        return visit(self.statements)

    def unrolled_statements(self) -> List[Statement]:
        """Statements with LA-level for-loops fully unrolled.

        LA loops have fixed bounds; unrolling them is how SLinGen obtains a
        straight-line sequence of sBLACs/HLACs to process.
        """
        result: List[Statement] = []

        def visit(stmts: Sequence[Statement]) -> None:
            for s in stmts:
                if isinstance(s, ForLoop):
                    for _ in s.iterations():
                        visit(s.body)
                else:
                    result.append(s)

        visit(self.statements)
        return result

    # -- storage groups -----------------------------------------------------

    def storage_groups(self) -> Dict[str, str]:
        """Map each operand name to the name of its storage group leader.

        Operands related by ``ow(...)`` chains share one buffer; the leader
        is the root of the chain (the operand that does not overwrite any
        other).
        """
        leader: Dict[str, str] = {}
        for name, op in self.operands.items():
            root = name
            seen = set()
            while self.operands[root].overwrites is not None:
                if root in seen:
                    raise LASemanticError(
                        f"cyclic ow(...) chain involving {name!r}")
                seen.add(root)
                root = self.operands[root].overwrites
            leader[name] = root
        return leader

    # -- validation ---------------------------------------------------------

    def validate(self) -> None:
        """Check well-formedness; raises :class:`LASemanticError` on error."""
        written = set()
        for stmt in self.unrolled_statements():
            for view in stmt.reads():
                op = view.operand
                if op.io is IOType.OUT and op.name not in written:
                    # Outputs may be read only after they have been written
                    # (or if they overwrite an input operand).
                    root = self.storage_groups().get(op.name, op.name)
                    if root == op.name or not self.operands[root].is_input:
                        raise LASemanticError(
                            f"output operand {op.name!r} is read before "
                            f"being written")
            for view in stmt.writes():
                if not view.operand.is_output:
                    raise LASemanticError(
                        f"input operand {view.operand.name!r} is written; "
                        f"declare it Out or InOut")
                written.add(view.operand.name)
        for op in self.outputs():
            if op.io is IOType.INOUT:
                continue
        # all checks passed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lines = [f"Program {self.name!r}:"]
        for op in self.operands.values():
            lines.append(f"  {op!r}")
        for stmt in self.statements:
            lines.append(f"  {stmt!r}")
        return "\n".join(lines)
