"""Matrix structure properties and their algebra.

The LA language (paper Fig. 4) lets the user annotate matrices with
structural and mathematical properties:

* ``LoTri`` / ``UpTri``  -- lower / upper triangular
* ``LoSym`` / ``UpSym``  -- symmetric, stored in the lower / upper half
* ``PD``                 -- symmetric positive definite
* ``NS``                 -- non-singular
* ``UnitDiag``           -- unit diagonal (for triangular factors)

Internally we work with a slightly richer *structure lattice* that also
contains ``ZERO``, ``IDENTITY`` and ``DIAGONAL`` because those show up when
partitioned matrix expressions are simplified (e.g. the bottom-left block of
an upper-triangular matrix is ZERO).

The functions at the bottom of the module implement the structure algebra
used by LGen-style structure propagation: the structure of ``A + B``,
``A * B`` and ``A^T`` as a function of the structures of the inputs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import FrozenSet, Iterable


class Structure(enum.Enum):
    """Structural shape of a matrix (mutually exclusive)."""

    GENERAL = "general"
    LOWER_TRIANGULAR = "lower_triangular"
    UPPER_TRIANGULAR = "upper_triangular"
    SYMMETRIC = "symmetric"
    DIAGONAL = "diagonal"
    IDENTITY = "identity"
    ZERO = "zero"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def is_triangular(self) -> bool:
        return self in (Structure.LOWER_TRIANGULAR, Structure.UPPER_TRIANGULAR)

    @property
    def is_symmetric(self) -> bool:
        return self in (Structure.SYMMETRIC, Structure.DIAGONAL,
                        Structure.IDENTITY, Structure.ZERO)


class StorageHalf(enum.Enum):
    """Which half of a symmetric/triangular matrix is stored.

    The paper uses a *full storage scheme* even for structured matrices
    (Sec. 5), but the annotations ``UpSym``/``LoSym`` and ``UpTri``/``LoTri``
    still determine which half is read/written.
    """

    FULL = "full"
    UPPER = "upper"
    LOWER = "lower"


@dataclass(frozen=True)
class Properties:
    """Complete property set of a matrix operand.

    Parameters
    ----------
    structure:
        Structural shape (triangular, symmetric, ...).
    storage:
        Which half is stored for triangular/symmetric matrices.
    positive_definite:
        ``PD`` annotation -- implies symmetric and non-singular.
    non_singular:
        ``NS`` annotation.
    unit_diagonal:
        ``UnitDiag`` annotation for triangular factors.
    """

    structure: Structure = Structure.GENERAL
    storage: StorageHalf = StorageHalf.FULL
    positive_definite: bool = False
    non_singular: bool = False
    unit_diagonal: bool = False

    # -- constructors ------------------------------------------------------

    @staticmethod
    def general() -> "Properties":
        return Properties()

    @staticmethod
    def lower_triangular(non_singular: bool = False,
                         unit_diagonal: bool = False) -> "Properties":
        return Properties(Structure.LOWER_TRIANGULAR, StorageHalf.LOWER,
                          non_singular=non_singular,
                          unit_diagonal=unit_diagonal)

    @staticmethod
    def upper_triangular(non_singular: bool = False,
                         unit_diagonal: bool = False) -> "Properties":
        return Properties(Structure.UPPER_TRIANGULAR, StorageHalf.UPPER,
                          non_singular=non_singular,
                          unit_diagonal=unit_diagonal)

    @staticmethod
    def symmetric(storage: StorageHalf = StorageHalf.UPPER,
                  positive_definite: bool = False) -> "Properties":
        return Properties(Structure.SYMMETRIC, storage,
                          positive_definite=positive_definite,
                          non_singular=positive_definite)

    @staticmethod
    def diagonal() -> "Properties":
        return Properties(Structure.DIAGONAL, StorageHalf.FULL)

    @staticmethod
    def identity() -> "Properties":
        return Properties(Structure.IDENTITY, StorageHalf.FULL,
                          non_singular=True)

    @staticmethod
    def zero() -> "Properties":
        return Properties(Structure.ZERO, StorageHalf.FULL)

    # -- predicates --------------------------------------------------------

    @property
    def is_general(self) -> bool:
        return self.structure is Structure.GENERAL

    @property
    def is_lower_triangular(self) -> bool:
        return self.structure in (Structure.LOWER_TRIANGULAR,
                                  Structure.DIAGONAL, Structure.IDENTITY,
                                  Structure.ZERO)

    @property
    def is_upper_triangular(self) -> bool:
        return self.structure in (Structure.UPPER_TRIANGULAR,
                                  Structure.DIAGONAL, Structure.IDENTITY,
                                  Structure.ZERO)

    @property
    def is_triangular(self) -> bool:
        return self.is_lower_triangular or self.is_upper_triangular

    @property
    def is_symmetric(self) -> bool:
        return self.structure.is_symmetric

    @property
    def is_zero(self) -> bool:
        return self.structure is Structure.ZERO

    @property
    def is_identity(self) -> bool:
        return self.structure is Structure.IDENTITY

    def with_structure(self, structure: Structure) -> "Properties":
        return replace(self, structure=structure)

    def transposed(self) -> "Properties":
        """Properties of the transpose of a matrix with these properties."""
        mapping = {
            Structure.LOWER_TRIANGULAR: Structure.UPPER_TRIANGULAR,
            Structure.UPPER_TRIANGULAR: Structure.LOWER_TRIANGULAR,
        }
        new_structure = mapping.get(self.structure, self.structure)
        new_storage = {
            StorageHalf.UPPER: StorageHalf.LOWER,
            StorageHalf.LOWER: StorageHalf.UPPER,
            StorageHalf.FULL: StorageHalf.FULL,
        }[self.storage]
        return replace(self, structure=new_structure, storage=new_storage)

    # -- LA-language annotation names --------------------------------------

    def annotation_names(self) -> FrozenSet[str]:
        """Return the set of LA annotation keywords describing ``self``."""
        names = set()
        if self.structure is Structure.LOWER_TRIANGULAR:
            names.add("LoTri")
        elif self.structure is Structure.UPPER_TRIANGULAR:
            names.add("UpTri")
        elif self.structure is Structure.SYMMETRIC:
            names.add("UpSym" if self.storage is StorageHalf.UPPER else "LoSym")
        if self.positive_definite:
            names.add("PD")
        if self.non_singular:
            names.add("NS")
        if self.unit_diagonal:
            names.add("UnitDiag")
        return frozenset(names)

    @staticmethod
    def from_annotations(names: Iterable[str]) -> "Properties":
        """Build a property set from LA annotation keywords.

        Raises
        ------
        ValueError
            If an unknown annotation keyword is supplied.
        """
        known = {"LoTri", "UpTri", "UpSym", "LoSym", "PD", "NS", "UnitDiag"}
        names = list(names)
        unknown = [n for n in names if n not in known]
        if unknown:
            raise ValueError(f"unknown matrix properties: {unknown}")

        structure = Structure.GENERAL
        storage = StorageHalf.FULL
        if "LoTri" in names:
            structure, storage = Structure.LOWER_TRIANGULAR, StorageHalf.LOWER
        if "UpTri" in names:
            structure, storage = Structure.UPPER_TRIANGULAR, StorageHalf.UPPER
        if "UpSym" in names:
            structure, storage = Structure.SYMMETRIC, StorageHalf.UPPER
        if "LoSym" in names:
            structure, storage = Structure.SYMMETRIC, StorageHalf.LOWER

        pd = "PD" in names
        ns = "NS" in names or pd
        return Properties(structure=structure, storage=storage,
                          positive_definite=pd, non_singular=ns,
                          unit_diagonal="UnitDiag" in names)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        names = sorted(self.annotation_names())
        return ",".join(names) if names else "General"


# ---------------------------------------------------------------------------
# Structure algebra (LGen-style structure propagation rules)
# ---------------------------------------------------------------------------

def add_structure(a: Structure, b: Structure) -> Structure:
    """Structure of ``A + B`` given structures of ``A`` and ``B``."""
    if a is Structure.ZERO:
        return b
    if b is Structure.ZERO:
        return a
    if a is b:
        if a is Structure.IDENTITY:
            return Structure.DIAGONAL
        return a
    pair = {a, b}
    if pair <= {Structure.DIAGONAL, Structure.IDENTITY}:
        return Structure.DIAGONAL
    if pair <= {Structure.LOWER_TRIANGULAR, Structure.DIAGONAL,
                Structure.IDENTITY}:
        return Structure.LOWER_TRIANGULAR
    if pair <= {Structure.UPPER_TRIANGULAR, Structure.DIAGONAL,
                Structure.IDENTITY}:
        return Structure.UPPER_TRIANGULAR
    if pair <= {Structure.SYMMETRIC, Structure.DIAGONAL, Structure.IDENTITY}:
        return Structure.SYMMETRIC
    return Structure.GENERAL


def mul_structure(a: Structure, b: Structure) -> Structure:
    """Structure of ``A * B`` given structures of ``A`` and ``B``."""
    if a is Structure.ZERO or b is Structure.ZERO:
        return Structure.ZERO
    if a is Structure.IDENTITY:
        return b
    if b is Structure.IDENTITY:
        return a
    if a is Structure.DIAGONAL and b is Structure.DIAGONAL:
        return Structure.DIAGONAL
    if a is Structure.DIAGONAL:
        return b if b.is_triangular else Structure.GENERAL
    if b is Structure.DIAGONAL:
        return a if a.is_triangular else Structure.GENERAL
    if a is Structure.LOWER_TRIANGULAR and b is Structure.LOWER_TRIANGULAR:
        return Structure.LOWER_TRIANGULAR
    if a is Structure.UPPER_TRIANGULAR and b is Structure.UPPER_TRIANGULAR:
        return Structure.UPPER_TRIANGULAR
    return Structure.GENERAL


def transpose_structure(a: Structure) -> Structure:
    """Structure of ``A^T`` given the structure of ``A``."""
    if a is Structure.LOWER_TRIANGULAR:
        return Structure.UPPER_TRIANGULAR
    if a is Structure.UPPER_TRIANGULAR:
        return Structure.LOWER_TRIANGULAR
    return a


def scale_structure(a: Structure) -> Structure:
    """Structure of ``alpha * A`` for a scalar ``alpha``."""
    if a is Structure.IDENTITY:
        return Structure.DIAGONAL
    return a


def neg_structure(a: Structure) -> Structure:
    """Structure of ``-A``."""
    return scale_structure(a)
