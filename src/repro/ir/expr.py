"""Mathematical expression trees over operand views.

These expressions form the *mathematical level* of SLinGen: the statements
of an LA program and of every basic linear algebra program produced by
Stage 1 are equations/assignments whose sides are instances of
:class:`Expr`.

Supported operators mirror the LA grammar (paper Fig. 4): ``+``, ``-``,
``*``, transposition, and for scalar expressions also division and square
root.  Matrix inversion (``(.)^-1``) may only appear on the right-hand side
of an HLAC statement and is represented by :class:`Inverse`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple, Union

from ..errors import DimensionError
from .operands import Operand, View
from .properties import (Structure, add_structure, mul_structure,
                         neg_structure, scale_structure, transpose_structure)


class Expr:
    """Base class of all mathematical expressions."""

    #: shape of the expression's value, set by subclasses
    rows: int
    cols: int

    # -- classification ----------------------------------------------------

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def is_scalar(self) -> bool:
        return self.rows == 1 and self.cols == 1

    @property
    def is_vector(self) -> bool:
        return not self.is_scalar and (self.rows == 1 or self.cols == 1)

    @property
    def is_matrix(self) -> bool:
        return self.rows > 1 and self.cols > 1

    @property
    def structure(self) -> Structure:
        """Structure of the expression value (LGen structure propagation)."""
        raise NotImplementedError

    # -- traversal ----------------------------------------------------------

    def children(self) -> Tuple["Expr", ...]:
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of the expression tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def views(self) -> List[View]:
        """All operand views referenced by this expression (reads)."""
        return [node.view for node in self.walk() if isinstance(node, Ref)]

    def operands(self) -> List[Operand]:
        """All distinct operands referenced, in first-occurrence order."""
        seen: List[Operand] = []
        for view in self.views():
            if view.operand not in seen:
                seen.append(view.operand)
        return seen

    def contains_inverse(self) -> bool:
        return any(isinstance(node, Inverse) for node in self.walk())

    # -- operator sugar ------------------------------------------------------

    def __add__(self, other: "Expr") -> "Add":
        return Add(self, _coerce(other))

    def __sub__(self, other: "Expr") -> "Sub":
        return Sub(self, _coerce(other))

    def __mul__(self, other: "Expr") -> "Mul":
        return Mul(self, _coerce(other))

    def __neg__(self) -> "Neg":
        return Neg(self)

    def __truediv__(self, other: "Expr") -> "Div":
        return Div(self, _coerce(other))

    @property
    def T(self) -> "Transpose":
        return Transpose(self)


def _coerce(value: Union[Expr, View, Operand, int, float]) -> Expr:
    """Coerce python values, operands and views into expressions."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, View):
        return Ref(value)
    if isinstance(value, Operand):
        return Ref(value.full_view())
    if isinstance(value, (int, float)):
        return Const(float(value))
    raise TypeError(f"cannot convert {value!r} to an expression")


def ref(value: Union[View, Operand]) -> "Ref":
    """Build a :class:`Ref` from an operand or a view."""
    if isinstance(value, Operand):
        return Ref(value.full_view())
    return Ref(value)


@dataclass(frozen=True)
class Ref(Expr):
    """Leaf node: a read of an operand view."""

    view: View

    @property
    def rows(self) -> int:
        return self.view.rows

    @property
    def cols(self) -> int:
        return self.view.cols

    @property
    def structure(self) -> Structure:
        return self.view.structure

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return repr(self.view)


@dataclass(frozen=True)
class Const(Expr):
    """A scalar floating-point literal."""

    value: float
    rows: int = 1
    cols: int = 1

    @property
    def structure(self) -> Structure:
        return Structure.GENERAL

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.value:g}"


class _Unary(Expr):
    """Common base for unary operators."""

    def __init__(self, child: Expr):
        self.child = _coerce(child)

    def children(self) -> Tuple[Expr, ...]:
        return (self.child,)

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.child == other.child

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.child))


class _Binary(Expr):
    """Common base for binary operators."""

    def __init__(self, left: Expr, right: Expr):
        self.left = _coerce(left)
        self.right = _coerce(right)

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def __eq__(self, other: object) -> bool:
        return (type(self) is type(other) and self.left == other.left
                and self.right == other.right)

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.left, self.right))


class Transpose(_Unary):
    """Matrix/vector transposition ``A^T``."""

    @property
    def rows(self) -> int:
        return self.child.cols

    @property
    def cols(self) -> int:
        return self.child.rows

    @property
    def structure(self) -> Structure:
        return transpose_structure(self.child.structure)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.child!r}^T"


class Neg(_Unary):
    """Negation ``-A``."""

    @property
    def rows(self) -> int:
        return self.child.rows

    @property
    def cols(self) -> int:
        return self.child.cols

    @property
    def structure(self) -> Structure:
        return neg_structure(self.child.structure)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"-({self.child!r})"


class Sqrt(_Unary):
    """Scalar square root (LA allows it on scalar expressions only)."""

    def __init__(self, child: Expr):
        super().__init__(child)
        if not self.child.is_scalar:
            raise DimensionError("sqrt() is only defined on scalars")

    rows = 1
    cols = 1

    @property
    def structure(self) -> Structure:
        return Structure.GENERAL

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"sqrt({self.child!r})"


class Inverse(_Unary):
    """Matrix inverse; only legal on the RHS of an HLAC statement."""

    def __init__(self, child: Expr):
        super().__init__(child)
        if self.child.rows != self.child.cols:
            raise DimensionError(
                f"inverse requires a square matrix, got {self.child.shape}")

    @property
    def rows(self) -> int:
        return self.child.rows

    @property
    def cols(self) -> int:
        return self.child.cols

    @property
    def structure(self) -> Structure:
        # The inverse of a triangular matrix is triangular with the same
        # orientation; other structures are not propagated here.
        child = self.child.structure
        if child in (Structure.LOWER_TRIANGULAR, Structure.UPPER_TRIANGULAR,
                     Structure.DIAGONAL, Structure.IDENTITY):
            return child
        return Structure.GENERAL

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.child!r})^-1"


class Add(_Binary):
    """Addition ``A + B`` (shapes must match)."""

    def __init__(self, left: Expr, right: Expr):
        super().__init__(left, right)
        if self.left.shape != self.right.shape:
            raise DimensionError(
                f"cannot add {self.left.shape} and {self.right.shape}")

    @property
    def rows(self) -> int:
        return self.left.rows

    @property
    def cols(self) -> int:
        return self.left.cols

    @property
    def structure(self) -> Structure:
        return add_structure(self.left.structure, self.right.structure)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.left!r} + {self.right!r})"


class Sub(_Binary):
    """Subtraction ``A - B`` (shapes must match)."""

    def __init__(self, left: Expr, right: Expr):
        super().__init__(left, right)
        if self.left.shape != self.right.shape:
            raise DimensionError(
                f"cannot subtract {self.right.shape} from {self.left.shape}")

    @property
    def rows(self) -> int:
        return self.left.rows

    @property
    def cols(self) -> int:
        return self.left.cols

    @property
    def structure(self) -> Structure:
        return add_structure(self.left.structure,
                             neg_structure(self.right.structure))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.left!r} - {self.right!r})"


class Mul(_Binary):
    """Multiplication: matrix product or scalar scaling.

    The following shape combinations are accepted:

    * scalar * anything, anything * scalar (scaling),
    * (m x k) * (k x n) matrix/vector product.
    """

    def __init__(self, left: Expr, right: Expr):
        super().__init__(left, right)
        if not (self.left.is_scalar or self.right.is_scalar
                or self.left.cols == self.right.rows):
            raise DimensionError(
                f"cannot multiply {self.left.shape} by {self.right.shape}")

    @property
    def is_scaling(self) -> bool:
        return self.left.is_scalar or self.right.is_scalar

    @property
    def rows(self) -> int:
        if self.left.is_scalar:
            return self.right.rows
        return self.left.rows

    @property
    def cols(self) -> int:
        if self.right.is_scalar:
            return self.left.cols
        if self.left.is_scalar:
            return self.right.cols
        return self.right.cols

    @property
    def structure(self) -> Structure:
        if self.left.is_scalar:
            return scale_structure(self.right.structure)
        if self.right.is_scalar:
            return scale_structure(self.left.structure)
        return mul_structure(self.left.structure, self.right.structure)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.left!r} * {self.right!r})"


class Div(_Binary):
    """Division by a scalar.

    LA only allows ``/`` inside scalar expressions, but the Stage-2 rewrite
    rule R0 (paper Table 2) packs neighboring scalar divisions into an
    element-wise division of a small vector by a scalar, so the left operand
    may be a vector.
    """

    def __init__(self, left: Expr, right: Expr):
        super().__init__(left, right)
        if not self.right.is_scalar:
            raise DimensionError("division requires a scalar divisor")

    @property
    def rows(self) -> int:
        return self.left.rows

    @property
    def cols(self) -> int:
        return self.left.cols

    @property
    def structure(self) -> Structure:
        return scale_structure(self.left.structure)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.left!r} / {self.right!r})"


def flatten_add(expr: Expr) -> List[Tuple[int, Expr]]:
    """Flatten nested Add/Sub into a list of (sign, term) pairs.

    ``A + B - C`` becomes ``[(+1, A), (+1, B), (-1, C)]``.  Negations are
    folded into the sign.
    """
    terms: List[Tuple[int, Expr]] = []

    def visit(node: Expr, sign: int) -> None:
        if isinstance(node, Add):
            visit(node.left, sign)
            visit(node.right, sign)
        elif isinstance(node, Sub):
            visit(node.left, sign)
            visit(node.right, -sign)
        elif isinstance(node, Neg):
            visit(node.child, -sign)
        else:
            terms.append((sign, node))

    visit(expr, +1)
    return terms


def flatten_mul(expr: Expr) -> List[Expr]:
    """Flatten nested Mul into an ordered factor list (non-commutative)."""
    factors: List[Expr] = []

    def visit(node: Expr) -> None:
        if isinstance(node, Mul):
            visit(node.left)
            visit(node.right)
        else:
            factors.append(node)

    visit(expr)
    return factors
